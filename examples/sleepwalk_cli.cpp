// sleepwalk_cli: the measurement system as a command-line tool.
//
//   measure  — generate a world, run a probing campaign, save a dataset
//   analyze  — load a dataset and print the diurnal summary
//   compare  — agreement matrix between two datasets (paper Table 2)
//   block    — per-block detail: daily profile, spectrum, classification
//
// Examples:
//   sleepwalk_cli measure --blocks 2000 --days 7 --seed 42
//       --out /tmp/a12w.slpw
//   sleepwalk_cli analyze --in /tmp/a12w.slpw
//   sleepwalk_cli measure --site 2 --out /tmp/a12j.slpw
//   sleepwalk_cli compare --a /tmp/a12w.slpw --b /tmp/a12j.slpw
//   sleepwalk_cli block --in /tmp/a12w.slpw --index 3
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <iostream>
#include <map>
#include <span>
#include <sstream>
#include <string>

#include "sleepwalk/sleepwalk.h"

namespace {

using namespace sleepwalk;

/// Minimal --flag value parser.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      values_[key.substr(2)] = argv[i + 1];
    }
  }

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it != values_.end() ? it->second : fallback;
  }

  long GetInt(const std::string& key, long fallback) const {
    const auto text = Get(key);
    return text.empty() ? fallback : std::atol(text.c_str());
  }

  double GetDouble(const std::string& key, double fallback) const {
    const auto text = Get(key);
    return text.empty() ? fallback : std::atof(text.c_str());
  }

  bool Has(const std::string& key) const {
    return values_.count(key) != 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

int Usage() {
  std::cout <<
      "usage: sleepwalk_cli <command> [--flag value ...]\n"
      "  measure --out FILE [--blocks N] [--days D] [--seed S] [--site K]\n"
      "          [--workers W] [--loss P] [--burst P] [--rate-limit N]\n"
      "          [--dead N] [--checkpoint FILE] [--checkpoint-every R]\n"
      "          [--checkpoint-blocks B] [--checkpoint-keep K]\n"
      "          [--failpoints SPEC] [--dataset-format v2|v3]\n"
      "          [--log-level L] [--log-json FILE] [--metrics-out FILE]\n"
      "          [--trace-out FILE] [--trace-chrome FILE]\n"
      "          [--admin-port P] [--admin-port-file FILE]\n"
      "      generate a simulated world and run a probing campaign\n"
      "      sharded over --workers threads (default: hardware\n"
      "      concurrency; results are byte-identical for any W);\n"
      "      fault flags inject deterministic measurement-plane breakage\n"
      "      (--loss: i.i.d. drop rate; --burst: long-run Gilbert-Elliott\n"
      "      bursty loss; --dead: first N blocks error persistently) and\n"
      "      --checkpoint makes the campaign killable/resumable\n"
      "      (--checkpoint-blocks widens the save stride to every B\n"
      "      finished blocks, trading crash redo-work for less I/O;\n"
      "      --checkpoint-keep retains the last K generations as\n"
      "      FILE.g<N> hard links and self-heals from the newest intact\n"
      "      one when FILE is corrupt; default 3).\n"
      "      --failpoints injects deterministic storage failures, e.g.\n"
      "      'storage.append=eio@3' (3rd append fails), '*=crash@17'\n"
      "      (process dies at the 17th storage op, exit 42),\n"
      "      'storage.sync=enospc%0.01' (1% of fsyncs report ENOSPC).\n"
      "      Telemetry (inert; results are byte-identical either way):\n"
      "      --log-level trace|debug|info|warn|error|off adds a text log\n"
      "      on stderr, --log-json a structured JSONL event log,\n"
      "      --metrics-out a metrics dump (Prometheus text, or CSV when\n"
      "      FILE ends in .csv), --trace-out a flame-ordered phase trace,\n"
      "      --trace-chrome the same spans as a chrome://tracing /\n"
      "      Perfetto trace-event JSON array.\n"
      "      --admin-port P serves GET /metrics /healthz /statusz /tracez\n"
      "      on 127.0.0.1:P (0 picks a free port) while the campaign\n"
      "      runs — a read-only observer; results stay byte-identical.\n"
      "      --admin-port-file FILE writes the bound port for scripts.\n"
      "      --dataset-format v3 writes the columnar zero-copy SLPW v3\n"
      "      layout instead of the framed v2 (either reads back\n"
      "      identically through analyze/compare/block).\n"
      "  analyze --in FILE [--workers W]\n"
      "      diurnal summary of a saved dataset (v1/v2/v3 sniffed;\n"
      "      re-classified on --workers threads)\n"
      "  compare --a FILE --b FILE\n"
      "      cross-dataset agreement matrix (paper Table 2)\n"
      "  block --in FILE (--index I | --prefix a.b.c/24)\n"
      "      one block's series, daily profile and classification\n";
  return 2;
}

/// Owns the telemetry sinks behind one obs::Context for a CLI run.
/// Simulation campaigns are deterministic, so the logger/tracer never
/// read a wall clock and same-seed runs emit byte-identical files.
class ObsSinks {
 public:
  explicit ObsSinks(const Flags& flags)
      : logger_{obs::LogConfig{
            obs::ParseLevel(flags.Get("log-level"), obs::Level::kInfo),
            /*deterministic=*/true}},
        metrics_path_{flags.Get("metrics-out")},
        trace_path_{flags.Get("trace-out")},
        chrome_path_{flags.Get("trace-chrome")},
        admin_{flags.Has("admin-port")} {
    if (flags.Has("log-level")) logger_.AddTextSink(&std::cerr);
    if (const auto path = flags.Get("log-json"); !path.empty()) {
      jsonl_.open(path, std::ios::trunc);
      if (jsonl_) {
        logger_.AddJsonlSink(&jsonl_);
      } else {
        std::cerr << "measure: cannot open --log-json " << path << "\n";
      }
    }
  }

  obs::Context Context() {
    obs::Context context;
    if (logger_.Enabled(logger_.config().level)) context.log = &logger_;
    // The admin server scrapes the registry and tracer live, so enable
    // both whenever it is attached even without output files.
    if (!metrics_path_.empty() || admin_) context.metrics = &registry_;
    if (!trace_path_.empty() || !chrome_path_.empty() || admin_) {
      context.tracer = &tracer_;
    }
    return context;
  }

  const obs::Registry& registry() const { return registry_; }
  const obs::Tracer& tracer() const { return tracer_; }

  /// Writes the metrics and trace files through the storage seam
  /// (atomic replace; failpoint-injectable); false on any I/O error.
  bool Flush(storage::Env& env) {
    bool ok = true;
    if (!metrics_path_.empty()) {
      std::ostringstream out;
      const auto n = metrics_path_.size();
      if (n >= 4 && metrics_path_.compare(n - 4, 4, ".csv") == 0) {
        registry_.WriteCsv(out);
      } else {
        registry_.WritePrometheus(out);
      }
      if (const auto error = WriteText(env, metrics_path_, out.str());
          !error.ok()) {
        std::cerr << "measure: cannot write --metrics-out "
                  << error.ToString() << "\n";
        ok = false;
      }
    }
    if (!trace_path_.empty()) {
      std::ostringstream out;
      tracer_.WriteJsonl(out);
      if (const auto error = WriteText(env, trace_path_, out.str());
          !error.ok()) {
        std::cerr << "measure: cannot write --trace-out "
                  << error.ToString() << "\n";
        ok = false;
      }
    }
    if (!chrome_path_.empty()) {
      std::ostringstream out;
      obs::WriteChromeTrace(tracer_, out);
      if (const auto error = WriteText(env, chrome_path_, out.str());
          !error.ok()) {
        std::cerr << "measure: cannot write --trace-chrome "
                  << error.ToString() << "\n";
        ok = false;
      }
    }
    return ok;
  }

 private:
  static storage::Error WriteText(storage::Env& env, const std::string& path,
                                  const std::string& text) {
    return storage::AtomicWrite(
        env, path,
        std::span{reinterpret_cast<const std::uint8_t*>(text.data()),
                  text.size()});
  }

  obs::Logger logger_;
  obs::Registry registry_;
  obs::Tracer tracer_;
  std::ofstream jsonl_;
  std::string metrics_path_;
  std::string trace_path_;
  std::string chrome_path_;
  bool admin_;
};

/// One worker's private transport chain for the parallel executor: a
/// simulated network plus the fault / instrumentation decorator. Every
/// worker is built from the SAME seeds and the SAME fault plan — probe
/// outcomes are keyed (stateless) functions of (target, when), so
/// identically configured chains are interchangeable and results do not
/// depend on which worker measures which block.
class CliShardChain final : public core::ShardChain {
 public:
  CliShardChain(const sim::SimWorld& world, std::uint64_t site_seed,
                const faults::FaultPlan& plan, bool faulty)
      : transport_{world.MakeTransport(site_seed)},
        faulty_{faulty},
        faulty_transport_{*transport_, plan},
        instrumented_{*transport_, obs::Context{}} {}

  net::Transport& transport() override {
    return faulty_ ? static_cast<net::Transport&>(faulty_transport_)
                   : static_cast<net::Transport&>(instrumented_);
  }

  void AttachObs(const obs::Context& context) override {
    if (faulty_) {
      faulty_transport_.AttachObs(context);
    } else {
      instrumented_.AttachObs(context);
    }
  }

  report::ProbeAccounting accounting() const override {
    return faulty_ ? faulty_transport_.accounting()
                   : instrumented_.accounting();
  }

 private:
  std::unique_ptr<sim::SimTransport> transport_;
  bool faulty_;
  faults::FaultyTransport faulty_transport_;
  net::InstrumentedTransport instrumented_;
};

int CmdMeasure(const Flags& flags) {
  const auto out = flags.Get("out");
  if (out.empty()) {
    std::cerr << "measure: --out FILE is required\n";
    return 2;
  }
  sim::WorldConfig world_config;
  world_config.total_blocks =
      static_cast<int>(flags.GetInt("blocks", 1000));
  world_config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const int days = static_cast<int>(flags.GetInt("days", 7));
  const auto site = static_cast<std::uint64_t>(flags.GetInt("site", 1));

  std::cout << "generating ~" << world_config.total_blocks
            << " blocks (seed " << world_config.seed << ")...\n";
  const auto world = sim::SimWorld::Generate(world_config);

  const int workers =
      static_cast<int>(flags.GetInt("workers", core::HardwareWorkers()));
  std::cout << "measuring " << world.blocks().size() << " blocks for "
            << days << " days from site " << site << " on "
            << std::max(workers, 1) << " worker(s)...\n";
  const std::uint64_t site_seed = site * 0x9e3779b9ULL + 1;
  std::vector<core::BlockTarget> targets;
  for (const auto& block : world.blocks()) {
    targets.push_back({block.spec.block, sim::EverActiveOctets(block.spec),
                       sim::TrueAvailability(block.spec, 13 * 3600)});
  }
  core::SupervisorConfig config;
  config.seed = site;
  config.checkpoint_path = flags.Get("checkpoint");
  config.checkpoint_every_rounds = flags.GetInt("checkpoint-every", 500);
  config.checkpoint_every_blocks =
      static_cast<int>(flags.GetInt("checkpoint-blocks", 1));
  config.checkpoint_keep =
      static_cast<int>(flags.GetInt("checkpoint-keep", 3));
  const probing::RoundScheduler scheduler{config.analyzer.schedule};

  // Deterministic storage-fault injection: every persisted byte (dataset,
  // checkpoints, telemetry) then flows through the faulty env.
  util::FailpointSet failpoints{world_config.seed};
  storage::FaultyEnv faulty_env{storage::RealEnvInstance(), failpoints};
  if (flags.Has("failpoints")) {
    std::string failpoint_error;
    if (!util::FailpointSet::Parse(flags.Get("failpoints"), failpoints,
                                   &failpoint_error)) {
      std::cerr << "measure: bad --failpoints: " << failpoint_error << "\n";
      return 2;
    }
    config.env = &faulty_env;
  }
  storage::Env& env =
      config.env != nullptr ? *config.env : storage::RealEnvInstance();

  // Optional fault plan: deterministic loss / rate limiting / dead blocks
  // injected between the prober and the (simulated) network.
  faults::FaultPlan plan;
  plan.seed = world_config.seed;
  plan.iid_loss = flags.GetDouble("loss", 0.0);
  if (const double burst = flags.GetDouble("burst", 0.0); burst > 0.0) {
    plan.burst.enabled = true;
    const double bad = burst / plan.burst.loss_bad;
    plan.burst.p_good_to_bad =
        bad < 1.0 ? plan.burst.p_bad_to_good * bad / (1.0 - bad) : 1.0;
  }
  plan.rate_limit_per_window =
      static_cast<int>(flags.GetInt("rate-limit", 0));
  const auto dead = flags.GetInt("dead", 0);
  for (long i = 0; i < dead && i < static_cast<long>(targets.size()); ++i) {
    plan.dead_blocks.insert(
        targets[static_cast<std::size_t>(i)].block.Index());
  }
  const bool faulty = plan.iid_loss > 0.0 || plan.burst.enabled ||
                      plan.rate_limit_per_window > 0 ||
                      !plan.dead_blocks.empty();

  // Telemetry: the faulty transport counts its own probes (it can
  // attribute rate-limited drops precisely); a clean stack gets the same
  // probe accounting from the InstrumentedTransport decorator. The
  // executor re-points each chain's instruments at per-block buffered
  // sinks, so counters land in the campaign registry in block order.
  ObsSinks sinks{flags};
  config.obs = sinks.Context();
  const core::ShardFactory factory = [&](std::size_t) {
    return std::make_unique<CliShardChain>(world, site_seed, plan, faulty);
  };

  // Optional admin plane: a loopback HTTP server observing the campaign
  // read-only. The hub outlives the campaign; the campaign attaches its
  // status provider for the duration of the run.
  core::StatusHub status_hub;
  serve::AdminServer admin;
  if (flags.Has("admin-port")) {
    config.status = &status_hub;
    serve::AdminPlane plane;
    plane.metrics = &sinks.registry();
    plane.tracer = &sinks.tracer();
    plane.status = &status_hub;
    serve::InstallAdminRoutes(admin, plane);
    std::string admin_error;
    const auto port =
        static_cast<std::uint16_t>(flags.GetInt("admin-port", 0));
    if (!admin.Start(port, &admin_error)) {
      std::cerr << "measure: cannot start admin server: " << admin_error
                << "\n";
      return 1;
    }
    std::cerr << "admin server on 127.0.0.1:" << admin.port() << "\n";
    if (const auto path = flags.Get("admin-port-file"); !path.empty()) {
      std::ofstream port_file{path, std::ios::trunc};
      port_file << admin.port() << "\n";
      if (!port_file) {
        std::cerr << "measure: cannot write --admin-port-file " << path
                  << "\n";
        return 1;
      }
    }
  }

  // Live heartbeat on stderr, fed by the supervisor after every block.
  config.progress = [](const core::CampaignProgress& p) {
    std::cerr << "\r[" << p.blocks_done << "/" << p.blocks_total
              << "] blocks  rounds " << p.rounds_done;
    if (p.rounds_per_sec > 0.0) {
      std::cerr << " (" << static_cast<long>(p.rounds_per_sec) << "/s)";
    }
    if (p.quarantined > 0) std::cerr << "  quarantined " << p.quarantined;
    if (const double eta = p.CheckpointEtaSec(); eta >= 0.0) {
      std::cerr << "  next ckpt ~" << static_cast<long>(eta) << "s";
    }
    std::cerr << "   " << std::flush;
  };

  core::ParallelConfig parallel;
  parallel.workers = workers;
  const auto outcome = core::RunParallelCampaign(
      std::move(targets), factory, scheduler.RoundsForDays(days), config,
      parallel);
  std::cerr << "\n";
  const auto& result = outcome.result;

  const auto dataset_format = flags.Get("dataset-format");
  if (!dataset_format.empty() && dataset_format != "v2" &&
      dataset_format != "v3") {
    std::cerr << "measure: --dataset-format must be v2 or v3\n";
    return 2;
  }
  const auto write_error =
      dataset_format == "v3"
          ? core::WriteDatasetColumnar(env, out, result.analyses,
                                       config.analyzer.schedule.round_seconds,
                                       config.analyzer.schedule.epoch_sec)
          : core::WriteDataset(env, out, result.analyses,
                               config.analyzer.schedule.round_seconds,
                               config.analyzer.schedule.epoch_sec);
  if (!write_error.ok()) {
    std::cerr << "measure: cannot write " << out << ": "
              << write_error.ToString() << "\n";
    return 1;
  }
  std::cout << "measured " << result.counts.probed() << " blocks ("
            << result.counts.skipped << " skipped); strict diurnal "
            << report::Percent(result.counts.StrictFraction(), 1)
            << "; dataset written to " << out << "\n";
  if (outcome.resumed) std::cout << "resumed from checkpoint\n";
  for (const auto& prefix : outcome.quarantined) {
    std::cout << "quarantined " << prefix.ToString() << "\n";
  }
  if (faulty || !config.checkpoint_path.empty()) {
    // The executor folds per-block probe-accounting deltas into
    // outcome.stats in commit order; no manual merge needed.
    report::PrintResilienceReport(std::cout, outcome.stats);
  }
  if (!sinks.Flush(env)) return 1;
  return 0;
}

int CmdAnalyze(const Flags& flags) {
  const auto in = flags.Get("in");
  const auto dataset = core::ReadDataset(in);
  if (!dataset) {
    std::cerr << "analyze: cannot read " << in << "\n";
    return 1;
  }
  core::AnalyzerConfig config;
  config.schedule.round_seconds = dataset->round_seconds;

  std::int64_t strict = 0;
  std::int64_t relaxed = 0;
  std::int64_t non_diurnal = 0;
  std::int64_t skipped = 0;
  std::int64_t stationary = 0;
  const auto analyses = core::ReanalyzeDataset(
      *dataset, config, static_cast<int>(flags.GetInt("workers", 0)));
  for (const auto& analysis : analyses) {
    if (!analysis.probed || analysis.observed_days < 2) {
      ++skipped;
      continue;
    }
    if (analysis.stationarity.stationary) ++stationary;
    switch (analysis.diurnal.classification) {
      case core::Diurnality::kStrictlyDiurnal: ++strict; break;
      case core::Diurnality::kRelaxedDiurnal: ++relaxed; break;
      case core::Diurnality::kNonDiurnal: ++non_diurnal; break;
    }
  }
  const auto analyzed = strict + relaxed + non_diurnal;
  report::TextTable table{{"metric", "value"}};
  table.AddRow({"blocks in dataset",
                report::WithCommas(
                    static_cast<long long>(dataset->blocks.size()))});
  table.AddRow({"analyzable", report::WithCommas(analyzed)});
  table.AddRow({"skipped (sparse/short)", report::WithCommas(skipped)});
  table.AddRow({"strictly diurnal",
                report::WithCommas(strict) + " (" +
                    report::Percent(analyzed > 0
                                        ? static_cast<double>(strict) /
                                              analyzed : 0.0, 1) + ")"});
  table.AddRow({"relaxed diurnal", report::WithCommas(relaxed)});
  table.AddRow({"non-diurnal", report::WithCommas(non_diurnal)});
  table.AddRow({"stationary",
                report::Percent(analyzed > 0
                                    ? static_cast<double>(stationary) /
                                          analyzed : 0.0, 1)});
  table.Print(std::cout);
  return 0;
}

int CmdCompare(const Flags& flags) {
  const auto a = core::ReadDataset(flags.Get("a"));
  const auto b = core::ReadDataset(flags.Get("b"));
  if (!a || !b) {
    std::cerr << "compare: need readable --a and --b datasets\n";
    return 1;
  }
  core::AnalyzerConfig config;
  std::vector<core::BlockAnalysis> first;
  std::vector<core::BlockAnalysis> second;
  for (const auto& stored : a->blocks) {
    first.push_back(core::Reanalyze(stored, config));
  }
  for (const auto& stored : b->blocks) {
    second.push_back(core::Reanalyze(stored, config));
  }
  const auto matrix = core::CompareRuns(first, second);

  report::TextTable table{{"A \\ B", "d", "e", "N"}};
  const char* names[3] = {"d (strict)", "e (relaxed)", "N (neither)"};
  for (int r = 0; r < 3; ++r) {
    std::vector<std::string> cells{names[r]};
    for (int c = 0; c < 3; ++c) {
      cells.push_back(report::WithCommas(
          matrix.counts[static_cast<std::size_t>(r)]
                       [static_cast<std::size_t>(c)]));
    }
    table.AddRow(cells);
  }
  table.Print(std::cout);
  std::cout << "compared blocks: " << matrix.compared << "\n";
  if (matrix.StrictAtFirst() > 0) {
    std::cout << "of A's strict blocks, B finds strict again "
              << report::Percent(matrix.StrictAgain(), 1)
              << ", at least relaxed "
              << report::Percent(matrix.AtLeastRelaxed(), 1)
              << ", non-diurnal "
              << report::Percent(matrix.StrongDisagreement(), 1) << "\n";
  }
  return 0;
}

int CmdBlock(const Flags& flags) {
  const auto dataset = core::ReadDataset(flags.Get("in"));
  if (!dataset) {
    std::cerr << "block: cannot read --in dataset\n";
    return 1;
  }
  const core::StoredSeries* chosen = nullptr;
  if (const auto text = flags.Get("prefix"); !text.empty()) {
    const auto prefix = net::Prefix24::Parse(text);
    if (!prefix) {
      std::cerr << "block: cannot parse prefix " << text << "\n";
      return 2;
    }
    for (const auto& stored : dataset->blocks) {
      if (stored.block == *prefix) {
        chosen = &stored;
        break;
      }
    }
  } else {
    const auto index = static_cast<std::size_t>(flags.GetInt("index", 0));
    if (index < dataset->blocks.size()) chosen = &dataset->blocks[index];
  }
  if (chosen == nullptr) {
    std::cerr << "block: not found in dataset\n";
    return 1;
  }

  core::AnalyzerConfig config;
  config.schedule.round_seconds = dataset->round_seconds;
  const auto analysis = core::Reanalyze(*chosen, config);
  std::cout << "block " << chosen->block.ToString() << ": |E(b)| = "
            << chosen->ever_active << ", " << analysis.observed_days
            << " days, mean A-hat_s "
            << report::Fixed(analysis.mean_short, 3) << "\n"
            << "classification: "
            << (analysis.diurnal.IsStrict() ? "strictly diurnal"
                : analysis.diurnal.IsDiurnal() ? "relaxed diurnal"
                                               : "non-diurnal")
            << " (strongest "
            << report::Fixed(analysis.diurnal.strongest_cycles_per_day, 2)
            << " cycles/day, phase "
            << report::Fixed(analysis.diurnal.phase, 2) << " rad)\n";

  report::PrintSeries(std::cout, chosen->series.values, 72, 10,
                      "A-hat_s");
  const auto profile = core::ComputeDailyProfile(chosen->series.values,
                                                 dataset->round_seconds);
  std::cout << "daily profile: min "
            << report::Fixed(profile.minimum, 3) << " @ "
            << profile.min_hour << ":00 UTC, max "
            << report::Fixed(profile.maximum, 3) << " @ "
            << profile.max_hour << ":00 UTC, range "
            << report::Fixed(profile.Range(), 3) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags{argc, argv, 2};
  try {
    if (command == "measure") return CmdMeasure(flags);
    if (command == "analyze") return CmdAnalyze(flags);
    if (command == "compare") return CmdCompare(flags);
    if (command == "block") return CmdBlock(flags);
  } catch (const util::CrashInjected& crash) {
    // A --failpoints crash action fired: die the way a power cut would,
    // with a distinctive exit code the crash-consistency tests assert on.
    std::cerr << "simulated crash at " << crash.site << "\n";
    return 42;
  }
  return Usage();
}
