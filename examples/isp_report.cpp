// ISP / organization report (paper §2.3.2).
//
// "For a given organization or ISP P (for example, Time Warner Cable),
//  we first use keyword matching ... to find relevant clusters, then
//  find all ASes within same cluster(s). Finally, for all ASes within P,
//  we join with IP/AS mapping and find all relevant IP blocks for P."
//
// This example measures a world, then reports per-organization diurnal
// fractions — the view a regulator comparing ISPs would want.
//
// Usage: ./build/examples/isp_report ["keyword"]
#include <algorithm>
#include <iostream>
#include <map>

#include "sleepwalk/sleepwalk.h"

int main(int argc, char** argv) {
  using namespace sleepwalk;
  const std::string keyword = argc > 1 ? argv[1] : "";

  sim::WorldConfig world_config;
  world_config.total_blocks = 2000;
  world_config.seed = 0x15b;
  const auto world = sim::SimWorld::Generate(world_config);
  const auto as_map = world.BuildAsnMap();
  const asn::OrgClusterer clusterer{world.as_registry()};
  std::cout << "AS registry: " << world.as_registry().size()
            << " ASes in " << clusterer.cluster_count()
            << " organization clusters\n";

  std::cout << "probing " << world.blocks().size()
            << " blocks for 7 days...\n\n";
  auto transport = world.MakeTransport(0x15b);
  std::vector<core::BlockTarget> targets;
  for (const auto& block : world.blocks()) {
    targets.push_back({block.spec.block, sim::EverActiveOctets(block.spec),
                       sim::TrueAvailability(block.spec, 13 * 3600)});
  }
  core::AnalyzerConfig config;
  const probing::RoundScheduler scheduler{config.schedule};
  const auto result = core::RunCampaign(
      std::move(targets), *transport, scheduler.RoundsForDays(7), config);

  // Join: block -> ASN -> organization -> diurnal stats.
  struct OrgStats {
    int blocks = 0;
    int diurnal = 0;
    int down_episodes = 0;
  };
  std::map<std::string, OrgStats> by_org;
  for (std::size_t i = 0; i < world.blocks().size(); ++i) {
    const auto& analysis = result.analyses[i];
    if (!analysis.probed || analysis.observed_days < 2) continue;
    const auto asn_number = as_map.AsnFor(world.blocks()[i].spec.block);
    if (!asn_number) continue;  // Team-Cymru-style 0.6% unmapped
    const auto org = clusterer.OrganizationOf(*asn_number);
    if (org.empty()) continue;
    auto& stats = by_org[std::string{org}];
    ++stats.blocks;
    if (analysis.diurnal.IsStrict()) ++stats.diurnal;
    stats.down_episodes += static_cast<int>(analysis.outages.size());
  }

  if (!keyword.empty()) {
    // The paper's keyword flow: organization keyword -> AS set.
    const auto ases = clusterer.AsesForKeyword(keyword);
    std::cout << "keyword \"" << keyword << "\" matches " << ases.size()
              << " ASes:";
    for (const auto as_number : ases) std::cout << " AS" << as_number;
    std::cout << "\n\n";
  }

  struct Row {
    std::string org;
    OrgStats stats;
  };
  std::vector<Row> rows;
  for (const auto& [org, stats] : by_org) {
    if (stats.blocks < 15) continue;
    rows.push_back({org, stats});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return static_cast<double>(a.stats.diurnal) / a.stats.blocks >
           static_cast<double>(b.stats.diurnal) / b.stats.blocks;
  });

  report::TextTable table{{"organization", "blocks", "frac. diurnal",
                           "outage episodes"}};
  int shown = 0;
  for (const auto& row : rows) {
    table.AddRow({row.org, std::to_string(row.stats.blocks),
                  report::Fixed(static_cast<double>(row.stats.diurnal) /
                                    row.stats.blocks, 3),
                  std::to_string(row.stats.down_episodes)});
    if (++shown >= 15) break;
  }
  std::cout << "most diurnal organizations (>= 15 measured blocks):\n";
  table.Print(std::cout);
  std::cout << "\n(run with a keyword, e.g. "
               "./isp_report \"china telecom\", to list one "
               "organization's ASes)\n";
  return 0;
}
