// Quickstart: measure one /24 block end to end.
//
//   1. describe a simulated block (a real deployment would use the live
//      ICMP transport instead — see examples/live_probe.cpp);
//   2. run a two-week Trinocular-style probing campaign against it;
//   3. read back the availability estimates and the diurnal verdict.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "sleepwalk/sleepwalk.h"

int main() {
  using namespace sleepwalk;

  // A block in China: 40 always-on addresses plus 140 addresses that
  // come up each morning (08:00 local = 00:00 UTC) for ~9 hours.
  sim::BlockSpec spec;
  spec.block = *net::Prefix24::Parse("27.186.9/24");
  spec.seed = 1;
  spec.n_always = 40;
  spec.n_diurnal = 140;
  spec.response_prob = 0.9F;
  spec.on_start_sec = 0.0F;                  // midnight UTC = morning CST
  spec.on_duration_sec = 9.0F * 3600.0F;
  spec.phase_spread_sec = 2.0F * 3600.0F;    // people wake over ~2 h
  spec.sigma_start_sec = 0.5F * 3600.0F;     // day-to-day jitter

  // The transport is the seam between policy and network: SimTransport
  // answers probes from the model, LiveIcmpTransport sends real pings.
  sim::SimTransport transport{/*site_seed=*/7};
  transport.AddBlock(&spec);

  // The analyzer owns the whole §2 pipeline: adaptive prober (1..15
  // probes per 11-minute round, stop on first positive), the three EWMA
  // availability estimates, series cleaning, and spectral
  // classification.
  core::AnalyzerConfig config;                      // paper defaults
  core::BlockAnalyzer analyzer{
      spec.block, sim::EverActiveOctets(spec),
      /*initial_availability=*/0.7, /*seed=*/42, config};

  const probing::RoundScheduler scheduler{config.schedule};
  analyzer.RunCampaign(transport, scheduler.RoundsForDays(14));

  const core::BlockAnalysis result = analyzer.Finish();

  std::cout << "block " << result.block.ToString() << "\n"
            << "  ever-active addresses: " << result.ever_active << "\n"
            << "  mean short-term availability (A-hat_s): "
            << report::Fixed(result.mean_short, 3) << "\n"
            << "  operational availability (A-hat_o):     "
            << report::Fixed(result.final_operational, 3)
            << " (deliberately conservative)\n"
            << "  probing cost: "
            << report::Fixed(result.mean_probes_per_round * 60.0 / 11.0, 1)
            << " probes/hour (Trinocular stays under ~20)\n"
            << "  observation: " << result.observed_days
            << " whole days, stationary = "
            << (result.stationarity.stationary ? "yes" : "no") << "\n";

  const auto& diurnal = result.diurnal;
  std::cout << "  diurnal classification: "
            << (diurnal.IsStrict() ? "STRICTLY DIURNAL"
                : diurnal.IsDiurnal() ? "relaxed diurnal" : "non-diurnal")
            << "\n"
            << "  strongest periodicity: "
            << report::Fixed(diurnal.strongest_cycles_per_day, 2)
            << " cycles/day (bin " << diurnal.strongest_bin << ")\n"
            << "  daily-bin phase: " << report::Fixed(diurnal.phase, 2)
            << " rad (tracks the block's longitude - see "
               "examples/phase_clock.cpp)\n";

  // The cleaned A-hat_s series itself is available for custom analysis.
  report::PrintSeries(std::cout, result.short_series.values, 72, 10,
                      "estimated availability over two weeks");
  return 0;
}
