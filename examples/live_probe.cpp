// Live ICMP probing of a real /24 block.
//
// Runs the same Trinocular-style adaptive prober the simulations use,
// but over a raw ICMP socket (requires CAP_NET_RAW or the unprivileged
// ICMP datagram socket; degrades with a clear message otherwise).
//
// The round cadence is shortened (seconds instead of 11 minutes) so a
// demo finishes quickly; pass a prefix you are authorized to probe.
//
// Usage:  sudo ./build/examples/live_probe 192.0.2.0/24 [rounds]
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "sleepwalk/sleepwalk.h"

int main(int argc, char** argv) {
  using namespace sleepwalk;

  if (argc < 2) {
    std::cout << "usage: " << argv[0] << " <a.b.c/24> [rounds]\n"
              << "probes a /24 you are AUTHORIZED to measure; each round "
                 "sends at most 15 ICMP echo requests.\n";
    return 2;
  }
  const auto prefix = net::Prefix24::Parse(argv[1]);
  if (!prefix) {
    std::cerr << "cannot parse prefix: " << argv[1] << "\n";
    return 2;
  }
  const int rounds = argc > 2 ? std::max(1, std::atoi(argv[2])) : 10;

  auto transport = net::MakeLiveIcmpTransport(/*timeout_ms=*/800);
  if (transport == nullptr) {
    std::string error;
    net::RawIcmpSocket::Open(&error);
    std::cerr << "cannot open an ICMP socket (" << error << ")\n"
              << "run as root / with CAP_NET_RAW, or enable "
                 "net.ipv4.ping_group_range.\n";
    return 1;
  }

  // Without historical data, assume every address may be active.
  std::vector<std::uint8_t> ever_active;
  for (int i = 1; i < 255; ++i) {
    ever_active.push_back(static_cast<std::uint8_t>(i));
  }

  core::AnalyzerConfig config;
  config.min_ever_active = 1;
  core::BlockAnalyzer analyzer{*prefix, std::move(ever_active),
                               /*initial_availability=*/0.3,
                               /*seed=*/0x11fe, config};

  // Do-no-harm budget: Trinocular's ~19 probes/hour/block ceiling,
  // enforced mechanically. The demo's fast cadence makes the budget the
  // binding constraint, exactly as in a real deployment.
  // The live demo paces its token bucket against the real monotonic
  // clock by design — it is probing real hosts, not replaying a trace.
  auto budget = net::MakeTrinocularBudget();
  const auto start =
      std::chrono::steady_clock::now();  // sleeplint: allow(no-wallclock)
  const auto now_sec = [&start] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() -  // sleeplint: allow(no-wallclock)
               start).count();
  };

  std::cout << "probing " << prefix->ToString() << " for " << rounds
            << " rounds (3-second cadence for the demo; budget "
            << net::kTrinocularProbesPerHour << " probes/hour)\n";
  for (int round = 0; round < rounds; ++round) {
    // A round costs at most 15 probes; wait until the bucket covers it.
    const double wait = budget.DelayUntilAvailable(now_sec(), 15.0);
    if (wait > 0.0) {
      std::cout << "  (rate limit: waiting "
                << report::Fixed(wait, 1) << " s before round " << round
                << ")\n";
      std::this_thread::sleep_for(
          std::chrono::milliseconds{static_cast<long>(wait * 1000.0)});
    }
    budget.TryAcquire(now_sec(), 15.0);
    analyzer.RunRound(*transport, round);
    const auto& estimator = analyzer.estimator();
    std::cout << "round " << round << ": A-hat_s = "
              << report::Fixed(estimator.ShortTerm(), 3)
              << ", A-hat_l = " << report::Fixed(estimator.LongTerm(), 3)
              << ", A-hat_o = "
              << report::Fixed(estimator.Operational(), 3) << "\n";
    if (round + 1 < rounds) {
      std::this_thread::sleep_for(std::chrono::seconds{3});
    }
  }

  std::cout << "\nfinal estimates after " << rounds << " rounds:\n"
            << "  short-term availability:  "
            << report::Fixed(analyzer.estimator().ShortTerm(), 3) << "\n"
            << "  operational availability: "
            << report::Fixed(analyzer.estimator().Operational(), 3) << "\n"
            << "(diurnal classification needs 2+ days of 11-minute "
               "rounds; run with the real cadence for that)\n";
  return 0;
}
