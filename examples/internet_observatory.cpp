// Internet observatory: the paper's full measurement loop on a small
// simulated Internet — generate a world, probe every block for a week,
// geolocate the measurements, and report where the Internet sleeps.
//
// Build & run:  ./build/examples/internet_observatory [blocks] [days]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>

#include "sleepwalk/sleepwalk.h"

int main(int argc, char** argv) {
  using namespace sleepwalk;
  const int n_blocks = argc > 1 ? std::max(100, std::atoi(argv[1])) : 1500;
  const int days = argc > 2 ? std::max(3, std::atoi(argv[2])) : 7;

  std::cout << "generating a world of ~" << n_blocks << " /24 blocks...\n";
  sim::WorldConfig world_config;
  world_config.total_blocks = n_blocks;
  world_config.seed = 0x0b5e;
  world_config.min_blocks_per_country = 10;
  const auto world = sim::SimWorld::Generate(world_config);

  // Geolocation database with MaxMind-like coverage and error.
  const auto geodb = geo::GeoDatabase::FromTruth(
      world.TrueLocations(), geo::GeoDatabase::Options{});

  std::cout << "probing " << world.blocks().size() << " blocks for "
            << days << " days (11-minute rounds)...\n";
  auto transport = world.MakeTransport(/*site_seed=*/0xca11);
  std::vector<core::BlockTarget> targets;
  for (const auto& block : world.blocks()) {
    targets.push_back({block.spec.block, sim::EverActiveOctets(block.spec),
                       sim::TrueAvailability(block.spec, 13 * 3600)});
  }
  core::AnalyzerConfig config;
  const probing::RoundScheduler scheduler{config.schedule};
  const auto result = core::RunCampaign(
      std::move(targets), *transport, scheduler.RoundsForDays(days), config);

  std::cout << "measured: " << result.counts.probed() << " blocks ("
            << result.counts.skipped << " too sparse to probe)\n"
            << "strictly diurnal: "
            << report::Percent(result.counts.StrictFraction(), 1)
            << ", strict+relaxed: "
            << report::Percent(result.counts.EitherFraction(), 1) << "\n\n";

  // Aggregate by geolocated country.
  struct Agg {
    int blocks = 0;
    int diurnal = 0;
  };
  std::map<std::string, Agg> by_country;
  geo::GeoGrid grid{2.0};
  for (std::size_t i = 0; i < world.blocks().size(); ++i) {
    const auto& analysis = result.analyses[i];
    if (!analysis.probed || analysis.observed_days < 2) continue;
    const auto* location = geodb.Lookup(world.blocks()[i].spec.block);
    if (location == nullptr) continue;
    auto& agg = by_country[location->country_code];
    ++agg.blocks;
    if (analysis.diurnal.IsStrict()) ++agg.diurnal;
    grid.Add(location->latitude, location->longitude,
             analysis.diurnal.IsStrict());
  }

  struct Row {
    std::string code;
    int blocks;
    double fraction;
  };
  std::vector<Row> rows;
  for (const auto& [code, agg] : by_country) {
    if (agg.blocks < 10) continue;
    rows.push_back({code, agg.blocks,
                    static_cast<double>(agg.diurnal) / agg.blocks});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.fraction > b.fraction; });

  report::TextTable table{{"country", "blocks", "frac. diurnal", "GDP"}};
  int shown = 0;
  for (const auto& row : rows) {
    const auto* info = world::FindCountry(row.code);
    table.AddRow({row.code, std::to_string(row.blocks),
                  report::Fixed(row.fraction, 3),
                  info != nullptr
                      ? "$" + report::WithCommas(static_cast<long long>(
                                  info->gdp_per_capita_usd))
                      : "?"});
    if (++shown >= 12) break;
  }
  std::cout << "most diurnal countries (>= 10 measured blocks):\n";
  table.Print(std::cout);

  std::cout << "\nwhere the Internet sleeps (diurnal fraction per cell):\n";
  report::PrintDensityGrid(std::cout,
                           grid.Coarsen(20, 64, /*fractions=*/true));

  // Persist the campaign: anyone can reload and re-analyze without
  // re-probing (the paper publishes its datasets the same way).
  const std::string dataset_path = "/tmp/sleepwalk_observatory.slpw";
  if (core::WriteDataset(dataset_path, result.analyses)) {
    const auto reloaded = core::ReadDataset(dataset_path);
    std::cout << "\ndataset saved to " << dataset_path << " ("
              << (reloaded ? reloaded->blocks.size() : 0u)
              << " blocks; reload verified)\n";
  }
  return 0;
}
