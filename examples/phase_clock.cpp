// Phase clock: geolocating blocks from *when* they sleep (paper §5.2).
//
// The FFT phase of the daily component says when a block wakes relative
// to midnight UTC. Because people wake in local morning, phase tracks
// longitude — this example measures diurnal blocks at known longitudes,
// fits the phase -> longitude mapping, and then predicts the longitude
// of held-out blocks from their phase alone.
//
// Build & run:  ./build/examples/phase_clock
#include <cmath>
#include <iostream>
#include <numbers>

#include "sleepwalk/sleepwalk.h"

namespace {

// Measures one diurnal block that wakes at 08:00 local time at the
// given longitude; returns the detected daily phase, or NaN.
double MeasurePhase(double longitude, std::uint64_t seed) {
  using namespace sleepwalk;
  sim::BlockSpec spec;
  spec.block = net::Prefix24::FromIndex(
      0x200000 + static_cast<std::uint32_t>(seed));
  spec.seed = seed * 0x9e3779b9u + 1;
  spec.n_always = 25;
  spec.n_diurnal = 130;
  spec.response_prob = 0.9F;
  // 08:00 local = 8 - lon/15 hours UTC.
  const double utc_start_h = std::fmod(8.0 - longitude / 15.0 + 48.0, 24.0);
  spec.on_start_sec = static_cast<float>(utc_start_h * 3600.0);
  spec.on_duration_sec = 9.0F * 3600.0F;
  spec.phase_spread_sec = 1.5F * 3600.0F;
  spec.sigma_start_sec = 0.5F * 3600.0F;

  sim::SimTransport transport{seed ^ 0xabc};
  transport.AddBlock(&spec);
  core::AnalyzerConfig config;
  core::BlockAnalyzer analyzer{spec.block, sim::EverActiveOctets(spec),
                               0.7, seed, config};
  const probing::RoundScheduler scheduler{config.schedule};
  analyzer.RunCampaign(transport, scheduler.RoundsForDays(14));
  const auto analysis = analyzer.Finish();
  if (!analysis.diurnal.IsDiurnal()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return analysis.diurnal.phase;
}

}  // namespace

int main() {
  using namespace sleepwalk;
  std::cout << "Phase clock: predicting longitude from the daily FFT "
               "phase (paper Fig 14)\n\n";

  // Calibration set: diurnal blocks at known longitudes.
  struct Sample {
    double longitude;
    double unrolled_phase;
  };
  std::vector<Sample> calibration;
  std::uint64_t seed = 1;
  for (double lon = -165.0; lon <= 165.0; lon += 15.0) {
    const double phase = MeasurePhase(lon, seed++);
    if (std::isnan(phase)) continue;
    calibration.push_back({lon, geo::UnrollPhase(phase, lon)});
  }

  std::vector<double> lons;
  std::vector<double> phases;
  for (const auto& sample : calibration) {
    lons.push_back(sample.longitude);
    phases.push_back(sample.unrolled_phase);
  }
  const auto fit = stats::FitSimple(phases, lons);
  std::cout << "calibrated on " << calibration.size()
            << " blocks: longitude = " << report::Fixed(fit.slope, 1)
            << " * phase + " << report::Fixed(fit.intercept, 1)
            << "  (r = "
            << report::Fixed(stats::PearsonCorrelation(phases, lons), 3)
            << ", paper: 0.835)\n\n";

  // Held-out cities: predict longitude from phase alone.
  struct City {
    const char* name;
    double longitude;
  };
  const City cities[] = {
      {"Los Angeles", -118.2}, {"Bogota", -74.1}, {"Kyiv", 30.5},
      {"Delhi", 77.2},         {"Beijing", 116.4}, {"Tokyo", 139.7},
  };
  report::TextTable table{{"city", "true lon", "predicted lon", "error"}};
  for (const auto& city : cities) {
    const double phase = MeasurePhase(city.longitude, seed++);
    if (std::isnan(phase)) {
      table.AddRow({city.name, report::Fixed(city.longitude, 1),
                    "not diurnal", "-"});
      continue;
    }
    // Evaluate the fit on each unrolling of the phase and keep the
    // prediction that lands on the map.
    double best_prediction = 0.0;
    double best_error = 1e9;
    for (int turn = -1; turn <= 1; ++turn) {
      const double candidate_phase =
          phase + 2.0 * std::numbers::pi * turn;
      const double predicted =
          fit.slope * candidate_phase + fit.intercept;
      if (predicted < -180.0 || predicted > 180.0) continue;
      const double error = std::fabs(predicted - city.longitude);
      if (error < best_error) {
        best_error = error;
        best_prediction = predicted;
      }
    }
    table.AddRow({city.name, report::Fixed(city.longitude, 1),
                  report::Fixed(best_prediction, 1),
                  report::Fixed(best_error, 1) + " deg"});
  }
  table.Print(std::cout);
  std::cout << "(paper Fig 14c: most phases predict longitude within "
               "+/- 20 degrees)\n";
  return 0;
}
