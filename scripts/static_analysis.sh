#!/usr/bin/env bash
# Static-analysis tier (DESIGN.md §8, §14): everything that can prove a
# determinism or thread-safety invariant *without running the code*.
#
#   1. sleeplint --wp    — project-invariant lint (clocks, RNG, raw IO,
#                          unchecked narrowing, header guards) plus the
#                          whole-program analyses: layer-DAG
#                          enforcement, include cycles, cross-TU
#                          lock-order deadlock detection, exception
#                          safety. Emits build/sleeplint.sarif (gated
#                          by jsonl_check --sarif, uploaded by CI) and
#                          build/lock_order.dot (the graph committed in
#                          DESIGN.md §14)
#   2. header hygiene    — every header compiles as its own TU, so any
#                          header can be included first anywhere
#   3. clang-tidy        — curated bugprone/performance/concurrency
#                          profile (.clang-tidy); skipped when the
#                          binary is absent (CI installs it)
#   4. clang -Wthread-safety — compiles the annotated targets with the
#                          thread-safety analysis as errors; skipped
#                          when clang is absent
#
# `--facts` switches step 1 to the sharded two-phase mode: per-layer
# fact extraction into build/facts/ keyed on source content hashes
# (unchanged shards are reused — CI caches the directory), then one
# merge run over the dumps. Same findings, incremental cost.
#
# Exit non-zero on the first failing tier. Steps 3-4 are *skipped*, not
# failed, on toolchain-less boxes so `scripts/tier1.sh --lint` works
# anywhere the project builds; CI runs all four.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
fail=0
facts_mode=0
if [[ "${1:-}" == "--facts" ]]; then
  facts_mode=1
fi

shard_hash() {
  # Content hash of every lintable file under the shard root; any edit,
  # add, or delete changes the hash and invalidates the cached facts.
  find "$1" -type f \
    \( -name '*.h' -o -name '*.hpp' -o -name '*.cc' -o -name '*.cpp' \
       -o -name '*.cxx' \) -print0 |
    sort -z | xargs -0 sha256sum 2>/dev/null | sha256sum | cut -d' ' -f1
}

echo "== static-analysis 1/4: sleeplint =="
cmake -B build -S . >/dev/null
cmake --build build --target sleeplint jsonl_check -j "${jobs}" >/dev/null
if [[ "${facts_mode}" -eq 1 ]]; then
  mkdir -p build/facts
  facts_args=()
  for shard in src/sleepwalk/* examples tools; do
    [[ -d "${shard}" ]] || continue
    name="${shard//\//_}"
    facts_file="build/facts/${name}.facts"
    hash_file="build/facts/${name}.hash"
    hash="$(shard_hash "${shard}")"
    if [[ -f "${facts_file}" && -f "${hash_file}" ]] &&
       [[ "$(cat "${hash_file}")" == "${hash}" ]]; then
      echo "facts cached: ${shard}"
    else
      build/tools/sleeplint --facts-out "${facts_file}" "${shard}"
      printf '%s\n' "${hash}" > "${hash_file}"
    fi
    facts_args+=(--facts-in "${facts_file}")
  done
  build/tools/sleeplint --baseline scripts/sleeplint_baseline.txt --wp \
    --sarif-out build/sleeplint.sarif --dot build/lock_order.dot \
    "${facts_args[@]}" || fail=1
else
  build/tools/sleeplint --baseline scripts/sleeplint_baseline.txt --wp \
    --sarif-out build/sleeplint.sarif --dot build/lock_order.dot \
    src/sleepwalk examples tools || fail=1
fi
build/tools/jsonl_check --sarif build/sleeplint.sarif || fail=1

echo "== static-analysis 2/4: header self-sufficiency =="
# One translation unit per header: if a header silently depends on its
# includer's includes, this is where it breaks.
hdr_tmp="$(mktemp -d)"
trap 'rm -rf "${hdr_tmp}"' EXIT
hdr_fail=0
while IFS= read -r header; do
  rel="${header#src/}"
  printf '#include "%s"\n' "${rel}" > "${hdr_tmp}/tu.cc"
  if ! g++ -std=c++20 -fsyntax-only -Wall -Wextra -Wpedantic \
       -I src "${hdr_tmp}/tu.cc" 2> "${hdr_tmp}/err"; then
    echo "header not self-sufficient: ${header}"
    cat "${hdr_tmp}/err"
    hdr_fail=1
  fi
done < <(find src/sleepwalk -name '*.h' | sort)
if [[ "${hdr_fail}" -ne 0 ]]; then
  fail=1
else
  echo "all headers self-sufficient"
fi

echo "== static-analysis 3/4: clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json is exported by the top-level CMakeLists.
  find src/sleepwalk -name '*.cc' | sort | \
    xargs clang-tidy -p build --quiet || fail=1
else
  echo "clang-tidy not installed; skipping (CI runs this tier)"
fi

echo "== static-analysis 4/4: clang -Wthread-safety =="
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsa -S . \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety-analysis" \
    >/dev/null
  cmake --build build-tsa -j "${jobs}" \
    --target sleepwalk_obs sleepwalk_core sleepwalk_serve || fail=1
else
  echo "clang++ not installed; skipping (CI runs this tier)"
fi

if [[ "${fail}" -ne 0 ]]; then
  echo "== static-analysis: FAILED =="
  exit 1
fi
echo "== static-analysis: all green =="
