#!/usr/bin/env bash
# Performance-regression gate for CI.
#
# Runs the four JSON-emitting benches (parallel_scaling, micro_perf's
# obs ablation, fft_perf's plan ablation, checkpoint_io's durability
# ablation) against a Release build and compares the fresh numbers with
# the baselines committed at the repo root (BENCH_parallel.json,
# BENCH_obs.json, BENCH_fft.json, BENCH_ckpt.json).
#
# Absolute throughput is not portable across runners, so the gate is
# deliberately hardware-calibrated:
#   * the committed BENCH_parallel.json baseline must itself have been
#     recorded for multi-core hardware (`hw_concurrency` > 1): a 1-core
#     baseline can only encode ~1.0 speedup ratios, which would rubber-
#     stamp any scaling regression forever after — the gate refuses to
#     run against one and says how to regenerate it;
#   * `scales.small.equivalent` and `scales.large.resume_identical` must
#     be true — an N-worker campaign that is not byte-identical to the
#     1-worker campaign (or a killed+resumed campaign whose final
#     snapshot differs from the uninterrupted one) is a correctness bug,
#     not a perf problem, and fails immediately;
#   * the small-scale workers:2 / workers:1 speedup ratio may not
#     regress more than TOLERANCE_PCT below the committed baseline ratio
#     (a pinned 2-worker comparison is meaningful on any >=2-core
#     runner; on a 1-core machine the ratio is ~1.0 on both sides, so
#     the gate stays honest without false alarms);
#   * on runners that actually detect >= 8 hardware threads the 8-worker
#     speedup must reach MIN_SPEEDUP_8V1 at the small scale (the
#     sharding exists to buy ~linear scaling; on smaller machines — or
#     when the fresh hw number is an SLEEPWALK_BENCH_HW override — this
#     is reported but not enforced);
#   * blocks/sec at both scales must clear a generous cross-machine
#     floor (MIN_BPS_FRACTION of the committed baseline, enforced only
#     when the scale configuration matches): a 4x collapse is a real
#     regression on any hardware this project targets — the large scale
#     is the FULL pipeline (observe + series rings + classify sweep)
#     since PR 10, and its classify-only blocks/sec gets the same floor;
#   * `scales.large.durability_within_budget` must stay true — at 100k
#     blocks a checkpointed store campaign may not cost more than 10%
#     extra wall time over an unchecked one;
#   * `scales.large.rss_within_budget` must stay true — peak RSS at the
#     large scale is bounded by a scale-derived budget (~5 arena images
#     plus slack), so an accidental per-block materialization in the
#     columnar sweep fails the gate on any machine;
#   * the obs ablation's `null_context_within_budget` must stay true, and
#     its null-context overhead may not exceed the committed overhead by
#     more than TOLERANCE_PCT points;
#   * the obs ablation's `admin_within_budget` must stay true — with the
#     admin server attached and scraped mid-bench, the hot path may not
#     lose more than half its throughput (loopback-scrape interference
#     is too noisy for a drift bound, so this is a coarse same-machine
#     contract like the durability one);
#   * the fft plan ablation's campaign-size (n=1834, even non-power-of-
#     two) plan-vs-planless speedup must stay >= its committed
#     `speedup_target` (2x — a pure ratio, portable across runners) and
#     may not regress more than TOLERANCE_PCT below the committed ratio;
#   * checkpoint_io's `durability_within_budget` must stay true — a
#     checkpointed campaign may not cost more than 10% extra wall time
#     over an unchecked one (a same-machine ratio, portable across
#     runners; the raw MB/s numbers are informational).
#
# Usage: scripts/bench_gate.sh [build-dir]      (default: build-release)
# Output: fresh JSON written into the build dir (CI uploads as artifact).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-release}"
TOLERANCE_PCT=15
MIN_SPEEDUP_8V1=3.0
MIN_BPS_FRACTION=0.25

if [[ ! -x "${BUILD_DIR}/bench/parallel_scaling" ||
      ! -x "${BUILD_DIR}/bench/micro_perf" ||
      ! -x "${BUILD_DIR}/bench/fft_perf" ||
      ! -x "${BUILD_DIR}/bench/checkpoint_io" ]]; then
  echo "bench_gate: ${BUILD_DIR} lacks bench binaries; build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . -DCMAKE_BUILD_TYPE=Release" >&2
  echo "  cmake --build ${BUILD_DIR} -j --target parallel_scaling micro_perf fft_perf checkpoint_io" >&2
  exit 2
fi

echo "== bench_gate: parallel_scaling =="
SLEEPWALK_BENCH_PARALLEL_OUT="${BUILD_DIR}/BENCH_parallel.json" \
  "${BUILD_DIR}/bench/parallel_scaling"

echo "== bench_gate: micro_perf (obs ablation only) =="
SLEEPWALK_BENCH_OBS_OUT="${BUILD_DIR}/BENCH_obs.json" \
  "${BUILD_DIR}/bench/micro_perf" \
  --benchmark_filter='BM_SpectrumAndClassify$'

echo "== bench_gate: fft_perf (plan ablation only) =="
SLEEPWALK_BENCH_FFT_OUT="${BUILD_DIR}/BENCH_fft.json" \
  "${BUILD_DIR}/bench/fft_perf" \
  --benchmark_filter='BM_ForwardRealPlanned/1834$'

echo "== bench_gate: checkpoint_io (durability ablation) =="
SLEEPWALK_BENCH_CKPT_OUT="${BUILD_DIR}/BENCH_ckpt.json" \
  "${BUILD_DIR}/bench/checkpoint_io"

echo "== bench_gate: comparing against committed baselines =="
python3 - "${BUILD_DIR}" "${TOLERANCE_PCT}" "${MIN_SPEEDUP_8V1}" "${MIN_BPS_FRACTION}" <<'EOF'
import json
import sys

build_dir, tolerance_pct, min_speedup, min_bps_fraction = (
    sys.argv[1], float(sys.argv[2]), float(sys.argv[3]), float(sys.argv[4]))
failures = []


def load(path):
    with open(path) as handle:
        return json.load(handle)


base_par = load("BENCH_parallel.json")
fresh_par = load(f"{build_dir}/BENCH_parallel.json")
base_obs = load("BENCH_obs.json")
fresh_obs = load(f"{build_dir}/BENCH_obs.json")
base_fft = load("BENCH_fft.json")
fresh_fft = load(f"{build_dir}/BENCH_fft.json")
base_ckpt = load("BENCH_ckpt.json")
fresh_ckpt = load(f"{build_dir}/BENCH_ckpt.json")

# 0. Refuse a baseline that cannot express scaling at all. A baseline
# recorded on (or as) a single-core machine pins every speedup ratio
# near 1.0, so the drift gates below would wave through any scaling
# regression, forever. Fail loudly, with the remediation. This also
# catches the inconsistent-provenance case that actually shipped once:
# a committed baseline claiming hw_concurrency 1 with hw_source
# "detected" — i.e. recorded from a 1-core container without the
# documented SLEEPWALK_BENCH_HW override stating the hardware class.
base_hw = int(base_par.get("hw_concurrency", 1))
if "hw_source" not in base_par:
    print("bench_gate: committed BENCH_parallel.json lacks hw_source; "
          "re-record it so the baseline states its hardware provenance",
          file=sys.stderr)
    sys.exit(1)
if base_hw <= 1:
    print(f"bench_gate: committed BENCH_parallel.json was recorded with "
          f"hw_concurrency={base_hw}", file=sys.stderr)
    print("bench_gate: a single-core baseline encodes ~1.0 speedups and "
          "would mask any future scaling regression.", file=sys.stderr)
    print("bench_gate: regenerate it on a multi-core machine:\n"
          "  SLEEPWALK_BENCH_PARALLEL_OUT=BENCH_parallel.json "
          "build-release/bench/parallel_scaling\n"
          "or, when recording from a constrained container that stands in "
          "for multi-core campaign hardware, state the hardware class "
          "explicitly:\n"
          "  SLEEPWALK_BENCH_HW=8 SLEEPWALK_BENCH_PARALLEL_OUT="
          "BENCH_parallel.json build-release/bench/parallel_scaling",
          file=sys.stderr)
    sys.exit(1)

base_small = base_par["scales"]["small"]
fresh_small = fresh_par["scales"]["small"]
base_large = base_par["scales"]["large"]
fresh_large = fresh_par["scales"]["large"]

# 1. Correctness flags: parallelism must stay byte-identical, and a
# killed 100k-block store campaign resumed at a different worker count
# must converge on the same final snapshot bytes.
if not fresh_small.get("equivalent"):
    failures.append("parallel_scaling: workers-1 vs workers-8 datasets differ")
if not fresh_large.get("resume_identical"):
    failures.append(
        "parallel_scaling: killed+resumed large campaign's final snapshot "
        "differs from the uninterrupted run")

# 2. Pinned 2-worker ratio vs the committed ratio (regression direction
# only; being faster than baseline is never an error).
base_ratio = float(base_small.get("speedup_2v1", 0.0))
fresh_ratio = float(fresh_small.get("speedup_2v1", 0.0))
floor = base_ratio * (1.0 - tolerance_pct / 100.0)
print(f"small speedup_2v1: fresh {fresh_ratio:.3f} vs baseline {base_ratio:.3f} "
      f"(floor {floor:.3f})")
if fresh_ratio < floor:
    failures.append(
        f"parallel_scaling: small speedup_2v1 regressed {fresh_ratio:.3f} < "
        f"{floor:.3f} (baseline {base_ratio:.3f} - {tolerance_pct}%)")

# 3. Absolute scaling demand, only where the hardware can actually
# deliver it: an SLEEPWALK_BENCH_HW override on the fresh run describes
# intent, not silicon, so it never arms this gate.
hw = int(fresh_par.get("hw_concurrency", 1))
hw_source = fresh_par.get("hw_source", "detected")
for scale, fresh in (("small", fresh_small), ("large", fresh_large)):
    speedup8 = float(fresh.get("speedup_8v1", 0.0))
    if hw >= 8 and hw_source == "detected":
        print(f"{scale} speedup_8v1: {speedup8:.2f} "
              f"(required >= {min_speedup} on {hw} threads)")
        if speedup8 < min_speedup:
            failures.append(
                f"parallel_scaling: {scale} speedup_8v1 {speedup8:.2f} < "
                f"{min_speedup} on {hw}-thread runner")
    else:
        print(f"{scale} speedup_8v1: {speedup8:.2f} (informational; "
              f"runner has {hw} threads, source {hw_source})")

# 3b. Cross-machine throughput floor at both scales. Absolute blocks/sec
# is not portable, but a collapse to a quarter of the committed number
# is a regression on any hardware this project targets. Enforced only
# when the scale's workload configuration matches the baseline's. The
# large scale is the full pipeline (observe + series rings + classify
# sweep), so its classify-only throughput gets the same floor.
for scale, base, fresh, keys in (
        ("small", base_small, fresh_small, ("blocks", "rounds_per_block")),
        ("large", base_large, fresh_large,
         ("blocks", "rounds", "series_capacity", "pipeline"))):
    if any(base.get(k) != fresh.get(k) for k in keys):
        print(f"{scale} blocks_per_sec: config differs from baseline; "
              f"floor not enforced")
        continue
    base_bps = float(base.get("blocks_per_sec", {}).get("1", 0.0))
    fresh_bps = float(fresh.get("blocks_per_sec", {}).get("1", 0.0))
    bps_floor = base_bps * min_bps_fraction
    print(f"{scale} blocks_per_sec(1): fresh {fresh_bps:.0f} vs baseline "
          f"{base_bps:.0f} (floor {bps_floor:.0f})")
    if fresh_bps < bps_floor:
        failures.append(
            f"parallel_scaling: {scale} blocks_per_sec collapsed to "
            f"{fresh_bps:.0f} (< {min_bps_fraction:.2f}x of baseline "
            f"{base_bps:.0f})")
    if scale == "large":
        base_cls = float(base.get("classify_blocks_per_sec", 0.0))
        fresh_cls = float(fresh.get("classify_blocks_per_sec", 0.0))
        cls_floor = base_cls * min_bps_fraction
        print(f"large classify_blocks_per_sec: fresh {fresh_cls:.0f} vs "
              f"baseline {base_cls:.0f} (floor {cls_floor:.0f})")
        if base_cls > 0.0 and fresh_cls < cls_floor:
            failures.append(
                f"parallel_scaling: classify sweep collapsed to "
                f"{fresh_cls:.0f} blocks/sec (< {min_bps_fraction:.2f}x of "
                f"baseline {base_cls:.0f})")

# 3c. Paper-scale durability: the boolean budget the bench computes
# (checkpointed store campaign within 10% of the unchecked one).
large_tax = float(fresh_large.get("durability_overhead_pct", 0.0))
print(f"large durability_overhead_pct: {large_tax:.2f} (budget < 10)")
if not fresh_large.get("durability_within_budget"):
    failures.append(
        f"parallel_scaling: large-scale durability overhead {large_tax:.2f}% "
        f"exceeds the 10% budget")

# 3d. Paper-scale memory: peak RSS against the bench's scale-derived
# budget (~5 arena images + fixed slack). A same-machine boolean like
# the durability contract, enforced at every scale: an accidental
# per-block materialization in the classify sweep blows this on any
# hardware. peak_rss_mb == 0 means /proc was unavailable (reported,
# not enforced).
rss = float(fresh_large.get("peak_rss_mb", 0.0))
rss_budget = float(fresh_large.get("rss_budget_mb", 0.0))
if rss > 0.0:
    print(f"large peak_rss_mb: {rss:.0f} (budget < {rss_budget:.0f})")
    if not fresh_large.get("rss_within_budget"):
        failures.append(
            f"parallel_scaling: peak RSS {rss:.0f} MB exceeds the "
            f"{rss_budget:.0f} MB budget at the large scale")
else:
    print("large peak_rss_mb: unavailable (no /proc); not enforced")

# 4. Observability stays free: the boolean contract plus a drift bound on
# the (already hardware-relative) overhead percentage.
if not fresh_obs.get("null_context_within_budget"):
    failures.append("micro_perf: null-context obs overhead exceeded its budget")
base_overhead = float(base_obs.get("null_context_overhead_pct", 0.0))
fresh_overhead = float(fresh_obs.get("null_context_overhead_pct", 0.0))
ceiling = base_overhead + tolerance_pct / 10.0  # pct points, tight by design
print(f"null_context_overhead_pct: fresh {fresh_overhead:.2f} vs baseline "
      f"{base_overhead:.2f} (ceiling {ceiling:.2f})")
if fresh_overhead > ceiling:
    failures.append(
        f"micro_perf: null-context overhead {fresh_overhead:.2f}% drifted past "
        f"{ceiling:.2f}% (baseline {base_overhead:.2f}%)")

# 4b. Attaching the admin plane (scraped from another thread the whole
# time) must not wreck the hot path. The raw overhead percentage is
# scheduler-interference-dominated and swings by tens of points between
# runs of the same binary, so a drift bound against the baseline would
# flake; like the durability gate, the contract is the same-machine
# boolean budget the bench itself computes (overhead < 50%), plus proof
# that the scraper actually exercised the server.
if fresh_obs.get("admin_attached"):
    base_admin = float(base_obs.get("admin_attached_overhead_pct", 0.0))
    fresh_admin = float(fresh_obs.get("admin_attached_overhead_pct", 0.0))
    admin_budget = float(fresh_obs.get("admin_overhead_budget_pct", 50.0))
    scrapes = int(fresh_obs.get("admin_scrapes_during_bench", 0))
    print(f"admin_attached_overhead_pct: fresh {fresh_admin:.2f} vs baseline "
          f"{base_admin:.2f} (budget < {admin_budget:.1f}, {scrapes} scrapes)")
    if scrapes == 0:
        failures.append("micro_perf: admin server attached but never scraped")
    if not fresh_obs.get("admin_within_budget"):
        failures.append(
            f"micro_perf: admin-attached overhead {fresh_admin:.2f}% exceeds "
            f"the {admin_budget:.1f}% budget")
else:
    print("admin_attached: false (server failed to start; ablation skipped)")

# 5. Spectral plan cache keeps paying: the campaign-size speedup is a
# pure same-machine ratio, so both an absolute floor (the committed
# speedup_target) and a drift bound vs the committed ratio apply.
target = float(base_fft.get("speedup_target", 2.0))
base_speedup = float(base_fft.get("campaign_even_speedup", 0.0))
fresh_speedup = float(fresh_fft.get("campaign_even_speedup", 0.0))
drift_floor = base_speedup * (1.0 - tolerance_pct / 100.0)
print(f"fft campaign_even_speedup: fresh {fresh_speedup:.3f} vs baseline "
      f"{base_speedup:.3f} (target >= {target:.1f}, drift floor {drift_floor:.3f})")
if not fresh_fft.get("campaign_speedup_within_target"):
    failures.append(
        f"fft_perf: campaign_even_speedup {fresh_speedup:.3f} below the "
        f"{target:.1f}x target")
if fresh_speedup < drift_floor:
    failures.append(
        f"fft_perf: campaign_even_speedup regressed {fresh_speedup:.3f} < "
        f"{drift_floor:.3f} (baseline {base_speedup:.3f} - {tolerance_pct}%)")

# 6. Durability stays cheap: the boolean budget contract (< 10% campaign
# wall time) is the gate; absolute MB/s is hardware-bound, so the
# throughput numbers are printed for the log but not enforced.
budget = float(fresh_ckpt.get("durability_budget_pct", 10.0))
base_tax = float(base_ckpt.get("durability_overhead_pct", 0.0))
fresh_tax = float(fresh_ckpt.get("durability_overhead_pct", 0.0))
print(f"durability_overhead_pct: fresh {fresh_tax:.2f} vs baseline "
      f"{base_tax:.2f} (budget < {budget:.1f})")
print(f"checkpoint encode/decode/save MB/s: "
      f"{float(fresh_ckpt.get('encode_mb_per_sec_large', 0.0)):.0f} / "
      f"{float(fresh_ckpt.get('decode_mb_per_sec_large', 0.0)):.0f} / "
      f"{float(fresh_ckpt.get('save_mb_per_sec_large', 0.0)):.0f}")
if not fresh_ckpt.get("durability_within_budget"):
    failures.append(
        f"checkpoint_io: durability overhead {fresh_tax:.2f}% exceeds the "
        f"{budget:.1f}% budget")

if failures:
    print("\nbench_gate: FAIL")
    for failure in failures:
        print(f"  - {failure}")
    sys.exit(1)
print("\nbench_gate: OK")
EOF
