#!/usr/bin/env bash
# Tier-1 verification: the plain build + full test suite, then the fault
# subsystem again under AddressSanitizer + UndefinedBehaviorSanitizer.
#
# The sanitizer pass exists because the resilience paths are exactly the
# ones that juggle raw state buffers (checkpoint serialization, transport
# snapshot/restore, mid-round rollback) — the code most likely to hide a
# lifetime or aliasing bug that a passing assertion can't see.
#
# Usage: scripts/tier1.sh [--skip-sanitize | --lint]
#   --lint  run only the static-analysis tier (scripts/static_analysis.sh)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--lint" ]]; then
  exec scripts/static_analysis.sh
fi

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== tier-1: plain build + full ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}"
# --timeout: no single test may wedge the suite — a hung worker pool or
# a crash-sweep livelock should fail that one test, not stall CI until
# the job-level timeout reaps the whole run.
ctest --test-dir build --output-on-failure -j "${jobs}" --timeout 300

echo "== tier-1: telemetry smoke (CLI with all three sinks) =="
# A small measure run with every sink enabled: the JSONL event log and
# trace must validate line-by-line, metrics must expose, and two
# same-seed runs must emit byte-identical telemetry and datasets (the
# determinism contract of DESIGN.md §7).
smoke="$(mktemp -d)"
trap 'rm -rf "${smoke}"' EXIT
for run in a b; do
  build/examples/sleepwalk_cli measure \
    --blocks 20 --days 3 --seed 11 --loss 0.05 \
    --out "${smoke}/${run}.slpw" \
    --log-level debug --log-json "${smoke}/${run}.jsonl" \
    --metrics-out "${smoke}/${run}.prom" \
    --trace-out "${smoke}/${run}.trace.jsonl" \
    --trace-chrome "${smoke}/${run}.chrome.json" \
    >"${smoke}/${run}.stdout" 2>/dev/null
done
build/tools/jsonl_check "${smoke}/a.jsonl" "${smoke}/a.trace.jsonl"
build/tools/jsonl_check --chrome-trace "${smoke}/a.chrome.json"
cmp "${smoke}/a.jsonl" "${smoke}/b.jsonl"
cmp "${smoke}/a.trace.jsonl" "${smoke}/b.trace.jsonl"
cmp "${smoke}/a.chrome.json" "${smoke}/b.chrome.json"
cmp "${smoke}/a.prom" "${smoke}/b.prom"
cmp "${smoke}/a.slpw" "${smoke}/b.slpw"
# Sink-free run: telemetry must be inert (identical dataset bytes).
build/examples/sleepwalk_cli measure \
  --blocks 20 --days 3 --seed 11 --loss 0.05 \
  --out "${smoke}/bare.slpw" >/dev/null 2>&1
cmp "${smoke}/a.slpw" "${smoke}/bare.slpw"
grep -q '^sleepwalk_probes_attempted_total ' "${smoke}/a.prom"
echo "telemetry smoke OK"

echo "== tier-1: admin plane smoke (live endpoints + inertness) =="
scripts/admin_smoke.sh build

echo "== tier-1: storage smoke (slck_fsck over fresh artifacts) =="
# A checkpointed run, then fsck: every fresh artifact (dataset, primary
# checkpoint, retained generations) must verify intact; a single flipped
# byte must turn the verdict to exit 1.
build/examples/sleepwalk_cli measure \
  --blocks 20 --days 3 --seed 11 --loss 0.05 \
  --out "${smoke}/ck.slpw" --checkpoint "${smoke}/ck.slck" \
  --checkpoint-keep 3 >/dev/null 2>&1
build/tools/slck_fsck "${smoke}/ck.slpw" "${smoke}/ck.slck" \
  "${smoke}"/ck.slck.g*
cp "${smoke}/ck.slck" "${smoke}/bad.slck"
printf '\xa5' | dd of="${smoke}/bad.slck" bs=1 seek=60 count=1 \
  conv=notrunc 2>/dev/null
if build/tools/slck_fsck "${smoke}/bad.slck" >/dev/null; then
  echo "slck_fsck missed an injected corruption" >&2
  exit 1
fi
# SLPW v3 columnar dataset: write one through the CLI, verify fsck
# accepts it and that analyze reads it back with the same summary the
# framed v2 file produced; a flipped byte in the values region must
# fail the columnar verify.
build/examples/sleepwalk_cli measure \
  --blocks 20 --days 3 --seed 11 --loss 0.05 \
  --dataset-format v3 --out "${smoke}/ck3.slpw" >/dev/null 2>&1
build/tools/slck_fsck --verbose "${smoke}/ck3.slpw" | grep -q "SLPW v3"
build/examples/sleepwalk_cli analyze --in "${smoke}/ck.slpw" \
  >"${smoke}/an2.txt"
build/examples/sleepwalk_cli analyze --in "${smoke}/ck3.slpw" \
  >"${smoke}/an3.txt"
cmp "${smoke}/an2.txt" "${smoke}/an3.txt"
cp "${smoke}/ck3.slpw" "${smoke}/bad3.slpw"
size3="$(wc -c < "${smoke}/bad3.slpw")"
printf '\xa5' | dd of="${smoke}/bad3.slpw" bs=1 seek=$((size3 - 7)) \
  count=1 conv=notrunc 2>/dev/null
if build/tools/slck_fsck "${smoke}/bad3.slpw" >/dev/null; then
  echo "slck_fsck missed a corrupted v3 dataset" >&2
  exit 1
fi
echo "storage smoke OK"

if [[ "${1:-}" == "--skip-sanitize" ]]; then
  echo "== tier-1: sanitizer pass skipped =="
  exit 0
fi

echo "== tier-1: ASan+UBSan build of the fault/resilience tests =="
cmake -B build-asan -S . \
  -DSLEEPWALK_SANITIZE="address;undefined" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "${jobs}" --target faults_test integration_test \
  crash_sweep_test
ctest --test-dir build-asan --output-on-failure -j "${jobs}" --timeout 600 \
  -R 'FaultPlan|GilbertElliott|FaultyTransport|Supervisor|ResilienceReport|Determinism|RestartArtifact|ObsInertness|ObsReconciliation|CrashSweep'

echo "== tier-1: all green =="
