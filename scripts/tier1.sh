#!/usr/bin/env bash
# Tier-1 verification: the plain build + full test suite, then the fault
# subsystem again under AddressSanitizer + UndefinedBehaviorSanitizer.
#
# The sanitizer pass exists because the resilience paths are exactly the
# ones that juggle raw state buffers (checkpoint serialization, transport
# snapshot/restore, mid-round rollback) — the code most likely to hide a
# lifetime or aliasing bug that a passing assertion can't see.
#
# Usage: scripts/tier1.sh [--skip-sanitize]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== tier-1: plain build + full ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}"
ctest --test-dir build --output-on-failure -j "${jobs}"

if [[ "${1:-}" == "--skip-sanitize" ]]; then
  echo "== tier-1: sanitizer pass skipped =="
  exit 0
fi

echo "== tier-1: ASan+UBSan build of the fault/resilience tests =="
cmake -B build-asan -S . \
  -DSLEEPWALK_SANITIZE="address;undefined" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "${jobs}" --target faults_test integration_test
ctest --test-dir build-asan --output-on-failure -j "${jobs}" \
  -R 'FaultPlan|GilbertElliott|FaultyTransport|Supervisor|ResilienceReport|Determinism|RestartArtifact'

echo "== tier-1: all green =="
