#!/usr/bin/env bash
# Admin-plane smoke: boot a real campaign with the loopback admin server
# attached, scrape every endpoint while it runs, render it with
# sleeptop, validate the Chrome trace artifact, and prove the whole
# admin plane was inert (byte-identical dataset vs an unobserved run).
#
# This is the end-to-end complement to serve_test (which drives the
# server over synthetic routes): here the routes are the real
# /metrics, /healthz, /statusz and /tracez wired to a live
# CampaignLedger, Registry and Tracer mid-campaign.
#
# Usage: scripts/admin_smoke.sh [build-dir]      (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
CLI="${BUILD_DIR}/examples/sleepwalk_cli"
for tool in "${CLI}" "${BUILD_DIR}/tools/sleeptop" "${BUILD_DIR}/tools/jsonl_check"; do
  if [[ ! -x "${tool}" ]]; then
    echo "admin_smoke: missing ${tool}; build first (cmake --build ${BUILD_DIR} -j)" >&2
    exit 2
  fi
done

smoke="$(mktemp -d)"
cli_pid=""
cleanup() {
  [[ -n "${cli_pid}" ]] && kill "${cli_pid}" 2>/dev/null || true
  rm -rf "${smoke}"
}
trap cleanup EXIT

# A campaign big enough to stay alive for a few seconds of scraping.
run_flags=(--blocks 400 --days 14 --seed 11 --loss 0.05 --workers 2)

echo "== admin_smoke: campaign with --admin-port 0 =="
"${CLI}" measure "${run_flags[@]}" \
  --out "${smoke}/admin.slpw" \
  --trace-chrome "${smoke}/trace.chrome.json" \
  --admin-port 0 --admin-port-file "${smoke}/port" \
  >"${smoke}/admin.stdout" 2>"${smoke}/admin.stderr" &
cli_pid=$!

# The CLI writes the ephemeral port once the server is listening.
port=""
for _ in $(seq 1 100); do
  if [[ -s "${smoke}/port" ]]; then
    port="$(cat "${smoke}/port")"
    break
  fi
  if ! kill -0 "${cli_pid}" 2>/dev/null; then
    echo "admin_smoke: campaign exited before publishing its port" >&2
    cat "${smoke}/admin.stderr" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -n "${port}" ]] || { echo "admin_smoke: no port file after 10s" >&2; exit 1; }
echo "admin server on 127.0.0.1:${port}"

# Scrape every endpoint mid-campaign and validate each payload.
curl -fsS "http://127.0.0.1:${port}/healthz" >"${smoke}/healthz"
[[ "$(cat "${smoke}/healthz")" == "ok" ]] \
  || { echo "admin_smoke: /healthz body was not 'ok'" >&2; exit 1; }
curl -fsS "http://127.0.0.1:${port}/statusz" >"${smoke}/statusz"
grep -q '"attached":true' "${smoke}/statusz" \
  || { echo "admin_smoke: /statusz reports no campaign attached" >&2; exit 1; }
grep -q '"blocks_total":' "${smoke}/statusz" \
  || { echo "admin_smoke: /statusz lacks campaign fields" >&2; exit 1; }
curl -fsS "http://127.0.0.1:${port}/metrics" >"${smoke}/metrics"
grep -q '^sleepwalk_' "${smoke}/metrics" \
  || { echo "admin_smoke: /metrics exposes no sleepwalk_ series" >&2; exit 1; }
curl -fsS "http://127.0.0.1:${port}/tracez" >"${smoke}/tracez"
head -c1 "${smoke}/tracez" | grep -q '\[' \
  || { echo "admin_smoke: /tracez is not a JSON array" >&2; exit 1; }
# 404 and HEAD behave like an HTTP server should.
curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:${port}/nope" \
  | grep -q '^404$' || { echo "admin_smoke: unknown path not 404" >&2; exit 1; }
curl -fsSI "http://127.0.0.1:${port}/healthz" >/dev/null

# sleeptop renders one frame from the same live endpoint.
"${BUILD_DIR}/tools/sleeptop" --port "${port}" --once >"${smoke}/top"
grep -q '^sleepwalk campaign @ 127.0.0.1:' "${smoke}/top" \
  || { echo "admin_smoke: sleeptop did not render a status frame" >&2; exit 1; }
echo "live endpoints OK"

wait "${cli_pid}"
cli_pid=""

# The Chrome trace artifact must pass the tier-1 checker.
"${BUILD_DIR}/tools/jsonl_check" --chrome-trace "${smoke}/trace.chrome.json"

echo "== admin_smoke: observer inertness (dataset bytes) =="
"${CLI}" measure "${run_flags[@]}" --out "${smoke}/bare.slpw" \
  >/dev/null 2>&1
cmp "${smoke}/admin.slpw" "${smoke}/bare.slpw"
echo "admin_smoke OK"
