#include "sleepwalk/ts/stationarity.h"

#include <gtest/gtest.h>

#include <vector>

#include "sleepwalk/util/rng.h"

namespace sleepwalk::ts {
namespace {

TEST(Stationarity, FlatSeriesIsStationary) {
  const std::vector<double> series(500, 0.6);
  const auto result = TestStationarity(series, /*ever_active=*/100);
  EXPECT_TRUE(result.stationary);
  EXPECT_NEAR(result.slope_per_round, 0.0, 1e-12);
  EXPECT_NEAR(result.addresses_per_day, 0.0, 1e-9);
}

TEST(Stationarity, NoisyFlatSeriesIsStationary) {
  Rng rng{5};
  std::vector<double> series(1834);
  for (auto& v : series) v = 0.5 + 0.02 * rng.NextGaussian();
  const auto result = TestStationarity(series, 100);
  EXPECT_TRUE(result.stationary);
}

TEST(Stationarity, StrongTrendIsNotStationary) {
  // Availability climbing 0.3 over two weeks in a 200-address block:
  // about 4 addresses/day, well over the 1/day threshold.
  std::vector<double> series(1834);
  for (std::size_t i = 0; i < series.size(); ++i) {
    series[i] = 0.3 + 0.3 * static_cast<double>(i) /
                          static_cast<double>(series.size());
  }
  const auto result = TestStationarity(series, 200);
  EXPECT_FALSE(result.stationary);
  EXPECT_GT(result.addresses_per_day, 1.0);
}

TEST(Stationarity, ThresholdScalesWithBlockSize) {
  // The same relative trend is stationary for a tiny block but not for a
  // huge one, because the threshold is absolute addresses/day (paper:
  // "slope equivalent to less than 1 address change per day").
  std::vector<double> series(1834);
  for (std::size_t i = 0; i < series.size(); ++i) {
    series[i] = 0.5 + 0.05 * static_cast<double>(i) /
                          static_cast<double>(series.size());
  }
  EXPECT_TRUE(TestStationarity(series, 20).stationary);
  EXPECT_FALSE(TestStationarity(series, 2000).stationary);
}

TEST(Stationarity, DiurnalSeriesIsStationary) {
  // A daily oscillation has no linear trend: slope near zero.
  std::vector<double> series(1834);
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double day_fraction =
        static_cast<double>(i % 131) / 131.0;
    series[i] = day_fraction < 0.4 ? 0.8 : 0.3;
  }
  const auto result = TestStationarity(series, 150);
  EXPECT_TRUE(result.stationary);
}

TEST(Stationarity, DegenerateInputs) {
  EXPECT_FALSE(TestStationarity({}, 100).stationary);
  const std::vector<double> one = {0.5};
  EXPECT_FALSE(TestStationarity(one, 100).stationary);
}

TEST(Stationarity, CustomThreshold) {
  std::vector<double> series(1000);
  for (std::size_t i = 0; i < series.size(); ++i) {
    series[i] = 0.5 + 0.0001 * static_cast<double>(i);
  }
  const auto strict = TestStationarity(series, 100, /*max=*/0.5);
  const auto loose = TestStationarity(series, 100, /*max=*/10.0);
  EXPECT_FALSE(strict.stationary);
  EXPECT_TRUE(loose.stationary);
}

}  // namespace
}  // namespace sleepwalk::ts
