// Property tests for the cleaning pipeline: invariants that must hold
// for ANY probe stream, not just the crafted unit cases.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sleepwalk/ts/clean.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::ts {
namespace {

RawSeries RandomRaw(Rng& rng, int span) {
  RawSeries raw;
  std::int64_t round = static_cast<std::int64_t>(rng.NextBelow(1000));
  const int events = 1 + static_cast<int>(rng.NextBelow(
                             static_cast<std::uint64_t>(span)));
  for (int i = 0; i < events; ++i) {
    raw.Add(round, rng.NextDouble());
    // Mixture of advance-by-one (normal), skips (missing rounds), and
    // repeats (duplicates) — the paper's ~5% irregularity, exaggerated.
    const auto move = rng.NextBelow(10);
    if (move < 6) round += 1;
    else if (move < 8) round += 1 + static_cast<std::int64_t>(
                                    rng.NextBelow(4));
    // else: repeat the same round
  }
  return raw;
}

TEST(RegularizeProperty, OutputIsAlwaysDenseAndCoversRange) {
  Rng rng{0x9e9};
  for (int trial = 0; trial < 300; ++trial) {
    const auto raw = RandomRaw(rng, 200);
    const auto even = Regularize(raw);
    ASSERT_TRUE(even.has_value());

    std::int64_t min_round = raw.observations().front().round;
    std::int64_t max_round = min_round;
    for (const auto& obs : raw.observations()) {
      min_round = std::min(min_round, obs.round);
      max_round = std::max(max_round, obs.round);
    }
    EXPECT_EQ(even->first_round, min_round);
    EXPECT_EQ(static_cast<std::int64_t>(even->size()),
              max_round - min_round + 1);
    for (const double v : even->values) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(RegularizeProperty, ObservedRoundsKeepTheirLatestValue) {
  Rng rng{0xaea};
  for (int trial = 0; trial < 300; ++trial) {
    const auto raw = RandomRaw(rng, 150);
    const auto even = Regularize(raw);
    ASSERT_TRUE(even.has_value());
    // Latest observation per round (arrival order).
    std::map<std::int64_t, double> latest;
    for (const auto& obs : raw.observations()) {
      latest[obs.round] = obs.value;
    }
    for (const auto& [round, value] : latest) {
      const auto index =
          static_cast<std::size_t>(round - even->first_round);
      EXPECT_DOUBLE_EQ(even->values[index], value) << "round " << round;
    }
  }
}

TEST(RegularizeProperty, IdempotentOnCleanInput) {
  Rng rng{0xbeb};
  RawSeries raw;
  for (int i = 0; i < 100; ++i) raw.Add(i, rng.NextDouble());
  const auto once = Regularize(raw);
  ASSERT_TRUE(once.has_value());
  RawSeries again_raw;
  for (std::size_t i = 0; i < once->size(); ++i) {
    again_raw.Add(once->first_round + static_cast<std::int64_t>(i),
                  once->values[i]);
  }
  CleanStats stats;
  const auto twice = Regularize(again_raw, &stats);
  ASSERT_TRUE(twice.has_value());
  EXPECT_EQ(twice->values, once->values);
  EXPECT_EQ(stats.duplicates_dropped, 0u);
  EXPECT_EQ(stats.single_gaps_filled, 0u);
  EXPECT_EQ(stats.long_gaps_filled, 0u);
}

TEST(TrimProperty, AlwaysStartsAndEndsNearMidnight) {
  Rng rng{0xcec};
  for (int trial = 0; trial < 200; ++trial) {
    EvenSeries series;
    series.first_round = static_cast<std::int64_t>(rng.NextBelow(300));
    series.values.assign(200 + rng.NextBelow(2000), 0.5);
    const std::int64_t epoch =
        static_cast<std::int64_t>(rng.NextBelow(86400 * 3));
    const auto trimmed = TrimToMidnightUtc(series, epoch);
    if (!trimmed.has_value()) continue;  // too short after trimming

    const std::int64_t start_sec =
        epoch + trimmed->first_round * kRoundSeconds;
    const std::int64_t end_sec =
        epoch + (trimmed->first_round +
                 static_cast<std::int64_t>(trimmed->size())) *
                    kRoundSeconds;
    // Start within one round after a midnight; end within half a round
    // of a midnight (nearest-round policy).
    EXPECT_LT(start_sec % 86400, kRoundSeconds) << "trial " << trial;
    const std::int64_t end_offset = end_sec % 86400;
    EXPECT_TRUE(end_offset <= kRoundSeconds ||
                end_offset >= 86400 - kRoundSeconds)
        << "trial " << trial << " end offset " << end_offset;
    // Trimmed series is a contiguous slice of the original values.
    EXPECT_GE(trimmed->first_round, series.first_round);
    EXPECT_LE(trimmed->size(), series.size());
  }
}

TEST(TrimProperty, OutputSpansWholeDaysWithinHalfRound) {
  Rng rng{0xded};
  for (int trial = 0; trial < 200; ++trial) {
    EvenSeries series;
    series.first_round = 0;
    series.values.assign(400 + rng.NextBelow(4000), 0.5);
    const auto trimmed = TrimToMidnightUtc(series, 0);
    if (!trimmed.has_value()) continue;
    const std::int64_t span_sec =
        static_cast<std::int64_t>(trimmed->size()) * kRoundSeconds;
    const std::int64_t remainder = span_sec % 86400;
    EXPECT_TRUE(remainder <= kRoundSeconds ||
                remainder >= 86400 - kRoundSeconds)
        << "span " << span_sec;
  }
}

}  // namespace
}  // namespace sleepwalk::ts
