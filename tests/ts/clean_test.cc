#include "sleepwalk/ts/clean.h"

#include <gtest/gtest.h>

namespace sleepwalk::ts {
namespace {

TEST(Regularize, EmptyInputIsNullopt) {
  EXPECT_FALSE(Regularize(RawSeries{}).has_value());
}

TEST(Regularize, AlreadyEvenPassesThrough) {
  RawSeries raw;
  raw.Add(10, 0.1);
  raw.Add(11, 0.2);
  raw.Add(12, 0.3);
  CleanStats stats;
  const auto even = Regularize(raw, &stats);
  ASSERT_TRUE(even.has_value());
  EXPECT_EQ(even->first_round, 10);
  EXPECT_EQ(even->values, (std::vector<double>{0.1, 0.2, 0.3}));
  EXPECT_EQ(stats.duplicates_dropped, 0u);
  EXPECT_EQ(stats.single_gaps_filled, 0u);
  EXPECT_EQ(stats.long_gaps_filled, 0u);
}

TEST(Regularize, DuplicateKeepsMostRecent) {
  RawSeries raw;
  raw.Add(0, 0.5);
  raw.Add(1, 0.6);
  raw.Add(1, 0.9);  // later observation of the same round wins
  CleanStats stats;
  const auto even = Regularize(raw, &stats);
  ASSERT_TRUE(even.has_value());
  EXPECT_DOUBLE_EQ(even->values[1], 0.9);
  EXPECT_EQ(stats.duplicates_dropped, 1u);
}

TEST(Regularize, SingleGapExtrapolates) {
  RawSeries raw;
  raw.Add(0, 0.2);
  raw.Add(1, 0.3);
  // round 2 missing
  raw.Add(3, 0.5);
  CleanStats stats;
  const auto even = Regularize(raw, &stats);
  ASSERT_TRUE(even.has_value());
  ASSERT_EQ(even->values.size(), 4u);
  // Extrapolation from (0.2, 0.3): next = 0.3 + (0.3 - 0.2) = 0.4.
  EXPECT_NEAR(even->values[2], 0.4, 1e-12);
  EXPECT_EQ(stats.single_gaps_filled, 1u);
}

TEST(Regularize, ExtrapolationClampsToUnitRange) {
  RawSeries raw;
  raw.Add(0, 0.5);
  raw.Add(1, 0.99);
  raw.Add(3, 0.9);  // gap at round 2; raw extrapolation would exceed 1
  const auto even = Regularize(raw);
  ASSERT_TRUE(even.has_value());
  EXPECT_LE(even->values[2], 1.0);
}

TEST(Regularize, LongGapHoldsLastValue) {
  RawSeries raw;
  raw.Add(0, 0.7);
  raw.Add(5, 0.1);
  CleanStats stats;
  const auto even = Regularize(raw, &stats);
  ASSERT_TRUE(even.has_value());
  ASSERT_EQ(even->values.size(), 6u);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(even->values[i], 0.7) << "round " << i;
  }
  EXPECT_DOUBLE_EQ(even->values[5], 0.1);
  EXPECT_EQ(stats.long_gaps_filled, 4u);
  EXPECT_EQ(stats.single_gaps_filled, 0u);
}

TEST(Regularize, SingleObservation) {
  RawSeries raw;
  raw.Add(7, 0.42);
  const auto even = Regularize(raw);
  ASSERT_TRUE(even.has_value());
  EXPECT_EQ(even->first_round, 7);
  EXPECT_EQ(even->values.size(), 1u);
}

TEST(TrimToMidnight, AlignedSeriesKeepsWholeDays) {
  // Epoch at midnight; 660-s rounds; 300 rounds span 2.29 days. The
  // last midnight (172800 s) falls at round 261.8, so the trim ends at
  // the nearest round, 262.
  EvenSeries series;
  series.first_round = 0;
  series.values.assign(300, 0.5);
  const auto trimmed = TrimToMidnightUtc(series, /*epoch_sec=*/0);
  ASSERT_TRUE(trimmed.has_value());
  EXPECT_EQ(trimmed->first_round, 0);
  EXPECT_EQ(trimmed->values.size(), 262u);
  EXPECT_EQ(WholeDays(trimmed->values.size()), 2);
}

TEST(TrimToMidnight, UnalignedStartAdvancesToMidnight) {
  // Epoch 6 hours after midnight: the first kept round is the first one
  // at or after the next midnight (64800 s after epoch).
  EvenSeries series;
  series.first_round = 0;
  series.values.assign(400, 0.5);
  const auto trimmed = TrimToMidnightUtc(series, /*epoch_sec=*/6 * 3600);
  ASSERT_TRUE(trimmed.has_value());
  // Next midnight is 64800 s after epoch -> round ceil(64800/660) = 99.
  EXPECT_EQ(trimmed->first_round, 99);
  // The trimmed start must land within one round after a midnight.
  const std::int64_t start_sec = 6 * 3600 + trimmed->first_round * 660;
  EXPECT_LT(start_sec % 86400, 660);
}

TEST(TrimToMidnight, TooShortIsNullopt) {
  EvenSeries series;
  series.first_round = 0;
  series.values.assign(50, 0.5);  // ~9 hours, less than one day
  EXPECT_FALSE(TrimToMidnightUtc(series, 0).has_value());
}

TEST(TrimToMidnight, EmptyIsNullopt) {
  EXPECT_FALSE(TrimToMidnightUtc(EvenSeries{}, 0).has_value());
}

TEST(WholeDays, CountsNearestDay) {
  EXPECT_EQ(WholeDays(0), 0);
  EXPECT_EQ(WholeDays(65), 0);    // ~12 h rounds to zero days
  EXPECT_EQ(WholeDays(130), 1);   // 23.8 h rounds to one day
  EXPECT_EQ(WholeDays(131), 1);   // 24.02 h
  EXPECT_EQ(WholeDays(1833), 14); // the paper's 14-day survey
  EXPECT_EQ(WholeDays(1834), 14);
  EXPECT_EQ(WholeDays(4582), 35); // 35-day A_12w
}

}  // namespace
}  // namespace sleepwalk::ts
