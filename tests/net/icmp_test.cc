#include "sleepwalk/net/icmp.h"

#include <gtest/gtest.h>

#include <vector>

#include "sleepwalk/net/checksum.h"

namespace sleepwalk::net {
namespace {

TEST(IcmpEcho, BuildRequestHasValidChecksum) {
  const auto packet = BuildEchoRequest(0x1234, 0x0001);
  ASSERT_EQ(packet.size(), kIcmpHeaderSize);
  EXPECT_EQ(packet[0], 8);  // echo request
  EXPECT_EQ(packet[1], 0);
  EXPECT_EQ(Checksum(packet), 0) << "checksum over a valid packet is 0";
}

TEST(IcmpEcho, BuildReplyType) {
  const auto packet = BuildEchoReply(1, 2);
  EXPECT_EQ(packet[0], 0);  // echo reply
  EXPECT_EQ(Checksum(packet), 0);
}

TEST(IcmpEcho, RoundTripWithPayload) {
  const std::vector<std::uint8_t> payload = {0xde, 0xad, 0xbe, 0xef, 0x42};
  const auto packet = BuildEchoRequest(0x51ee, 7, payload);
  const auto echo = ParseEcho(packet);
  ASSERT_TRUE(echo.has_value());
  EXPECT_EQ(echo->type, IcmpType::kEchoRequest);
  EXPECT_EQ(echo->id, 0x51ee);
  EXPECT_EQ(echo->sequence, 7);
  EXPECT_EQ(echo->payload, payload);
}

TEST(IcmpEcho, ParseRejectsShortBuffer) {
  const std::vector<std::uint8_t> junk = {8, 0, 0};
  EXPECT_FALSE(ParseEcho(junk).has_value());
  EXPECT_FALSE(ParseEcho({}).has_value());
}

TEST(IcmpEcho, ParseRejectsCorruptedChecksum) {
  auto packet = BuildEchoRequest(1, 1);
  packet[4] ^= 0xff;  // flip id bits without fixing the checksum
  EXPECT_FALSE(ParseEcho(packet).has_value());
}

TEST(IcmpEcho, ParseRejectsNonEchoTypes) {
  auto packet = BuildEchoRequest(1, 1);
  packet[0] = 3;  // destination unreachable
  // Refresh checksum so only the type check rejects it.
  packet[2] = packet[3] = 0;
  const auto sum = Checksum(packet);
  packet[2] = static_cast<std::uint8_t>(sum >> 8);
  packet[3] = static_cast<std::uint8_t>(sum & 0xff);
  EXPECT_FALSE(ParseEcho(packet).has_value());
}

// Property: round trip across many (id, seq) combinations.
class IcmpIdSeq
    : public ::testing::TestWithParam<std::pair<std::uint16_t, std::uint16_t>> {
};

TEST_P(IcmpIdSeq, RoundTrips) {
  const auto [id, seq] = GetParam();
  const auto echo = ParseEcho(BuildEchoRequest(id, seq));
  ASSERT_TRUE(echo.has_value());
  EXPECT_EQ(echo->id, id);
  EXPECT_EQ(echo->sequence, seq);
}

INSTANTIATE_TEST_SUITE_P(
    Spread, IcmpIdSeq,
    ::testing::Values(std::pair<std::uint16_t, std::uint16_t>{0, 0},
                      std::pair<std::uint16_t, std::uint16_t>{1, 65535},
                      std::pair<std::uint16_t, std::uint16_t>{65535, 1},
                      std::pair<std::uint16_t, std::uint16_t>{0x8000, 0x7fff},
                      std::pair<std::uint16_t, std::uint16_t>{0xabcd, 0x1234}));

std::vector<std::uint8_t> MinimalIpv4Header() {
  std::vector<std::uint8_t> header(20, 0);
  header[0] = 0x45;  // version 4, ihl 5
  header[8] = 64;    // ttl
  header[9] = kProtocolIcmp;
  header[12] = 192; header[13] = 0; header[14] = 2; header[15] = 1;
  header[16] = 198; header[17] = 51; header[18] = 100; header[19] = 2;
  return header;
}

TEST(Ipv4Header, ParsesMinimalHeader) {
  const auto header = ParseIpv4Header(MinimalIpv4Header());
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->ihl, 5);
  EXPECT_EQ(header->header_bytes, 20u);
  EXPECT_EQ(header->ttl, 64);
  EXPECT_EQ(header->protocol, kProtocolIcmp);
  EXPECT_EQ(header->source.ToString(), "192.0.2.1");
  EXPECT_EQ(header->destination.ToString(), "198.51.100.2");
}

TEST(Ipv4Header, ParsesHeaderWithOptions) {
  auto raw = MinimalIpv4Header();
  raw[0] = 0x46;  // ihl = 6 -> 24 bytes
  raw.resize(24, 0);
  const auto header = ParseIpv4Header(raw);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->header_bytes, 24u);
}

TEST(Ipv4Header, RejectsWrongVersion) {
  auto raw = MinimalIpv4Header();
  raw[0] = 0x65;  // version 6
  EXPECT_FALSE(ParseIpv4Header(raw).has_value());
}

TEST(Ipv4Header, RejectsTruncated) {
  auto raw = MinimalIpv4Header();
  raw.resize(12);
  EXPECT_FALSE(ParseIpv4Header(raw).has_value());
  raw[0] = 0x4f;  // claims 60-byte header in a 12-byte buffer
  EXPECT_FALSE(ParseIpv4Header(raw).has_value());
}

TEST(Ipv4Header, RejectsBogusIhl) {
  auto raw = MinimalIpv4Header();
  raw[0] = 0x44;  // ihl = 4 < 5
  EXPECT_FALSE(ParseIpv4Header(raw).has_value());
}

}  // namespace
}  // namespace sleepwalk::net
