// Robustness (fuzz-style property) tests for the wire-facing parsers:
// random and mutated inputs must never crash, overread, or produce
// internally inconsistent results. These parsers face the open Internet
// in a live deployment.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sleepwalk/net/checksum.h"
#include "sleepwalk/net/icmp.h"
#include "sleepwalk/net/ipv4.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::net {
namespace {

std::string RandomString(Rng& rng, std::size_t max_len) {
  std::string s(rng.NextBelow(max_len + 1), '\0');
  for (auto& c : s) {
    // Bias toward digits and dots so some inputs get deep into parsing.
    const auto pick = rng.NextBelow(4);
    if (pick == 0) c = '.';
    else if (pick < 3) c = static_cast<char>('0' + rng.NextBelow(10));
    else c = static_cast<char>(rng.NextBelow(256));
  }
  return s;
}

TEST(Ipv4Fuzz, ParseNeverCrashesAndRoundTrips) {
  Rng rng{0xf0221};
  int parsed = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    const auto text = RandomString(rng, 20);
    const auto addr = Ipv4Addr::Parse(text);
    if (addr.has_value()) {
      ++parsed;
      // Anything accepted must round-trip to canonical form, and the
      // canonical form must parse back to the same value.
      const auto canonical = addr->ToString();
      const auto reparsed = Ipv4Addr::Parse(canonical);
      ASSERT_TRUE(reparsed.has_value()) << text;
      EXPECT_EQ(*reparsed, *addr) << text;
    }
  }
  EXPECT_GT(parsed, 0) << "the generator should hit some valid inputs";
}

TEST(Prefix24Fuzz, ParseNeverCrashes) {
  Rng rng{0xf0222};
  for (int trial = 0; trial < 20000; ++trial) {
    auto text = RandomString(rng, 16);
    if (rng.NextBool(0.5)) text += "/24";
    const auto prefix = Prefix24::Parse(text);
    if (prefix.has_value()) {
      EXPECT_EQ((prefix->base().value() & 0xff), 0u) << text;
    }
  }
  SUCCEED();
}

TEST(IcmpFuzz, ParseEchoOnRandomBytes) {
  Rng rng{0xf0223};
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<std::uint8_t> junk(rng.NextBelow(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.NextBelow(256));
    const auto echo = ParseEcho(junk);
    if (echo.has_value()) {
      // Anything accepted must have a valid checksum by construction.
      EXPECT_EQ(Checksum(junk), 0);
    }
  }
  SUCCEED();
}

TEST(IcmpFuzz, BitFlippedPacketsRejectedOrConsistent) {
  Rng rng{0xf0224};
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto valid = BuildEchoRequest(0x51ee, 99, payload);
  int rejected = 0;
  const int trials = 5000;
  for (int trial = 0; trial < trials; ++trial) {
    auto mutated = valid;
    const auto index = rng.NextBelow(mutated.size());
    const auto flip = static_cast<std::uint8_t>(1 + rng.NextBelow(255));
    mutated[index] ^= flip;
    if (!ParseEcho(mutated).has_value()) ++rejected;
  }
  // Single-byte corruption always breaks the checksum unless it lands
  // compensatingly — which a single flip cannot — except flips within
  // the checksum field itself that are detected too. Everything must be
  // rejected.
  EXPECT_EQ(rejected, trials);
}

TEST(Ipv4HeaderFuzz, RandomBytesNeverCrash) {
  Rng rng{0xf0225};
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<std::uint8_t> junk(rng.NextBelow(80));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.NextBelow(256));
    const auto header = ParseIpv4Header(junk);
    if (header.has_value()) {
      EXPECT_GE(header->ihl, 5);
      EXPECT_LE(header->header_bytes, junk.size());
    }
  }
  SUCCEED();
}

TEST(ChecksumProperty, AppendingChecksumYieldsZero) {
  // RFC 1071 invariant on random payloads: a message followed by its
  // own checksum verifies to zero.
  Rng rng{0xf0226};
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> data(2 * (1 + rng.NextBelow(40)));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.NextBelow(256));
    const std::uint16_t sum = Checksum(data);
    data.push_back(static_cast<std::uint8_t>(sum >> 8));
    data.push_back(static_cast<std::uint8_t>(sum & 0xff));
    EXPECT_EQ(Checksum(data), 0) << "trial " << trial;
  }
}

}  // namespace
}  // namespace sleepwalk::net
