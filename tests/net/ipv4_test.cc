#include "sleepwalk/net/ipv4.h"

#include <gtest/gtest.h>

namespace sleepwalk::net {
namespace {

TEST(Ipv4Addr, DefaultIsZero) {
  EXPECT_EQ(Ipv4Addr{}.value(), 0u);
  EXPECT_EQ(Ipv4Addr{}.ToString(), "0.0.0.0");
}

TEST(Ipv4Addr, OctetConstructorOrdersBytes) {
  const Ipv4Addr addr{192, 0, 2, 1};
  EXPECT_EQ(addr.value(), 0xc0000201u);
  EXPECT_EQ(addr.ToString(), "192.0.2.1");
}

TEST(Ipv4Addr, OctetsRoundTrip) {
  const Ipv4Addr addr{10, 20, 30, 40};
  const auto octets = addr.Octets();
  EXPECT_EQ(octets[0], 10);
  EXPECT_EQ(octets[1], 20);
  EXPECT_EQ(octets[2], 30);
  EXPECT_EQ(octets[3], 40);
}

TEST(Ipv4Addr, ParseValid) {
  const auto addr = Ipv4Addr::Parse("1.9.21.255");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->ToString(), "1.9.21.255");
}

TEST(Ipv4Addr, ParseBoundaries) {
  EXPECT_EQ(Ipv4Addr::Parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Addr::Parse("255.255.255.255")->value(), 0xffffffffu);
}

TEST(Ipv4Addr, ParseRejectsOutOfRangeOctet) {
  EXPECT_FALSE(Ipv4Addr::Parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Addr::Parse("1.2.3.999").has_value());
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::Parse("").has_value());
  EXPECT_FALSE(Ipv4Addr::Parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::Parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Addr::Parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::Parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Addr::Parse("1.2.3.4 ").has_value());
  EXPECT_FALSE(Ipv4Addr::Parse(" 1.2.3.4").has_value());
  EXPECT_FALSE(Ipv4Addr::Parse("1.2.3.-4").has_value());
}

TEST(Ipv4Addr, ParseRejectsLeadingZeros) {
  EXPECT_FALSE(Ipv4Addr::Parse("01.2.3.4").has_value());
  EXPECT_FALSE(Ipv4Addr::Parse("1.2.3.04").has_value());
  EXPECT_TRUE(Ipv4Addr::Parse("0.2.3.4").has_value());
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr(1, 0, 0, 0), Ipv4Addr(2, 0, 0, 0));
  EXPECT_EQ(Ipv4Addr(1, 2, 3, 4), Ipv4Addr(1, 2, 3, 4));
}

// Property: ToString and Parse are inverse over a spread of addresses.
class Ipv4RoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Ipv4RoundTrip, ParseOfToStringIsIdentity) {
  const Ipv4Addr addr{GetParam()};
  const auto parsed = Ipv4Addr::Parse(addr.ToString());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, addr);
}

INSTANTIATE_TEST_SUITE_P(
    Spread, Ipv4RoundTrip,
    ::testing::Values(0u, 1u, 0xffu, 0x100u, 0x01090915u, 0x7f000001u,
                      0xc0a80101u, 0xdeadbeefu, 0xfffffffeu, 0xffffffffu));

TEST(Prefix24, TruncatesToBlock) {
  const Prefix24 prefix{Ipv4Addr{1, 9, 21, 200}};
  EXPECT_EQ(prefix.base().ToString(), "1.9.21.0");
  EXPECT_EQ(prefix.ToString(), "1.9.21/24");
}

TEST(Prefix24, IndexRoundTrip) {
  const Prefix24 prefix{Ipv4Addr{10, 11, 12, 13}};
  EXPECT_EQ(Prefix24::FromIndex(prefix.Index()), prefix);
}

TEST(Prefix24, AddressBuildsLastOctet) {
  const Prefix24 prefix{Ipv4Addr{1, 9, 21, 0}};
  EXPECT_EQ(prefix.Address(42).ToString(), "1.9.21.42");
  EXPECT_EQ(prefix.Address(0), prefix.base());
  EXPECT_EQ(prefix.Address(255).ToString(), "1.9.21.255");
}

TEST(Prefix24, Contains) {
  const Prefix24 prefix{Ipv4Addr{1, 9, 21, 0}};
  EXPECT_TRUE(prefix.Contains(Ipv4Addr(1, 9, 21, 0)));
  EXPECT_TRUE(prefix.Contains(Ipv4Addr(1, 9, 21, 255)));
  EXPECT_FALSE(prefix.Contains(Ipv4Addr(1, 9, 22, 0)));
  EXPECT_FALSE(prefix.Contains(Ipv4Addr(2, 9, 21, 5)));
}

TEST(Prefix24, ParseSlashNotation) {
  const auto prefix = Prefix24::Parse("93.208.233/24");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->base().ToString(), "93.208.233.0");
}

TEST(Prefix24, ParseDottedQuadTruncates) {
  const auto prefix = Prefix24::Parse("27.186.9.77");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->ToString(), "27.186.9/24");
}

TEST(Prefix24, ParseRejectsWrongMask) {
  EXPECT_FALSE(Prefix24::Parse("1.2.3/16").has_value());
  EXPECT_FALSE(Prefix24::Parse("1.2.3/").has_value());
  EXPECT_FALSE(Prefix24::Parse("1.2/24").has_value());
  EXPECT_FALSE(Prefix24::Parse("1.2.3.4/24").has_value());
}

TEST(Prefix24, BlockSizeConstant) { EXPECT_EQ(kBlockSize, 256); }

}  // namespace
}  // namespace sleepwalk::net
