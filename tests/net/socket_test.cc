#include "sleepwalk/net/socket.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include "sleepwalk/net/transport.h"

namespace sleepwalk::net {
namespace {

bool FdIsOpen(int fd) { return ::fcntl(fd, F_GETFD) != -1; }

TEST(FileDescriptor, ClosesOnDestruction) {
  int raw = -1;
  {
    int pipe_fds[2];
    ASSERT_EQ(::pipe(pipe_fds), 0);
    FileDescriptor a{pipe_fds[0]};
    FileDescriptor b{pipe_fds[1]};
    raw = pipe_fds[0];
    EXPECT_TRUE(FdIsOpen(raw));
    EXPECT_TRUE(a.valid());
  }
  EXPECT_FALSE(FdIsOpen(raw));
}

TEST(FileDescriptor, MoveTransfersOwnership) {
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  FileDescriptor tail{pipe_fds[1]};
  FileDescriptor a{pipe_fds[0]};
  FileDescriptor b{std::move(a)};
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing it
  EXPECT_TRUE(b.valid());
  EXPECT_TRUE(FdIsOpen(b.get()));
}

TEST(FileDescriptor, MoveAssignClosesPrevious) {
  int first_pipe[2];
  int second_pipe[2];
  ASSERT_EQ(::pipe(first_pipe), 0);
  ASSERT_EQ(::pipe(second_pipe), 0);
  FileDescriptor keep_first_write{first_pipe[1]};
  FileDescriptor keep_second_write{second_pipe[1]};

  FileDescriptor a{first_pipe[0]};
  FileDescriptor b{second_pipe[0]};
  const int old = a.get();
  a = std::move(b);
  EXPECT_FALSE(FdIsOpen(old));
  EXPECT_EQ(a.get(), second_pipe[0]);
}

TEST(FileDescriptor, ResetIsIdempotent) {
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  FileDescriptor tail{pipe_fds[1]};
  FileDescriptor fd{pipe_fds[0]};
  fd.Reset();
  EXPECT_FALSE(fd.valid());
  fd.Reset();  // second reset must be harmless
  EXPECT_FALSE(fd.valid());
}

TEST(FileDescriptor, DefaultIsInvalid) {
  FileDescriptor fd;
  EXPECT_FALSE(fd.valid());
  EXPECT_EQ(fd.get(), -1);
}

// The live socket paths require CAP_NET_RAW or ping_group_range; run them
// opportunistically and skip cleanly in restricted environments.
TEST(RawIcmpSocket, OpenReportsErrorOrSucceeds) {
  std::string error;
  auto socket = RawIcmpSocket::Open(&error);
  if (!socket.has_value()) {
    EXPECT_FALSE(error.empty());
    GTEST_SKIP() << "no ICMP socket permission: " << error;
  }
  SUCCEED();
}

TEST(RawIcmpSocket, LoopbackPing) {
  auto socket = RawIcmpSocket::Open();
  if (!socket.has_value()) GTEST_SKIP() << "no ICMP socket permission";
  const Ipv4Addr loopback{127, 0, 0, 1};
  ASSERT_TRUE(socket->SendEchoRequest(loopback, 0x51ee, 1));
  const auto reply =
      socket->WaitForReply(0x51ee, std::chrono::milliseconds{2000});
  if (!reply.has_value()) {
    GTEST_SKIP() << "loopback did not answer (ICMP disabled?)";
  }
  EXPECT_EQ(reply->from, loopback);
  EXPECT_EQ(reply->sequence, 1);
}

TEST(LiveIcmpTransport, FactoryIsNullWithoutPermission) {
  auto transport = MakeLiveIcmpTransport(100);
  if (transport == nullptr) {
    SUCCEED() << "factory correctly returned null";
    return;
  }
  // If we do have permission, probing loopback should be positive.
  const auto status = transport->Probe(Ipv4Addr{127, 0, 0, 1}, 0);
  EXPECT_TRUE(status == ProbeStatus::kEchoReply ||
              status == ProbeStatus::kTimeout);
}

}  // namespace
}  // namespace sleepwalk::net
