#include "sleepwalk/net/rate_limiter.h"

#include <gtest/gtest.h>

namespace sleepwalk::net {
namespace {

TEST(TokenBucket, StartsFull) {
  TokenBucket bucket{1.0, 5.0};
  EXPECT_DOUBLE_EQ(bucket.Available(0.0), 5.0);
  EXPECT_TRUE(bucket.TryAcquire(0.0, 5.0));
  EXPECT_FALSE(bucket.TryAcquire(0.0, 0.5));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket bucket{2.0, 10.0};
  ASSERT_TRUE(bucket.TryAcquire(0.0, 10.0));
  EXPECT_FALSE(bucket.TryAcquire(1.0, 3.0));  // only 2 accrued
  EXPECT_TRUE(bucket.TryAcquire(1.0, 2.0));
  EXPECT_TRUE(bucket.TryAcquire(6.0, 10.0));  // capped at burst
}

TEST(TokenBucket, BurstCapsAccumulation) {
  TokenBucket bucket{100.0, 3.0};
  bucket.TryAcquire(0.0, 3.0);
  EXPECT_DOUBLE_EQ(bucket.Available(1000.0), 3.0);
}

TEST(TokenBucket, FailedAcquireDoesNotDeduct) {
  TokenBucket bucket{1.0, 2.0};
  EXPECT_FALSE(bucket.TryAcquire(0.0, 5.0));
  EXPECT_TRUE(bucket.TryAcquire(0.0, 2.0));
}

TEST(TokenBucket, DelayUntilAvailable) {
  TokenBucket bucket{2.0, 4.0};
  ASSERT_TRUE(bucket.TryAcquire(0.0, 4.0));
  EXPECT_NEAR(bucket.DelayUntilAvailable(0.0, 1.0), 0.5, 1e-9);
  EXPECT_NEAR(bucket.DelayUntilAvailable(0.0, 4.0), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(bucket.DelayUntilAvailable(2.0, 4.0), 0.0);
}

TEST(TokenBucket, ZeroRateNeverRefills) {
  TokenBucket bucket{0.0, 1.0};
  ASSERT_TRUE(bucket.TryAcquire(0.0, 1.0));
  EXPECT_FALSE(bucket.TryAcquire(1e9, 1.0));
  EXPECT_DOUBLE_EQ(bucket.DelayUntilAvailable(1e9, 1.0), -1.0);
}

TEST(TokenBucket, ClockGoingBackwardsIsHarmless) {
  TokenBucket bucket{1.0, 5.0};
  ASSERT_TRUE(bucket.TryAcquire(10.0, 5.0));
  EXPECT_DOUBLE_EQ(bucket.Available(5.0), 0.0);   // no time credit
  EXPECT_DOUBLE_EQ(bucket.Available(11.0), 1.0);  // resumes from 10.0
}

TEST(TokenBucket, TrinocularBudgetShape) {
  auto bucket = MakeTrinocularBudget();
  EXPECT_NEAR(bucket.rate() * 3600.0, kTrinocularProbesPerHour, 1e-9);
  EXPECT_DOUBLE_EQ(bucket.burst(), 15.0);
  // A full 15-probe round is affordable immediately...
  EXPECT_TRUE(bucket.TryAcquire(0.0, 15.0));
  // ...but the next full round needs most of an hour of refill.
  EXPECT_FALSE(bucket.TryAcquire(600.0, 15.0));
  EXPECT_TRUE(bucket.TryAcquire(3600.0, 15.0));
}

TEST(TokenBucket, LongRunRateConverges) {
  // Acquire single probes as fast as allowed for a simulated day; the
  // realized rate must match the configured rate.
  auto bucket = MakeTrinocularBudget();
  double now = 0.0;
  int acquired = 0;
  while (now < 86400.0) {
    if (bucket.TryAcquire(now)) {
      ++acquired;
    } else {
      const double delay = bucket.DelayUntilAvailable(now);
      now += delay;
      continue;
    }
  }
  // 24h * 19/h = 456, plus the initial burst of 15.
  EXPECT_NEAR(acquired, 456 + 15, 3);
}

}  // namespace
}  // namespace sleepwalk::net
