#include "sleepwalk/net/rate_limiter.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace sleepwalk::net {
namespace {

TEST(TokenBucket, StartsFull) {
  TokenBucket bucket{1.0, 5.0};
  EXPECT_DOUBLE_EQ(bucket.Available(0.0), 5.0);
  EXPECT_TRUE(bucket.TryAcquire(0.0, 5.0));
  EXPECT_FALSE(bucket.TryAcquire(0.0, 0.5));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket bucket{2.0, 10.0};
  ASSERT_TRUE(bucket.TryAcquire(0.0, 10.0));
  EXPECT_FALSE(bucket.TryAcquire(1.0, 3.0));  // only 2 accrued
  EXPECT_TRUE(bucket.TryAcquire(1.0, 2.0));
  EXPECT_TRUE(bucket.TryAcquire(6.0, 10.0));  // capped at burst
}

TEST(TokenBucket, BurstCapsAccumulation) {
  TokenBucket bucket{100.0, 3.0};
  bucket.TryAcquire(0.0, 3.0);
  EXPECT_DOUBLE_EQ(bucket.Available(1000.0), 3.0);
}

TEST(TokenBucket, FailedAcquireDoesNotDeduct) {
  TokenBucket bucket{1.0, 2.0};
  EXPECT_FALSE(bucket.TryAcquire(0.0, 5.0));
  EXPECT_TRUE(bucket.TryAcquire(0.0, 2.0));
}

TEST(TokenBucket, DelayUntilAvailable) {
  TokenBucket bucket{2.0, 4.0};
  ASSERT_TRUE(bucket.TryAcquire(0.0, 4.0));
  EXPECT_NEAR(bucket.DelayUntilAvailable(0.0, 1.0), 0.5, 1e-9);
  EXPECT_NEAR(bucket.DelayUntilAvailable(0.0, 4.0), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(bucket.DelayUntilAvailable(2.0, 4.0), 0.0);
}

TEST(TokenBucket, ZeroRateNeverRefills) {
  TokenBucket bucket{0.0, 1.0};
  ASSERT_TRUE(bucket.TryAcquire(0.0, 1.0));
  EXPECT_FALSE(bucket.TryAcquire(1e9, 1.0));
  EXPECT_DOUBLE_EQ(bucket.DelayUntilAvailable(1e9, 1.0), -1.0);
}

TEST(TokenBucket, ClockGoingBackwardsIsHarmless) {
  TokenBucket bucket{1.0, 5.0};
  ASSERT_TRUE(bucket.TryAcquire(10.0, 5.0));
  EXPECT_DOUBLE_EQ(bucket.Available(5.0), 0.0);   // no time credit
  EXPECT_DOUBLE_EQ(bucket.Available(11.0), 1.0);  // resumes from 10.0
}

TEST(TokenBucket, TrinocularBudgetShape) {
  auto bucket = MakeTrinocularBudget();
  EXPECT_NEAR(bucket.rate() * 3600.0, kTrinocularProbesPerHour, 1e-9);
  EXPECT_DOUBLE_EQ(bucket.burst(), 15.0);
  // A full 15-probe round is affordable immediately...
  EXPECT_TRUE(bucket.TryAcquire(0.0, 15.0));
  // ...but the next full round needs most of an hour of refill.
  EXPECT_FALSE(bucket.TryAcquire(600.0, 15.0));
  EXPECT_TRUE(bucket.TryAcquire(3600.0, 15.0));
}

TEST(TokenBucket, LongRunRateConverges) {
  // Acquire single probes as fast as allowed for a simulated day; the
  // realized rate must match the configured rate.
  auto bucket = MakeTrinocularBudget();
  double now = 0.0;
  int acquired = 0;
  while (now < 86400.0) {
    if (bucket.TryAcquire(now)) {
      ++acquired;
    } else {
      const double delay = bucket.DelayUntilAvailable(now);
      now += delay;
      continue;
    }
  }
  // 24h * 19/h = 456, plus the initial burst of 15.
  EXPECT_NEAR(acquired, 456 + 15, 3);
}

// --- ShardedRateLimiter -------------------------------------------------

TEST(ShardedRateLimiter, SplitsBudgetAcrossShards) {
  ShardedRateLimiter limiter{80.0, 16.0, 8};
  EXPECT_EQ(limiter.shard_count(), 8u);
  EXPECT_DOUBLE_EQ(limiter.rate(), 80.0);
  EXPECT_DOUBLE_EQ(limiter.burst(), 16.0);
  // Each shard starts with burst/N = 2 tokens; the third grab on one
  // shard is a shard-local denial even though the global bucket (full
  // burst of 16) could afford it.
  EXPECT_TRUE(limiter.TryAcquire(0, 0.0));
  EXPECT_TRUE(limiter.TryAcquire(0, 0.0));
  EXPECT_FALSE(limiter.TryAcquire(0, 0.0));
  // Other shards still have their slice.
  EXPECT_TRUE(limiter.TryAcquire(1, 0.0));
  EXPECT_FALSE(limiter.TryAcquire(99, 0.0));  // out-of-range shard
}

TEST(ShardedRateLimiter, ShardDenialDoesNotBurnGlobalBudget) {
  // Global burst 8, shard burst 1 each. Exhaust shard 0, then hammer it:
  // every denial is shard-local and must leave the global bucket intact,
  // so the remaining shards can still claim their full share.
  ShardedRateLimiter limiter{0.0, 8.0, 8};
  EXPECT_TRUE(limiter.TryAcquire(0, 0.0));
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(limiter.TryAcquire(0, 0.0));
  for (std::size_t shard = 1; shard < 8; ++shard) {
    EXPECT_TRUE(limiter.TryAcquire(shard, 0.0)) << shard;
  }
}

TEST(ShardedRateLimiter, GlobalDenialDoesNotBurnShardBudget) {
  // Global burst (2) smaller than the sum of shard floors (1 token per
  // shard x 4): after two grants the global bucket is the binding cap
  // and shards 2/3 are denied globally — without losing their own token,
  // which they can spend once the global bucket refills.
  ShardedRateLimiter limiter{1.0, 2.0, 4};
  EXPECT_TRUE(limiter.TryAcquire(0, 0.0));
  EXPECT_TRUE(limiter.TryAcquire(1, 0.0));
  EXPECT_FALSE(limiter.TryAcquire(2, 0.0));
  EXPECT_FALSE(limiter.TryAcquire(3, 0.0));
  EXPECT_TRUE(limiter.TryAcquire(2, 1.0));  // global refilled 1 token
  EXPECT_TRUE(limiter.TryAcquire(3, 2.0));
}

TEST(ShardedRateLimiter, AggregateBoundHoldsUnderConcurrency) {
  // The paper's "do no harm" invariant, exercised the way the parallel
  // executor uses the limiter: 8 workers each hammering their own shard
  // as fast as the clock allows. The global bucket refills along the
  // furthest-ahead clock it has seen and holds for laggards, so whatever
  // the thread interleaving, total grants can never exceed
  // rate * elapsed + burst. (Throughput under aligned clocks is covered
  // deterministically below — racing unsynchronized virtual clocks makes
  // realized throughput interleaving-dependent by design.)
  constexpr double kRate = 40.0;
  constexpr double kBurst = 8.0;
  constexpr double kElapsedSec = 10.0;
  constexpr std::size_t kShards = 8;
  ShardedRateLimiter limiter{kRate, kBurst, kShards};
  std::atomic<long> granted{0};
  std::vector<std::thread> workers;
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    workers.emplace_back([&limiter, &granted, shard] {
      long mine = 0;
      // 1ms virtual ticks; every worker replays the same clock.
      for (int tick = 0; tick <= static_cast<int>(kElapsedSec * 1000);
           ++tick) {
        if (limiter.TryAcquire(shard, tick / 1000.0)) ++mine;
      }
      granted.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  for (auto& worker : workers) worker.join();
  const double cap = kRate * kElapsedSec + kBurst;
  EXPECT_LE(static_cast<double>(granted.load()), cap + 1e-6);
  EXPECT_GT(granted.load(), 0);
}

TEST(ShardedRateLimiter, FullBudgetRealizableWithAlignedClocks) {
  // Sharding must not starve the campaign: when every shard is active on
  // a common clock (round-robin, as a single-threaded harness would
  // drive it), the realized aggregate sits at the configured budget.
  constexpr double kRate = 40.0;
  constexpr double kBurst = 8.0;
  constexpr double kElapsedSec = 10.0;
  constexpr std::size_t kShards = 8;
  ShardedRateLimiter limiter{kRate, kBurst, kShards};
  long granted = 0;
  for (int tick = 0; tick <= static_cast<int>(kElapsedSec * 1000); ++tick) {
    for (std::size_t shard = 0; shard < kShards; ++shard) {
      if (limiter.TryAcquire(shard, tick / 1000.0)) ++granted;
    }
  }
  const double cap = kRate * kElapsedSec + kBurst;
  EXPECT_LE(static_cast<double>(granted), cap + 1e-6);
  EXPECT_GE(static_cast<double>(granted), 0.9 * kRate * kElapsedSec);
}

}  // namespace
}  // namespace sleepwalk::net
