#include "sleepwalk/net/checksum.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

namespace sleepwalk::net {
namespace {

TEST(Checksum, EmptyBufferIsAllOnes) {
  EXPECT_EQ(Checksum({}), 0xffff);
}

TEST(Checksum, KnownRfc1071Example) {
  // The classic example from RFC 1071 §3: data 00 01 f2 03 f4 f5 f6 f7
  // sums to 0xddf2 (with carry folding); checksum is its complement.
  const std::array<std::uint8_t, 8> data = {0x00, 0x01, 0xf2, 0x03,
                                            0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(Checksum(data), static_cast<std::uint16_t>(~0xddf2 & 0xffff));
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::array<std::uint8_t, 3> data = {0x01, 0x02, 0x03};
  // Words: 0x0102, 0x0300 -> sum 0x0402 -> ~ = 0xfbfd.
  EXPECT_EQ(Checksum(data), 0xfbfd);
}

TEST(Checksum, VerificationOfValidPacketYieldsZero) {
  // A buffer whose checksum field is filled correctly re-checksums to 0.
  std::vector<std::uint8_t> packet = {0x08, 0x00, 0x00, 0x00,
                                      0x12, 0x34, 0x00, 0x01};
  const std::uint16_t sum = Checksum(packet);
  packet[2] = static_cast<std::uint8_t>(sum >> 8);
  packet[3] = static_cast<std::uint8_t>(sum & 0xff);
  EXPECT_EQ(Checksum(packet), 0);
}

TEST(InternetChecksum, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data(57);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  const std::uint16_t expected = Checksum(data);

  // Feed in every possible two-way split, including odd splits that
  // leave a byte pending across the boundary.
  for (std::size_t split = 0; split <= data.size(); ++split) {
    InternetChecksum acc;
    acc.Add(std::span{data.data(), split});
    acc.Add(std::span{data.data() + split, data.size() - split});
    EXPECT_EQ(acc.Finish(), expected) << "split at " << split;
  }
}

TEST(InternetChecksum, ManySmallChunksMatchOneShot) {
  std::vector<std::uint8_t> data(101);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(255 - i);
  }
  InternetChecksum acc;
  for (const auto byte : data) acc.Add(std::span{&byte, 1});
  EXPECT_EQ(acc.Finish(), Checksum(data));
}

TEST(Checksum, CarryFolding) {
  // All-0xff data forces repeated carry folds.
  const std::vector<std::uint8_t> data(64, 0xff);
  EXPECT_EQ(Checksum(data), 0x0000);
}

}  // namespace
}  // namespace sleepwalk::net
