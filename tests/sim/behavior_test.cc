#include "sleepwalk/sim/behavior.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sleepwalk::sim {
namespace {

TEST(HashUniform, InUnitIntervalAndDeterministic) {
  for (std::uint64_t key = 0; key < 1000; ++key) {
    const double u = HashUniform(key);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_DOUBLE_EQ(u, HashUniform(key));
  }
}

TEST(HashUniform, RoughlyUniform) {
  int low = 0;
  const int n = 20000;
  for (std::uint64_t key = 0; key < n; ++key) {
    if (HashUniform(key * 2654435761u) < 0.5) ++low;
  }
  EXPECT_NEAR(static_cast<double>(low) / n, 0.5, 0.02);
}

TEST(HashGaussian, MomentsRoughlyStandardNormal) {
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::uint64_t key = 0; key < n; ++key) {
    const double g = HashGaussian(key * 0x9e3779b97f4a7c15ULL);
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(variance, 1.0, 0.05);
}

TEST(DiurnalIsOn, ExactWindowNoJitter) {
  DiurnalParams params;
  params.on_start_sec = 8.0 * 3600.0;
  params.on_duration_sec = 8.0 * 3600.0;
  // Day 0: up in [08:00, 16:00).
  EXPECT_FALSE(DiurnalIsOn(params, 7 * 3600, 1));
  EXPECT_TRUE(DiurnalIsOn(params, 8 * 3600, 1));
  EXPECT_TRUE(DiurnalIsOn(params, 12 * 3600, 1));
  EXPECT_TRUE(DiurnalIsOn(params, 16 * 3600 - 1, 1));
  EXPECT_FALSE(DiurnalIsOn(params, 16 * 3600, 1));
  EXPECT_FALSE(DiurnalIsOn(params, 23 * 3600, 1));
}

TEST(DiurnalIsOn, RepeatsDaily) {
  DiurnalParams params;
  for (int day = 0; day < 30; ++day) {
    const std::int64_t noon = day * kDaySeconds + 12 * 3600;
    const std::int64_t midnight = day * kDaySeconds + 2 * 3600;
    EXPECT_TRUE(DiurnalIsOn(params, noon, 5)) << "day " << day;
    EXPECT_FALSE(DiurnalIsOn(params, midnight, 5)) << "day " << day;
  }
}

TEST(DiurnalIsOn, WindowCrossingMidnight) {
  DiurnalParams params;
  params.on_start_sec = 20.0 * 3600.0;  // 20:00 for 8 h -> ends 04:00
  params.on_duration_sec = 8.0 * 3600.0;
  EXPECT_TRUE(DiurnalIsOn(params, 22 * 3600, 1));             // day 0 evening
  EXPECT_TRUE(DiurnalIsOn(params, kDaySeconds + 2 * 3600, 1));  // day 1 night
  EXPECT_FALSE(DiurnalIsOn(params, kDaySeconds + 5 * 3600, 1));
  EXPECT_FALSE(DiurnalIsOn(params, 10 * 3600, 1));
}

TEST(DiurnalIsOn, StartJitterShiftsWindowPerDay) {
  DiurnalParams params;
  params.sigma_start_sec = 2.0 * 3600.0;
  // With jitter the on-fraction per day stays 1/3 on average but the
  // edges move: sample a boundary time across many days and expect a
  // mixture of states.
  int on_at_8am = 0;
  const int days = 200;
  for (int day = 0; day < days; ++day) {
    if (DiurnalIsOn(params, day * kDaySeconds + 8 * 3600 + 60, 9)) {
      ++on_at_8am;
    }
  }
  EXPECT_GT(on_at_8am, days / 5);
  EXPECT_LT(on_at_8am, days * 4 / 5);
}

TEST(DiurnalIsOn, MeanUptimeFractionPreservedUnderDurationJitter) {
  DiurnalParams params;
  params.sigma_duration_sec = 2.0 * 3600.0;
  int on = 0;
  int total = 0;
  for (int day = 0; day < 100; ++day) {
    for (int step = 0; step < 48; ++step) {
      if (DiurnalIsOn(params, day * kDaySeconds + step * 1800, 33)) ++on;
      ++total;
    }
  }
  const double fraction = static_cast<double>(on) / total;
  EXPECT_NEAR(fraction, 8.0 / 24.0, 0.05);
}

TEST(DiurnalIsOn, DifferentKeysDifferentJitter) {
  DiurnalParams params;
  params.sigma_start_sec = 3.0 * 3600.0;
  int differing_days = 0;
  for (int day = 0; day < 100; ++day) {
    const std::int64_t when = day * kDaySeconds + 9 * 3600;
    if (DiurnalIsOn(params, when, 1) != DiurnalIsOn(params, when, 2)) {
      ++differing_days;
    }
  }
  EXPECT_GT(differing_days, 5);
}

TEST(IntermittentIsOn, DutyFractionRespected) {
  int on = 0;
  const int samples = 5000;
  for (int i = 0; i < samples; ++i) {
    if (IntermittentIsOn(0.3, 7200, static_cast<std::int64_t>(i) * 7200,
                         77)) {
      ++on;
    }
  }
  EXPECT_NEAR(static_cast<double>(on) / samples, 0.3, 0.03);
}

TEST(IntermittentIsOn, ConstantWithinChunk) {
  const std::int64_t chunk = 7200;
  for (int c = 0; c < 50; ++c) {
    const bool at_start = IntermittentIsOn(0.5, chunk, c * chunk, 3);
    const bool at_end = IntermittentIsOn(0.5, chunk, c * chunk + chunk - 1, 3);
    EXPECT_EQ(at_start, at_end) << "chunk " << c;
  }
}

TEST(IntermittentIsOn, DegenerateChunk) {
  EXPECT_FALSE(IntermittentIsOn(0.5, 0, 100, 1));
  EXPECT_FALSE(IntermittentIsOn(0.5, -10, 100, 1));
}

TEST(IntermittentIsOn, NoDiurnalPeriodicity) {
  // Autocorrelation of the on/off sequence at a 24 h lag should be weak
  // (this is what keeps intermittent blocks out of the diurnal class).
  const std::int64_t chunk = 7200;
  int agree = 0;
  const int days = 300;
  for (int day = 0; day < days; ++day) {
    const bool today = IntermittentIsOn(0.5, chunk, day * kDaySeconds, 9);
    const bool tomorrow =
        IntermittentIsOn(0.5, chunk, (day + 1) * kDaySeconds, 9);
    if (today == tomorrow) ++agree;
  }
  EXPECT_NEAR(static_cast<double>(agree) / days, 0.5, 0.12);
}

}  // namespace
}  // namespace sleepwalk::sim
