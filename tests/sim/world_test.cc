#include "sleepwalk/sim/world.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "sleepwalk/rdns/classifier.h"
#include "sleepwalk/world/iana.h"

namespace sleepwalk::sim {
namespace {

WorldConfig SmallConfig() {
  WorldConfig config;
  config.total_blocks = 2000;
  config.seed = 7;
  return config;
}

TEST(SimWorld, GeneratesRequestedScale) {
  const auto world = SimWorld::Generate(SmallConfig());
  // Rounding per country can add a few blocks.
  EXPECT_GT(world.blocks().size(), 1800u);
  EXPECT_LT(world.blocks().size(), 2300u);
}

TEST(SimWorld, BlocksAreUniqueAndIndexed) {
  const auto world = SimWorld::Generate(SmallConfig());
  std::set<std::uint32_t> indices;
  for (const auto& block : world.blocks()) {
    EXPECT_TRUE(indices.insert(block.spec.block.Index()).second);
    EXPECT_EQ(world.Find(block.spec.block), &block);
  }
  EXPECT_EQ(world.Find(net::Prefix24::FromIndex(0xffffff)), nullptr);
}

TEST(SimWorld, DeterministicForSeed) {
  const auto a = SimWorld::Generate(SmallConfig());
  const auto b = SimWorld::Generate(SmallConfig());
  ASSERT_EQ(a.blocks().size(), b.blocks().size());
  for (std::size_t i = 0; i < a.blocks().size(); ++i) {
    EXPECT_EQ(a.blocks()[i].spec.block, b.blocks()[i].spec.block);
    EXPECT_EQ(a.blocks()[i].truly_diurnal, b.blocks()[i].truly_diurnal);
    EXPECT_EQ(a.blocks()[i].tech, b.blocks()[i].tech);
  }
}

TEST(SimWorld, CountryWeightingRoughlyHonored) {
  WorldConfig config;
  config.total_blocks = 10000;
  const auto world = SimWorld::Generate(config);
  std::map<std::string_view, int> per_country;
  for (const auto& block : world.blocks()) {
    ++per_country[block.country->code];
  }
  // US (~19.5% of weight) and CN (~11.4%) dominate.
  EXPECT_GT(per_country["US"], per_country["DE"]);
  EXPECT_GT(per_country["CN"], per_country["IN"]);
  EXPECT_GT(per_country["US"], 1000);
  EXPECT_GT(per_country["CN"], 600);
  // Every country present.
  EXPECT_GE(per_country.size(), 60u);
}

TEST(SimWorld, DiurnalFractionTracksCountryTruth) {
  WorldConfig config;
  config.total_blocks = 12000;
  const auto world = SimWorld::Generate(config);
  std::map<std::string_view, std::pair<int, int>> stats;  // diurnal, total
  for (const auto& block : world.blocks()) {
    auto& [diurnal, total] = stats[block.country->code];
    if (block.truly_diurnal) ++diurnal;
    ++total;
  }
  const auto fraction = [&](std::string_view code) {
    const auto& [diurnal, total] = stats[code];
    return total > 0 ? static_cast<double>(diurnal) / total : 0.0;
  };
  // The generated truth should order countries like the paper's Table 3.
  EXPECT_GT(fraction("CN"), 0.30);
  EXPECT_LT(fraction("US"), 0.03);
  EXPECT_LT(fraction("JP"), 0.06);
  EXPECT_GT(fraction("CN"), fraction("BR"));
  EXPECT_GT(fraction("BR"), fraction("US"));
}

TEST(SimWorld, RegistryMatchesRegion) {
  const auto world = SimWorld::Generate(SmallConfig());
  for (const auto& block : world.blocks()) {
    const auto slash8 =
        static_cast<std::uint8_t>(block.spec.block.Index() >> 16);
    const auto allocation = world::AllocationFor(slash8);
    ASSERT_TRUE(allocation.has_value())
        << "block in reserved /8 " << static_cast<int>(slash8);
    const auto expected = world::RegistryForRegionName(
        world::RegionName(block.country->region));
    EXPECT_EQ(allocation->registry, expected)
        << block.country->name << " in /8 " << static_cast<int>(slash8);
  }
}

TEST(SimWorld, EverActiveWithinOctetRange) {
  const auto world = SimWorld::Generate(SmallConfig());
  for (const auto& block : world.blocks()) {
    EXPECT_LE(block.spec.EverActiveCount(), 255);
    EXPECT_GE(block.spec.EverActiveCount(), 2);
  }
}

TEST(SimWorld, SparseBlocksExist) {
  const auto world = SimWorld::Generate(SmallConfig());
  int sparse = 0;
  for (const auto& block : world.blocks()) {
    if (block.spec.EverActiveCount() < 15) ++sparse;
  }
  const double fraction =
      static_cast<double>(sparse) / static_cast<double>(world.blocks().size());
  EXPECT_GT(fraction, 0.01);
  EXPECT_LT(fraction, 0.15);
}

TEST(SimWorld, OutageFractionRoughlyHonored) {
  WorldConfig config;
  config.total_blocks = 5000;
  config.outage_fraction = 0.10;
  const auto world = SimWorld::Generate(config);
  int with_outage = 0;
  for (const auto& block : world.blocks()) {
    if (block.spec.outage_start_sec >= 0) {
      ++with_outage;
      EXPECT_GT(block.spec.outage_end_sec, block.spec.outage_start_sec);
    }
  }
  const double fraction = static_cast<double>(with_outage) /
                          static_cast<double>(world.blocks().size());
  EXPECT_NEAR(fraction, 0.10, 0.03);
}

TEST(SimWorld, TrueLocationsCoverAllBlocks) {
  const auto world = SimWorld::Generate(SmallConfig());
  const auto locations = world.TrueLocations();
  EXPECT_EQ(locations.size(), world.blocks().size());
  for (const auto& loc : locations) {
    EXPECT_GE(loc.latitude, -90.0);
    EXPECT_LE(loc.latitude, 90.0);
    EXPECT_GE(loc.longitude, -180.0);
    EXPECT_LE(loc.longitude, 180.0);
    EXPECT_EQ(loc.country_code.size(), 2u);
  }
}

TEST(SimWorld, AsnMapCoverage) {
  const auto world = SimWorld::Generate(SmallConfig());
  const auto map = world.BuildAsnMap();
  const double coverage = static_cast<double>(map.mapped_blocks()) /
                          static_cast<double>(world.blocks().size());
  EXPECT_NEAR(coverage, 0.994, 0.01);
  // Every mapped ASN resolves to a registered AS with a name.
  for (const auto& block : world.blocks()) {
    const auto asn = map.AsnFor(block.spec.block);
    if (!asn.has_value()) continue;
    const auto* info = map.InfoFor(*asn);
    ASSERT_NE(info, nullptr);
    EXPECT_FALSE(info->name.empty());
    EXPECT_EQ(info->country_code, block.country->code);
  }
}

TEST(SimWorld, NamesMatchTechnology) {
  const auto world = SimWorld::Generate(SmallConfig());
  int checked = 0;
  for (const auto& block : world.blocks()) {
    if (block.tech == rdns::AccessTech::kUnnamed) continue;
    const auto names = world.NamesFor(block);
    ASSERT_EQ(names.size(), 256u);
    const auto label = rdns::ClassifyBlock(names, {.include_discarded = true});
    // The dominant feature should reflect the assigned technology for
    // most blocks (generic sprinkling can't flip it).
    int max_count = 0;
    for (const int count : label.counts) max_count = std::max(max_count, count);
    EXPECT_GT(max_count, 0) << rdns::AccessTechName(block.tech);
    if (++checked > 200) break;
  }
  EXPECT_GT(checked, 50);
}

TEST(SimWorld, TransportsShareTruthButNotNoise) {
  const auto world = SimWorld::Generate(SmallConfig());
  auto site_a = world.MakeTransport(1);
  auto site_b = world.MakeTransport(2);
  // Probe a stable always-on address from both sites: both should
  // usually succeed (same world truth).
  const auto& block = world.blocks().front();
  int a_up = 0;
  int b_up = 0;
  for (int i = 0; i < 50; ++i) {
    if (site_a->Probe(block.spec.block.Address(1), 12 * 3600) ==
        net::ProbeStatus::kEchoReply) {
      ++a_up;
    }
    if (site_b->Probe(block.spec.block.Address(1), 12 * 3600) ==
        net::ProbeStatus::kEchoReply) {
      ++b_up;
    }
  }
  EXPECT_GT(a_up, 25);
  EXPECT_GT(b_up, 25);
}

TEST(SimWorld, DiurnalScaleMultiplier) {
  WorldConfig low = SmallConfig();
  low.total_blocks = 6000;
  WorldConfig high = low;
  low.diurnal_scale = 0.5;
  high.diurnal_scale = 1.5;
  const auto world_low = SimWorld::Generate(low);
  const auto world_high = SimWorld::Generate(high);
  const auto count = [](const SimWorld& world) {
    int diurnal = 0;
    for (const auto& block : world.blocks()) {
      if (block.truly_diurnal) ++diurnal;
    }
    return diurnal;
  };
  EXPECT_GT(count(world_high), 2 * count(world_low));
}

}  // namespace
}  // namespace sleepwalk::sim
