#include "sleepwalk/sim/block.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sleepwalk/sim/survey.h"

namespace sleepwalk::sim {
namespace {

BlockSpec SimpleSpec() {
  BlockSpec spec;
  spec.block = net::Prefix24::FromIndex(100);
  spec.seed = 0xabc;
  spec.n_always = 50;
  spec.n_diurnal = 100;
  spec.response_prob = 1.0F;
  spec.on_start_sec = 8.0F * 3600.0F;
  spec.on_duration_sec = 8.0F * 3600.0F;
  return spec;
}

TEST(BlockSpec, EverActiveCount) {
  const auto spec = SimpleSpec();
  EXPECT_EQ(spec.EverActiveCount(), 150);
  EXPECT_EQ(EverActiveOctets(spec).size(), 150u);
  EXPECT_EQ(EverActiveOctets(spec).front(), 1);
  EXPECT_EQ(EverActiveOctets(spec).back(), 150);
}

TEST(AddressIsOn, LayoutCategories) {
  const auto spec = SimpleSpec();
  const std::int64_t noon = 12 * 3600;
  const std::int64_t night = 2 * 3600;
  // .0 never responds.
  EXPECT_FALSE(AddressIsOn(spec, 0, noon));
  // Always-on addresses (octets 1..50) respond at any hour.
  EXPECT_TRUE(AddressIsOn(spec, 1, noon));
  EXPECT_TRUE(AddressIsOn(spec, 50, night));
  // Diurnal addresses (51..150) are up at noon, down at night.
  EXPECT_TRUE(AddressIsOn(spec, 51, noon));
  EXPECT_FALSE(AddressIsOn(spec, 51, night));
  // Beyond the ever-active range: never.
  EXPECT_FALSE(AddressIsOn(spec, 151, noon));
  EXPECT_FALSE(AddressIsOn(spec, 255, noon));
}

TEST(TrueAvailability, DayNightLevels) {
  const auto spec = SimpleSpec();
  // Noon: all 150 up -> A = 1.0. Night: only 50 of 150 -> A = 1/3.
  EXPECT_NEAR(TrueAvailability(spec, 12 * 3600), 1.0, 1e-12);
  EXPECT_NEAR(TrueAvailability(spec, 2 * 3600), 1.0 / 3.0, 1e-12);
}

TEST(TrueAvailability, ScalesWithResponseProb) {
  auto spec = SimpleSpec();
  spec.response_prob = 0.8F;
  EXPECT_NEAR(TrueAvailability(spec, 12 * 3600), 0.8, 1e-6);
}

TEST(TrueAvailability, EmptyBlockIsZero) {
  BlockSpec spec;
  EXPECT_DOUBLE_EQ(TrueAvailability(spec, 0), 0.0);
}

TEST(TrueAvailability, PhaseSpreadStaggersRamp) {
  auto spec = SimpleSpec();
  spec.n_always = 0;
  spec.phase_spread_sec = 4.0F * 3600.0F;  // starts spread over 8-12 h
  // At 09:00 only part of the diurnal pool has started.
  const double early = TrueAvailability(spec, 9 * 3600);
  const double late = TrueAvailability(spec, 13 * 3600);
  EXPECT_GT(early, 0.05);
  EXPECT_LT(early, 0.95);
  EXPECT_NEAR(late, 1.0, 1e-12);  // all started by 12:00, none ended yet
}

TEST(Outage, SuppressesEverything) {
  auto spec = SimpleSpec();
  spec.outage_start_sec = 10 * 3600;
  spec.outage_end_sec = 11 * 3600;
  EXPECT_GT(TrueAvailability(spec, 9 * 3600), 0.0);
  EXPECT_DOUBLE_EQ(TrueAvailability(spec, 10 * 3600 + 30), 0.0);
  EXPECT_FALSE(AddressIsOn(spec, 1, 10 * 3600 + 30));
  EXPECT_GT(TrueAvailability(spec, 11 * 3600 + 1), 0.0);
}

TEST(AddressResponds, HonorsResponseProbability) {
  auto spec = SimpleSpec();
  spec.response_prob = 0.6F;
  Rng rng{99};
  int responses = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    if (AddressResponds(spec, 1, 12 * 3600, rng)) ++responses;
  }
  EXPECT_NEAR(static_cast<double>(responses) / trials, 0.6, 0.03);
}

TEST(AddressResponds, OffAddressNeverResponds) {
  const auto spec = SimpleSpec();
  Rng rng{1};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(AddressResponds(spec, 200, 12 * 3600, rng));
    EXPECT_FALSE(AddressResponds(spec, 51, 2 * 3600, rng));
  }
}

TEST(DiurnalStartOf, SpreadWithinConfiguredRange) {
  auto spec = SimpleSpec();
  spec.phase_spread_sec = 3.0F * 3600.0F;
  for (int octet = 51; octet <= 150; ++octet) {
    const double start =
        DiurnalStartOf(spec, static_cast<std::uint8_t>(octet));
    EXPECT_GE(start, 8.0 * 3600.0);
    EXPECT_LT(start, 11.0 * 3600.0);
  }
}

TEST(SimTransport, RoutesToRegisteredBlock) {
  const auto spec = SimpleSpec();
  SimTransport transport{5};
  transport.AddBlock(&spec);
  const auto up = transport.Probe(spec.block.Address(1), 12 * 3600);
  EXPECT_EQ(up, net::ProbeStatus::kEchoReply);
  const auto down = transport.Probe(spec.block.Address(200), 12 * 3600);
  EXPECT_EQ(down, net::ProbeStatus::kTimeout);
  EXPECT_EQ(transport.probes_sent(), 2u);
}

TEST(SimTransport, UnknownBlockUnreachable) {
  SimTransport transport{5};
  EXPECT_EQ(transport.Probe(net::Ipv4Addr{9, 9, 9, 9}, 0),
            net::ProbeStatus::kUnreachable);
}

TEST(Survey, TrueSeriesShowsDailyBumps) {
  const auto spec = SimpleSpec();
  probing::RoundScheduler scheduler{probing::ScheduleConfig{}};
  const auto series =
      TrueAvailabilitySeries(spec, scheduler, scheduler.RoundsForDays(2));
  // Noon of day 0 is round ~65; 2 am is round ~11.
  EXPECT_NEAR(series[65], 1.0, 1e-12);
  EXPECT_NEAR(series[11], 1.0 / 3.0, 1e-12);
}

TEST(Survey, SampledTracksTruth) {
  auto spec = SimpleSpec();
  spec.response_prob = 0.9F;
  probing::RoundScheduler scheduler{probing::ScheduleConfig{}};
  const auto n = scheduler.RoundsForDays(1);
  const auto truth = TrueAvailabilitySeries(spec, scheduler, n);
  const auto survey = RunSurvey(spec, scheduler, n, 42);
  ASSERT_EQ(survey.availability.size(), truth.size());
  double max_error = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    max_error = std::max(max_error,
                         std::abs(survey.availability[i] - truth[i]));
  }
  // Binomial(150, p) noise: a few percent.
  EXPECT_LT(max_error, 0.15);
}

TEST(Survey, BitmapsMatchAvailability) {
  const auto spec = SimpleSpec();
  probing::RoundScheduler scheduler{probing::ScheduleConfig{}};
  const auto survey = RunSurvey(spec, scheduler, 10, 7, /*keep_bitmaps=*/true);
  ASSERT_EQ(survey.bitmaps.size(), 10u);
  for (std::size_t round = 0; round < 10; ++round) {
    int set = 0;
    for (const bool bit : survey.bitmaps[round]) {
      if (bit) ++set;
    }
    EXPECT_NEAR(static_cast<double>(set) / 150.0,
                survey.availability[round], 1e-9);
  }
}

}  // namespace
}  // namespace sleepwalk::sim
