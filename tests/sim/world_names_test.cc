// Guard rails on the generated world's reverse-DNS zones: the ISP
// domains appended to every name must be free of the classifier's 16
// keywords, or the link-type inference (Fig 17) would be polluted by
// the domain rather than driven by the host label.
#include <gtest/gtest.h>

#include "sleepwalk/rdns/classifier.h"
#include "sleepwalk/sim/world.h"

namespace sleepwalk::sim {
namespace {

TEST(WorldNames, IspDomainsCarryNoKeywords) {
  WorldConfig config;
  config.total_blocks = 400;
  config.seed = 0xd0;
  const auto world = SimWorld::Generate(config);
  int unnamed_blocks_checked = 0;
  for (const auto& block : world.blocks()) {
    if (block.tech != rdns::AccessTech::kUnnamed) continue;
    // Unnamed-technology blocks get generic host labels; any keyword
    // match must therefore come from the domain — there must be none.
    const auto names = world.NamesFor(block);
    for (const auto& name : names) {
      if (name.empty()) continue;
      EXPECT_EQ(rdns::MatchAddressName(name), 0) << name;
    }
    if (++unnamed_blocks_checked >= 40) break;
  }
  EXPECT_GT(unnamed_blocks_checked, 5);
}

TEST(WorldNames, NamedBlocksClassifyToTheirTechnology) {
  WorldConfig config;
  config.total_blocks = 600;
  config.seed = 0xd1;
  const auto world = SimWorld::Generate(config);
  int agree = 0;
  int checked = 0;
  const auto expected_keyword = [](rdns::AccessTech tech)
      -> std::optional<rdns::LinkKeyword> {
    using rdns::AccessTech;
    using rdns::LinkKeyword;
    switch (tech) {
      case AccessTech::kStatic: return LinkKeyword::kSta;
      case AccessTech::kDynamic: return LinkKeyword::kDyn;
      case AccessTech::kServer: return LinkKeyword::kSrv;
      case AccessTech::kDhcp: return LinkKeyword::kDhcp;
      case AccessTech::kPpp: return LinkKeyword::kPpp;
      case AccessTech::kDsl: return LinkKeyword::kDsl;
      case AccessTech::kDialup: return LinkKeyword::kDial;
      case AccessTech::kCable: return LinkKeyword::kCable;
      case AccessTech::kResidential: return LinkKeyword::kRes;
      default: return std::nullopt;
    }
  };
  for (const auto& block : world.blocks()) {
    const auto keyword = expected_keyword(block.tech);
    if (!keyword) continue;
    const auto label = rdns::ClassifyBlock(world.NamesFor(block));
    ++checked;
    if ((label.label & rdns::MaskOf(*keyword)) != 0) ++agree;
  }
  ASSERT_GT(checked, 100);
  // PTR coverage and the generic-name sprinkling lose a few blocks but
  // classification must recover the technology almost always.
  EXPECT_GT(static_cast<double>(agree) / checked, 0.95);
}

}  // namespace
}  // namespace sleepwalk::sim
