#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sleepwalk/report/chart.h"
#include "sleepwalk/report/csv.h"
#include "sleepwalk/report/table.h"

namespace sleepwalk::report {
namespace {

TEST(TextTable, RendersHeadersAndRows) {
  TextTable table{{"country", "blocks", "frac"}};
  table.AddRow({"CN", "394244", "0.498"});
  table.AddRow({"US", "672104", "0.002"});
  const auto text = table.ToString();
  EXPECT_NE(text.find("country"), std::string::npos);
  EXPECT_NE(text.find("394244"), std::string::npos);
  EXPECT_NE(text.find("0.002"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTable, PadsShortRowsAndDropsExtras) {
  TextTable table{{"a", "b"}};
  table.AddRow({"only"});
  table.AddRow({"x", "y", "dropped"});
  const auto text = table.ToString();
  EXPECT_EQ(text.find("dropped"), std::string::npos);
}

TEST(TextTable, RuleSeparatesSections) {
  TextTable table{{"k", "v"}};
  table.AddRow({"one", "1"});
  table.AddRule();
  table.AddRow({"two", "2"});
  const auto text = table.ToString();
  // Expect at least 4 horizontal rules: top, under header, mid, bottom.
  std::size_t rules = 0;
  std::istringstream stream{text};
  std::string line;
  while (std::getline(stream, line)) {
    if (line.find("+--") != std::string::npos) ++rules;
  }
  EXPECT_GE(rules, 4u);
}

TEST(Formatting, Fixed) {
  EXPECT_EQ(Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(Fixed(-0.5, 3), "-0.500");
  EXPECT_EQ(Fixed(0.0, 0), "0");
}

TEST(Formatting, Scientific) {
  EXPECT_EQ(Scientific(6.61e-8, 2), "6.61e-08");
  EXPECT_EQ(Scientific(0.001476, 3), "1.476e-03");
}

TEST(Formatting, Percent) {
  EXPECT_EQ(Percent(0.123), "12.3%");
  EXPECT_EQ(Percent(1.0, 0), "100%");
  EXPECT_EQ(Percent(0.0009, 2), "0.09%");
}

TEST(Formatting, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(394244), "394,244");
  EXPECT_EQ(WithCommas(2795099), "2,795,099");
  EXPECT_EQ(WithCommas(-1234567), "-1,234,567");
}

TEST(Chart, ShadeCharEndpoints) {
  EXPECT_EQ(ShadeChar(0.0), ' ');
  EXPECT_EQ(ShadeChar(1.0), '@');
  EXPECT_EQ(ShadeChar(-1.0), ' ');
  EXPECT_EQ(ShadeChar(2.0), '@');
}

TEST(Chart, BarChartScalesToWidth) {
  std::ostringstream out;
  const std::vector<Bar> bars = {{"dynamic", 0.19}, {"dialup", 0.03}};
  PrintBarChart(out, bars, 20);
  const auto text = out.str();
  EXPECT_NE(text.find("dynamic"), std::string::npos);
  // The largest bar fills the full width.
  EXPECT_NE(text.find(std::string(20, '#')), std::string::npos);
}

TEST(Chart, SeriesSmokeTest) {
  std::ostringstream out;
  std::vector<double> series(200);
  for (std::size_t i = 0; i < series.size(); ++i) {
    series[i] = static_cast<double>(i % 50) / 50.0;
  }
  PrintSeries(out, series, 60, 10, "sawtooth");
  EXPECT_NE(out.str().find("sawtooth"), std::string::npos);
  EXPECT_GT(out.str().size(), 100u);
}

TEST(Chart, TwoSeriesUsesDistinctMarks) {
  std::ostringstream out;
  const std::vector<double> low(100, 0.1);
  const std::vector<double> high(100, 0.9);
  PrintTwoSeries(out, low, high, 40, 8);
  const auto text = out.str();
  EXPECT_NE(text.find('*'), std::string::npos);
  EXPECT_NE(text.find('o'), std::string::npos);
}

TEST(Chart, DensityGridRendersRows) {
  std::ostringstream out;
  const std::vector<std::vector<double>> cells = {{0.0, 1.0}, {2.0, 0.0}};
  PrintDensityGrid(out, cells, "grid");
  const auto text = out.str();
  EXPECT_NE(text.find("grid"), std::string::npos);
  EXPECT_NE(text.find('@'), std::string::npos);
}

TEST(Csv, WritesAndEscapes) {
  const std::string path = ::testing::TempDir() + "/sleepwalk_csv_test.csv";
  {
    CsvWriter writer{path};
    ASSERT_TRUE(writer.ok());
    writer.WriteRow({"plain", "with,comma", "with\"quote"});
  }
  std::ifstream in{path};
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "plain,\"with,comma\",\"with\"\"quote\"");
  std::remove(path.c_str());
}

TEST(Csv, PathForRespectsEnvironment) {
  ::unsetenv("SLEEPWALK_CSV_DIR");
  EXPECT_TRUE(CsvPathFor("x.csv").empty());
  ::setenv("SLEEPWALK_CSV_DIR", "/tmp", 1);
  EXPECT_EQ(CsvPathFor("x.csv"), "/tmp/x.csv");
  ::unsetenv("SLEEPWALK_CSV_DIR");
}

}  // namespace
}  // namespace sleepwalk::report
