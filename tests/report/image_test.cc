#include "sleepwalk/report/image.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace sleepwalk::report {
namespace {

TEST(GrayImage, SetGet) {
  GrayImage image{4, 3};
  EXPECT_EQ(image.width(), 4u);
  EXPECT_EQ(image.height(), 3u);
  image.Set(2, 1, 200);
  EXPECT_EQ(image.Get(2, 1), 200);
  EXPECT_EQ(image.Get(0, 0), 0);
}

TEST(GrayImage, InvalidDimensionsThrow) {
  EXPECT_THROW((GrayImage{0, 5}), std::invalid_argument);
  EXPECT_THROW((GrayImage{5, 0}), std::invalid_argument);
}

TEST(GrayImage, OutOfBoundsThrows) {
  GrayImage image{2, 2};
  EXPECT_THROW(image.Set(2, 0, 1), std::out_of_range);
  EXPECT_THROW((void)image.Get(0, 2), std::out_of_range);
}

TEST(FromGrid, NormalizesToMax) {
  const std::vector<std::vector<double>> grid = {{0.0, 5.0}, {10.0, 2.5}};
  const auto image = GrayImage::FromGrid(grid);
  EXPECT_EQ(image.Get(0, 0), 0);
  EXPECT_EQ(image.Get(1, 0), 128);  // 5/10 -> 127.5 rounds to 128
  EXPECT_EQ(image.Get(0, 1), 255);
  EXPECT_EQ(image.Get(1, 1), 64);
}

TEST(FromGrid, FlipRowsPutsFirstRowAtBottom) {
  const std::vector<std::vector<double>> grid = {{1.0}, {0.0}};
  const auto normal = GrayImage::FromGrid(grid, /*flip_rows=*/false);
  EXPECT_EQ(normal.Get(0, 0), 255);
  EXPECT_EQ(normal.Get(0, 1), 0);
  const auto flipped = GrayImage::FromGrid(grid, /*flip_rows=*/true);
  EXPECT_EQ(flipped.Get(0, 0), 0);
  EXPECT_EQ(flipped.Get(0, 1), 255);
}

TEST(FromGrid, GammaBrightensSparseValues) {
  const std::vector<std::vector<double>> grid = {{0.04, 1.0}};
  const auto linear = GrayImage::FromGrid(grid, false, 1.0);
  const auto bright = GrayImage::FromGrid(grid, false, 0.5);
  EXPECT_GT(bright.Get(0, 0), linear.Get(0, 0));
  EXPECT_EQ(bright.Get(1, 0), 255);
}

TEST(FromGrid, RejectsBadGrids) {
  EXPECT_THROW(GrayImage::FromGrid({}), std::invalid_argument);
  EXPECT_THROW(GrayImage::FromGrid({{}}), std::invalid_argument);
  EXPECT_THROW(GrayImage::FromGrid({{1.0, 2.0}, {3.0}}),
               std::invalid_argument);
}

TEST(FromGrid, AllZeroGridIsBlack) {
  const std::vector<std::vector<double>> grid = {{0.0, 0.0}};
  const auto image = GrayImage::FromGrid(grid);
  EXPECT_EQ(image.Get(0, 0), 0);
  EXPECT_EQ(image.Get(1, 0), 0);
}

TEST(WritePgm, ProducesValidHeaderAndPayload) {
  GrayImage image{3, 2};
  image.Set(0, 0, 10);
  image.Set(2, 1, 250);
  const auto path = ::testing::TempDir() + "/sleepwalk_image_test.pgm";
  ASSERT_TRUE(image.WritePgm(path));

  std::ifstream in{path, std::ios::binary};
  std::string magic;
  std::size_t width = 0;
  std::size_t height = 0;
  int maxval = 0;
  in >> magic >> width >> height >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(width, 3u);
  EXPECT_EQ(height, 2u);
  EXPECT_EQ(maxval, 255);
  in.get();  // the single whitespace after the header
  std::vector<char> pixels(6);
  in.read(pixels.data(), 6);
  ASSERT_TRUE(in);
  EXPECT_EQ(static_cast<unsigned char>(pixels[0]), 10);
  EXPECT_EQ(static_cast<unsigned char>(pixels[5]), 250);
  std::remove(path.c_str());
}

TEST(WritePgm, FailsOnUnwritablePath) {
  GrayImage image{1, 1};
  EXPECT_FALSE(image.WritePgm("/nonexistent_dir/x.pgm"));
}

}  // namespace
}  // namespace sleepwalk::report
