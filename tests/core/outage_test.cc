#include <gtest/gtest.h>

#include "sleepwalk/core/block_analyzer.h"
#include "sleepwalk/sim/block.h"

namespace sleepwalk::core {
namespace {

sim::BlockSpec StableSpec(std::uint32_t index) {
  sim::BlockSpec spec;
  spec.block = net::Prefix24::FromIndex(index);
  spec.seed = index;
  spec.n_always = 120;
  spec.response_prob = 0.92F;
  return spec;
}

BlockAnalysis RunWith(const sim::BlockSpec& spec, int days) {
  // Transport seed chosen so the healthy block sees no all-negative
  // round over 7 days (at response 0.92 that is a ~0.05%/round event, so
  // most seeds qualify — but not all; 9 does not).
  sim::SimTransport transport{1};
  transport.AddBlock(&spec);
  AnalyzerConfig config;
  BlockAnalyzer analyzer{spec.block, sim::EverActiveOctets(spec), 0.9, 4,
                         config};
  const probing::RoundScheduler scheduler{config.schedule};
  analyzer.RunCampaign(transport, scheduler.RoundsForDays(days));
  return analyzer.Finish();
}

TEST(OutageEpisode, DurationHours) {
  OutageEpisode episode{100, 12};
  EXPECT_NEAR(episode.DurationHours(), 12.0 * 660.0 / 3600.0, 1e-12);
  EXPECT_NEAR(episode.DurationHours(600), 2.0, 1e-12);
}

TEST(OutageEpisodes, SingleOutageYieldsOneEpisode) {
  auto spec = StableSpec(700);
  spec.outage_start_sec = 3 * 86400;
  spec.outage_end_sec = 3 * 86400 + 4 * 3600;  // 4-hour outage
  const auto analysis = RunWith(spec, 7);
  ASSERT_EQ(analysis.outages.size(), 1u);
  const auto& episode = analysis.outages.front();
  // Starts near round 3*86400/660 = 392.7.
  EXPECT_NEAR(static_cast<double>(episode.start_round), 393.0, 4.0);
  // ~4 hours = ~21.8 rounds of down verdicts.
  EXPECT_NEAR(static_cast<double>(episode.rounds), 21.8, 4.0);
  EXPECT_NEAR(episode.DurationHours(), 4.0, 1.0);
}

TEST(OutageEpisodes, TwoSeparateOutages) {
  // Two outage windows require two specs (BlockSpec holds one window),
  // so emulate with one long campaign and a mid-campaign window, then a
  // second run — instead, verify separation using one block whose
  // single outage is bracketed by up rounds, plus the no-outage case.
  auto spec = StableSpec(701);
  spec.outage_start_sec = 86400;
  spec.outage_end_sec = 86400 + 2 * 3600;
  const auto analysis = RunWith(spec, 3);
  ASSERT_EQ(analysis.outages.size(), 1u);
  EXPECT_EQ(analysis.outage_starts.size(), analysis.outages.size());
  EXPECT_EQ(analysis.outage_starts.front(),
            analysis.outages.front().start_round);
}

TEST(OutageEpisodes, HealthyBlockHasNone) {
  const auto analysis = RunWith(StableSpec(702), 7);
  EXPECT_TRUE(analysis.outages.empty());
  EXPECT_EQ(analysis.down_rounds, 0);
}

TEST(OutageEpisodes, DownRoundsMatchEpisodeSum) {
  auto spec = StableSpec(703);
  spec.outage_start_sec = 2 * 86400;
  spec.outage_end_sec = 2 * 86400 + 8 * 3600;
  const auto analysis = RunWith(spec, 5);
  std::int64_t episode_rounds = 0;
  for (const auto& episode : analysis.outages) {
    episode_rounds += episode.rounds;
  }
  EXPECT_EQ(episode_rounds, analysis.down_rounds);
}

}  // namespace
}  // namespace sleepwalk::core
