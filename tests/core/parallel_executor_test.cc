// Determinism contract of the parallel sharded executor: an N-worker run
// must be byte-identical to a single-worker run — datasets, checkpoints,
// resilience stats, and buffered telemetry — because workers only compute
// per-block results and the coordinator commits them in block order.
// DESIGN.md §9 states the argument; these tests enforce it.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sleepwalk/core/dataset.h"
#include "sleepwalk/core/parallel_executor.h"
#include "sleepwalk/core/supervisor.h"
#include "sleepwalk/faults/faulty_transport.h"
#include "sleepwalk/obs/context.h"
#include "sleepwalk/obs/log.h"
#include "sleepwalk/obs/metrics.h"
#include "sleepwalk/obs/trace.h"
#include "sleepwalk/sim/world.h"

namespace sleepwalk {
namespace {

sim::SimWorld TestWorld(int blocks = 40) {
  sim::WorldConfig config;
  config.total_blocks = blocks;
  config.seed = 0x9a11e1;
  return sim::SimWorld::Generate(config);
}

std::vector<core::BlockTarget> TargetsOf(const sim::SimWorld& world) {
  std::vector<core::BlockTarget> targets;
  for (const auto& block : world.blocks()) {
    targets.push_back({block.spec.block, sim::EverActiveOctets(block.spec),
                       sim::TrueAvailability(block.spec, 13 * 3600)});
  }
  return targets;
}

faults::FaultPlan TestFaults(const sim::SimWorld& world) {
  faults::FaultPlan plan;
  plan.iid_loss = 0.05;
  plan.burst.enabled = true;
  plan.dead_blocks = {world.blocks()[3].spec.block.Index()};
  return plan;
}

core::SupervisorConfig TestConfig() {
  core::SupervisorConfig config;
  config.seed = 11;
  config.forced_restart_rounds = {40, 130};
  config.gap_round_windows = {{60, 70}};
  return config;
}

/// Worker chain mirroring the CLI's: every worker gets an identically
/// seeded simulated transport behind the same fault plan, so chains are
/// interchangeable and results independent of block-to-worker placement.
class SimShardChain final : public core::ShardChain {
 public:
  SimShardChain(const sim::SimWorld& world, std::uint64_t site_seed,
                const faults::FaultPlan& plan)
      : transport_{world.MakeTransport(site_seed)},
        faulty_{*transport_, plan} {}

  net::Transport& transport() override { return faulty_; }
  void AttachObs(const obs::Context& context) override {
    faulty_.AttachObs(context);
  }
  report::ProbeAccounting accounting() const override {
    return faulty_.accounting();
  }

 private:
  std::unique_ptr<sim::SimTransport> transport_;
  faults::FaultyTransport faulty_;
};

core::ShardFactory FactoryFor(const sim::SimWorld& world,
                              const faults::FaultPlan& plan,
                              std::uint64_t site_seed = 9) {
  return [&world, plan, site_seed](std::size_t) {
    return std::make_unique<SimShardChain>(world, site_seed, plan);
  };
}

std::string FileBytes(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string DatasetBytes(const core::CampaignOutcome& outcome,
                         const core::SupervisorConfig& config,
                         const std::string& tag) {
  const std::string path = testing::TempDir() + "/pexec_" + tag + ".slpw";
  if (!core::WriteDataset(path, outcome.result.analyses,
                          config.analyzer.schedule.round_seconds,
                          config.analyzer.schedule.epoch_sec)) {
    ADD_FAILURE() << "cannot write dataset " << path;
    return {};
  }
  auto bytes = FileBytes(path);
  std::remove(path.c_str());
  return bytes;
}

void ExpectStatsEqual(const report::ResilienceStats& a,
                      const report::ResilienceStats& b,
                      bool include_checkpoint_fields = true) {
  EXPECT_EQ(a.probes.attempts, b.probes.attempts);
  EXPECT_EQ(a.probes.errors, b.probes.errors);
  EXPECT_EQ(a.probes.answered, b.probes.answered);
  EXPECT_EQ(a.probes.lost, b.probes.lost);
  EXPECT_EQ(a.probes.rate_limited, b.probes.rate_limited);
  EXPECT_EQ(a.probes.unreachable, b.probes.unreachable);
  EXPECT_EQ(a.rounds_attempted, b.rounds_attempted);
  EXPECT_EQ(a.rounds_failed, b.rounds_failed);
  EXPECT_EQ(a.rounds_gapped, b.rounds_gapped);
  EXPECT_EQ(a.retries, b.retries);
  // Bitwise, not approximate: commit-ordered folding makes even the
  // floating-point backoff sum order-independent of worker count.
  EXPECT_EQ(a.backoff_seconds, b.backoff_seconds);
  EXPECT_EQ(a.forced_restarts, b.forced_restarts);
  EXPECT_EQ(a.quarantined_blocks, b.quarantined_blocks);
  if (include_checkpoint_fields) {
    EXPECT_EQ(a.checkpoints_written, b.checkpoints_written);
  }
}

TEST(ParallelExecutor, HardwareWorkersIsPositive) {
  EXPECT_GE(core::HardwareWorkers(), 1);
}

TEST(ParallelExecutor, WorkersOneVsEightByteIdentical) {
  const auto world = TestWorld();
  const auto plan = TestFaults(world);

  auto run = [&](int workers, const std::string& tag) {
    auto config = TestConfig();
    config.checkpoint_path =
        testing::TempDir() + "/pexec_ck_" + tag + ".ck";
    std::remove(config.checkpoint_path.c_str());
    core::ParallelConfig parallel;
    parallel.workers = workers;
    auto outcome =
        core::RunParallelCampaign(TargetsOf(world), FactoryFor(world, plan),
                                  220, config, parallel);
    auto dataset = DatasetBytes(outcome, config, tag);
    auto checkpoint = FileBytes(config.checkpoint_path);
    std::remove(config.checkpoint_path.c_str());
    return std::tuple{std::move(outcome), std::move(dataset),
                      std::move(checkpoint)};
  };

  const auto [one, dataset_one, ckpt_one] = run(1, "w1");
  const auto [eight, dataset_eight, ckpt_eight] = run(8, "w8");

  ASSERT_FALSE(dataset_one.empty());
  EXPECT_EQ(dataset_one, dataset_eight);
  ASSERT_FALSE(ckpt_one.empty());
  EXPECT_EQ(ckpt_one, ckpt_eight);
  ExpectStatsEqual(one.stats, eight.stats);
  ASSERT_EQ(one.quarantined.size(), eight.quarantined.size());
  for (std::size_t i = 0; i < one.quarantined.size(); ++i) {
    EXPECT_EQ(one.quarantined[i], eight.quarantined[i]);
  }
}

TEST(ParallelExecutor, MatchesSequentialSupervisor) {
  const auto world = TestWorld();
  const auto plan = TestFaults(world);
  const auto config = TestConfig();

  auto inner = world.MakeTransport(9);
  faults::FaultyTransport sequential_chain{*inner, plan};
  const auto sequential = core::RunResilientCampaign(
      TargetsOf(world), sequential_chain, 220, config);

  core::ParallelConfig parallel;
  parallel.workers = 3;
  const auto threaded = core::RunParallelCampaign(
      TargetsOf(world), FactoryFor(world, plan), 220, config, parallel);

  EXPECT_EQ(DatasetBytes(sequential, config, "seq"),
            DatasetBytes(threaded, config, "par"));
  ASSERT_EQ(sequential.quarantined.size(), threaded.quarantined.size());
  // The sequential supervisor leaves stats.probes to the caller (it only
  // sees a Transport&); compare the supervisor-owned counters and check
  // probes against the sequential chain's own accounting.
  EXPECT_EQ(sequential.stats.rounds_attempted,
            threaded.stats.rounds_attempted);
  EXPECT_EQ(sequential.stats.rounds_failed, threaded.stats.rounds_failed);
  EXPECT_EQ(sequential.stats.rounds_gapped, threaded.stats.rounds_gapped);
  EXPECT_EQ(sequential.stats.retries, threaded.stats.retries);
  EXPECT_EQ(sequential.stats.backoff_seconds,
            threaded.stats.backoff_seconds);
  EXPECT_EQ(sequential.stats.forced_restarts,
            threaded.stats.forced_restarts);
  EXPECT_EQ(sequential.stats.quarantined_blocks,
            threaded.stats.quarantined_blocks);
  EXPECT_EQ(sequential_chain.accounting().attempts,
            threaded.stats.probes.attempts);
  EXPECT_EQ(sequential_chain.accounting().answered,
            threaded.stats.probes.answered);
  EXPECT_EQ(sequential_chain.accounting().lost, threaded.stats.probes.lost);
}

TEST(ParallelExecutor, TelemetryByteIdenticalAcrossWorkerCounts) {
  const auto world = TestWorld(24);
  const auto plan = TestFaults(world);

  struct Telemetry {
    std::string text;
    std::string jsonl;
    std::string trace;
    std::string prom;
  };
  auto run = [&](int workers) {
    obs::Logger logger{obs::LogConfig{obs::Level::kTrace,
                                      /*deterministic=*/true}};
    std::ostringstream text;
    std::ostringstream jsonl;
    logger.AddTextSink(&text);
    logger.AddJsonlSink(&jsonl);
    obs::Registry registry;
    obs::Tracer tracer;
    auto config = TestConfig();
    config.obs.log = &logger;
    config.obs.metrics = &registry;
    config.obs.tracer = &tracer;
    core::ParallelConfig parallel;
    parallel.workers = workers;
    core::RunParallelCampaign(TargetsOf(world), FactoryFor(world, plan),
                              160, config, parallel);
    Telemetry telemetry;
    telemetry.text = text.str();
    telemetry.jsonl = jsonl.str();
    std::ostringstream trace;
    tracer.WriteJsonl(trace);
    telemetry.trace = trace.str();
    std::ostringstream prom;
    registry.WritePrometheus(prom);
    telemetry.prom = prom.str();
    return telemetry;
  };

  const auto one = run(1);
  const auto eight = run(8);
  ASSERT_FALSE(one.jsonl.empty());
  ASSERT_FALSE(one.trace.empty());
  EXPECT_EQ(one.text, eight.text);
  EXPECT_EQ(one.jsonl, eight.jsonl);
  EXPECT_EQ(one.trace, eight.trace);
  EXPECT_EQ(one.prom, eight.prom);
}

TEST(ParallelExecutor, KillAndResumeAtEightWorkersIsByteIdentical) {
  const auto world = TestWorld();
  const auto plan = TestFaults(world);
  core::ParallelConfig parallel;
  parallel.workers = 8;

  // Uninterrupted 8-worker reference.
  auto reference_config = TestConfig();
  const auto reference =
      core::RunParallelCampaign(TargetsOf(world), FactoryFor(world, plan),
                                220, reference_config, parallel);

  // The same campaign killed repeatedly: stop_after_rounds ends each
  // slice early, the next slice resumes from the block-prefix checkpoint
  // with a fresh set of worker chains (as a restarted process would).
  auto config = TestConfig();
  config.checkpoint_path = testing::TempDir() + "/pexec_resume.ck";
  std::remove(config.checkpoint_path.c_str());
  config.stop_after_rounds = 2500;  // 40 blocks x 220 rounds total

  core::CampaignOutcome outcome;
  int slices = 0;
  do {
    outcome = core::RunParallelCampaign(
        TargetsOf(world), FactoryFor(world, plan), 220, config, parallel);
    ++slices;
    ASSERT_LE(slices, 12) << "campaign did not converge";
  } while (outcome.stopped_early);

  EXPECT_GE(slices, 3);
  EXPECT_TRUE(outcome.resumed);
  EXPECT_TRUE(outcome.stats.resumed_from_checkpoint);
  EXPECT_EQ(DatasetBytes(reference, config, "ref"),
            DatasetBytes(outcome, config, "res"));
  // Only commits mutate stats and every slice commits an exact block
  // prefix, so the sliced totals match the uninterrupted run except for
  // the checkpoint writes the reference never performed.
  ExpectStatsEqual(reference.stats, outcome.stats,
                   /*include_checkpoint_fields=*/false);
  std::remove(config.checkpoint_path.c_str());
}

TEST(ParallelExecutor, RefusesMidBlockSequentialCheckpoint) {
  // A sequential run killed mid-block leaves a checkpoint with in-flight
  // state; the parallel executor only understands block prefixes, so it
  // must restart from scratch — and still converge on the same dataset.
  const auto world = TestWorld(12);
  const auto plan = TestFaults(world);
  auto config = TestConfig();
  config.checkpoint_path = testing::TempDir() + "/pexec_midblock.ck";
  std::remove(config.checkpoint_path.c_str());
  config.checkpoint_every_rounds = 50;
  config.stop_after_rounds = 330;  // mid-block at 220 rounds per block

  auto inner = world.MakeTransport(9);
  faults::FaultyTransport chain{*inner, plan};
  const auto partial =
      core::RunResilientCampaign(TargetsOf(world), chain, 220, config);
  ASSERT_TRUE(partial.stopped_early);

  config.stop_after_rounds = 0;
  core::ParallelConfig parallel;
  parallel.workers = 4;
  const auto outcome = core::RunParallelCampaign(
      TargetsOf(world), FactoryFor(world, plan), 220, config, parallel);
  EXPECT_FALSE(outcome.resumed);

  auto clean_config = TestConfig();
  const auto reference = core::RunParallelCampaign(
      TargetsOf(world), FactoryFor(world, plan), 220, clean_config,
      parallel);
  EXPECT_EQ(DatasetBytes(reference, clean_config, "mb_ref"),
            DatasetBytes(outcome, config, "mb_out"));
  std::remove(config.checkpoint_path.c_str());
}

TEST(ParallelExecutor, MoreWorkersThanBlocksIsClamped) {
  const auto world = TestWorld(5);
  const auto plan = TestFaults(world);
  core::ParallelConfig parallel;
  parallel.workers = 64;
  const auto n_targets = TargetsOf(world).size();
  const auto outcome =
      core::RunParallelCampaign(TargetsOf(world), FactoryFor(world, plan),
                                120, TestConfig(), parallel);
  EXPECT_EQ(outcome.result.analyses.size(), n_targets);
}

}  // namespace
}  // namespace sleepwalk
