// Thread-safety stress for the parallel executor, built as its own
// binary so the CI `tsan` job can run exactly this under
// -fsanitize=thread (alongside the obs concurrency stress). Assertions
// here are sanity floors; the real oracle is the sanitizer observing
// 8 workers stealing work, probing through fault-injecting chains, and
// publishing results through the completion queue while the coordinator
// merges telemetry and writes checkpoints.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sleepwalk/core/parallel_executor.h"
#include "sleepwalk/core/supervisor.h"
#include "sleepwalk/faults/faulty_transport.h"
#include "sleepwalk/net/rate_limiter.h"
#include "sleepwalk/obs/context.h"
#include "sleepwalk/obs/log.h"
#include "sleepwalk/obs/metrics.h"
#include "sleepwalk/obs/trace.h"
#include "sleepwalk/sim/world.h"

namespace sleepwalk {
namespace {

TEST(ParallelStress, EightWorkersWithFaultsAndLiveTelemetry) {
  sim::WorldConfig world_config;
  world_config.total_blocks = 64;
  world_config.seed = 0x57e55;
  const auto world = sim::SimWorld::Generate(world_config);

  faults::FaultPlan plan;
  plan.iid_loss = 0.08;
  plan.burst.enabled = true;
  plan.rate_limit_per_window = 12;
  plan.dead_blocks = {world.blocks()[5].spec.block.Index()};

  std::vector<core::BlockTarget> targets;
  for (const auto& block : world.blocks()) {
    targets.push_back({block.spec.block, sim::EverActiveOctets(block.spec),
                       sim::TrueAvailability(block.spec, 13 * 3600)});
  }

  // Live shared sinks: per-block buffers are worker-private, but the
  // campaign-level logger/registry/tracer see concurrent coordinator
  // writes interleaved with worker-side block construction.
  obs::Logger logger{obs::LogConfig{obs::Level::kDebug,
                                    /*deterministic=*/true}};
  std::ostringstream text;
  std::ostringstream jsonl;
  logger.AddTextSink(&text);
  logger.AddJsonlSink(&jsonl);
  obs::Registry registry;
  obs::Tracer tracer;

  core::SupervisorConfig config;
  config.seed = 3;
  config.forced_restart_rounds = {30};
  config.checkpoint_path = testing::TempDir() + "/parallel_stress.ck";
  std::remove(config.checkpoint_path.c_str());
  config.obs.log = &logger;
  config.obs.metrics = &registry;
  config.obs.tracer = &tracer;

  core::ShardFactory factory = [&world, &plan](std::size_t) {
    struct Chain final : core::ShardChain {
      Chain(const sim::SimWorld& world, const faults::FaultPlan& plan)
          : inner{world.MakeTransport(17)}, faulty{*inner, plan} {}
      net::Transport& transport() override { return faulty; }
      void AttachObs(const obs::Context& context) override {
        faulty.AttachObs(context);
      }
      report::ProbeAccounting accounting() const override {
        return faulty.accounting();
      }
      std::unique_ptr<sim::SimTransport> inner;
      faults::FaultyTransport faulty;
    };
    return std::make_unique<Chain>(world, plan);
  };

  core::ParallelConfig parallel;
  parallel.workers = 8;
  const auto n_targets = targets.size();
  const auto outcome = core::RunParallelCampaign(std::move(targets), factory,
                                                 90, config, parallel);

  EXPECT_EQ(outcome.result.analyses.size(), n_targets);
  EXPECT_GT(outcome.stats.probes.attempts, 0);
  EXPECT_GE(outcome.stats.quarantined_blocks, 1);
  EXPECT_FALSE(jsonl.str().empty());
  std::remove(config.checkpoint_path.c_str());
}

TEST(ParallelStress, ShardedRateLimiterUnderContention) {
  net::ShardedRateLimiter limiter{200.0, 16.0, 8};
  std::atomic<long> granted{0};
  std::vector<std::thread> workers;
  for (std::size_t shard = 0; shard < 8; ++shard) {
    workers.emplace_back([&limiter, &granted, shard] {
      for (int tick = 0; tick < 20000; ++tick) {
        if (limiter.TryAcquire(shard, tick / 1000.0)) {
          granted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_LE(static_cast<double>(granted.load()), 200.0 * 20.0 + 16.0 + 1.0);
  EXPECT_GT(granted.load(), 0);
}

}  // namespace
}  // namespace sleepwalk
