#include "sleepwalk/core/daily_profile.h"

#include <gtest/gtest.h>

#include <vector>

namespace sleepwalk::core {
namespace {

// Series sampled every 660 s starting at midnight; value chosen by hour.
std::vector<double> HourlyPattern(int days, double (*value_at)(int hour)) {
  std::vector<double> series;
  const int rounds = days * 86400 / 660;
  series.reserve(static_cast<std::size_t>(rounds));
  for (int i = 0; i < rounds; ++i) {
    const int hour = static_cast<int>((static_cast<std::int64_t>(i) * 660 %
                                       86400) / 3600);
    series.push_back(value_at(hour));
  }
  return series;
}

TEST(DailyProfile, FlatSeriesHasZeroRange) {
  const auto series = HourlyPattern(7, [](int) { return 0.8; });
  const auto profile = ComputeDailyProfile(series);
  EXPECT_NEAR(profile.Range(), 0.0, 1e-12);
  EXPECT_NEAR(profile.DailyMean(), 0.8, 1e-12);
  for (int h = 0; h < 24; ++h) {
    EXPECT_GT(profile.samples_by_hour[static_cast<std::size_t>(h)], 0);
  }
}

TEST(DailyProfile, DiurnalRangeAndPhase) {
  // Up 0.9 between 08:00 and 17:00, down 0.2 otherwise.
  const auto series = HourlyPattern(14, [](int hour) {
    return (hour >= 8 && hour < 17) ? 0.9 : 0.2;
  });
  const auto profile = ComputeDailyProfile(series);
  EXPECT_NEAR(profile.maximum, 0.9, 1e-9);
  EXPECT_NEAR(profile.minimum, 0.2, 1e-9);
  EXPECT_NEAR(profile.Range(), 0.7, 1e-9);
  EXPECT_GE(profile.max_hour, 8);
  EXPECT_LT(profile.max_hour, 17);
  EXPECT_TRUE(profile.min_hour < 8 || profile.min_hour >= 17);
}

TEST(DailyProfile, MeanByHourAverages) {
  const auto series = HourlyPattern(3, [](int hour) {
    return hour < 12 ? 0.4 : 0.6;
  });
  const auto profile = ComputeDailyProfile(series);
  EXPECT_NEAR(profile.mean_by_hour[3], 0.4, 1e-9);
  EXPECT_NEAR(profile.mean_by_hour[20], 0.6, 1e-9);
  EXPECT_NEAR(profile.DailyMean(), 0.5, 1e-9);
}

TEST(DailyProfile, SnapshotErrorQuantifiesTheNaiveScanBias) {
  // §5.6: a snapshot taken at night underestimates a diurnal block's
  // daily mean by about half the range; an always-on block is safe to
  // snapshot at any hour.
  const auto diurnal = ComputeDailyProfile(HourlyPattern(
      14, [](int hour) { return (hour >= 8 && hour < 16) ? 1.0 : 0.0; }));
  EXPECT_GT(diurnal.SnapshotError(3), 0.25);   // night snapshot way off
  EXPECT_GT(diurnal.SnapshotError(12), 0.25);  // midday also off (high)

  const auto flat = ComputeDailyProfile(
      HourlyPattern(14, [](int) { return 0.7; }));
  for (int h = 0; h < 24; ++h) {
    EXPECT_LT(flat.SnapshotError(h), 1e-9);
  }
}

TEST(DailyProfile, SnapshotErrorWrapsHour) {
  const auto profile = ComputeDailyProfile(HourlyPattern(
      7, [](int hour) { return hour == 0 ? 1.0 : 0.0; }));
  EXPECT_DOUBLE_EQ(profile.SnapshotError(24), profile.SnapshotError(0));
  EXPECT_DOUBLE_EQ(profile.SnapshotError(-24), profile.SnapshotError(0));
}

TEST(DailyProfile, ShortSeriesLeavesEmptyHours) {
  // 10 rounds = under two hours of data.
  std::vector<double> series(10, 0.5);
  const auto profile = ComputeDailyProfile(series);
  EXPECT_GT(profile.samples_by_hour[0], 0);
  EXPECT_EQ(profile.samples_by_hour[12], 0);
  EXPECT_NEAR(profile.DailyMean(), 0.5, 1e-12);
}

TEST(DailyProfile, EmptyAndDegenerate) {
  const auto empty = ComputeDailyProfile({});
  EXPECT_DOUBLE_EQ(empty.Range(), 0.0);
  EXPECT_DOUBLE_EQ(empty.DailyMean(), 0.0);
  const std::vector<double> one = {0.3};
  EXPECT_DOUBLE_EQ(ComputeDailyProfile(one, 0).DailyMean(), 0.0);
}

}  // namespace
}  // namespace sleepwalk::core
