// The /statusz read path: StatusHub attach/detach lifetimes, histogram
// quantile collection, and — the schema contract the admin plane and
// sleeptop depend on — RenderStatusJson emitting the same key set for
// any worker count, verified both on constructed statuses and against
// live snapshots sampled from real 1-worker and 8-worker campaigns.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sleepwalk/core/parallel_executor.h"
#include "sleepwalk/core/status.h"
#include "sleepwalk/core/supervisor.h"
#include "sleepwalk/faults/faulty_transport.h"
#include "sleepwalk/obs/metrics.h"
#include "sleepwalk/sim/world.h"

namespace sleepwalk::core {
namespace {

TEST(StatusHub, SnapshotRunsTheAttachedProvider) {
  StatusHub hub;
  CampaignStatus out;
  EXPECT_FALSE(hub.attached());
  EXPECT_FALSE(hub.Snapshot(out));

  const auto registration = hub.Attach([] {
    CampaignStatus status;
    status.blocks_done = 3;
    return status;
  });
  EXPECT_TRUE(hub.attached());
  ASSERT_TRUE(hub.Snapshot(out));
  EXPECT_EQ(out.blocks_done, 3u);
}

TEST(StatusHub, RegistrationDetachesOnDestruction) {
  StatusHub hub;
  {
    const auto registration = hub.Attach([] { return CampaignStatus{}; });
    EXPECT_TRUE(hub.attached());
  }
  EXPECT_FALSE(hub.attached());
}

TEST(StatusHub, RegistrationIsMovableAndResetIsIdempotent) {
  StatusHub hub;
  auto registration = hub.Attach([] { return CampaignStatus{}; });
  StatusHub::Registration moved{std::move(registration)};
  EXPECT_TRUE(hub.attached());
  registration = std::move(moved);  // move-assign back
  EXPECT_TRUE(hub.attached());
  registration.Reset();
  EXPECT_FALSE(hub.attached());
  registration.Reset();  // second Reset is a no-op
  EXPECT_FALSE(hub.attached());
}

TEST(StatusHub, LastAttachWins) {
  StatusHub hub;
  const auto first = hub.Attach([] {
    CampaignStatus status;
    status.blocks_done = 1;
    return status;
  });
  const auto second = hub.Attach([] {
    CampaignStatus status;
    status.blocks_done = 2;
    return status;
  });
  CampaignStatus out;
  ASSERT_TRUE(hub.Snapshot(out));
  EXPECT_EQ(out.blocks_done, 2u);
}

TEST(CollectHistogramStatus, SkipsEmptyHistogramsAndSummarizesTheRest) {
  obs::Registry registry;
  registry.FindOrCreateHistogram("empty_seconds", {1.0});
  auto* h = registry.FindOrCreateHistogram("busy_seconds", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(1.5);

  const auto collected = CollectHistogramStatus(registry);
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0].name, "busy_seconds");
  EXPECT_EQ(collected[0].count, 2u);
  EXPECT_DOUBLE_EQ(collected[0].quantiles.p50, 1.0);
}

/// Every JSON object key in `json`. The renderer emits keys as
/// `"key":` and the only string values are [a-z0-9_] metric names, so
/// a quote scan is exact.
std::set<std::string> JsonKeys(const std::string& json) {
  std::set<std::string> keys;
  std::size_t pos = 0;
  while ((pos = json.find('"', pos)) != std::string::npos) {
    const auto end = json.find('"', pos + 1);
    if (end == std::string::npos) break;
    if (end + 1 < json.size() && json[end + 1] == ':') {
      keys.insert(json.substr(pos + 1, end - pos - 1));
    }
    pos = end + 1;
  }
  return keys;
}

TEST(RenderStatusJson, NonFiniteNumbersRenderAsNull) {
  CampaignStatus status;
  status.rounds_per_sec = std::nan("");
  const auto json = RenderStatusJson(status);
  EXPECT_NE(json.find("\"rounds_per_sec\":null"), std::string::npos);
  EXPECT_NE(json.find("\"attached\":true"), std::string::npos);
}

TEST(RenderStatusJson, KeySetIsIndependentOfShardCount) {
  CampaignStatus one;
  one.shards.resize(1);
  one.quantiles.resize(1);
  CampaignStatus eight;
  eight.shards.resize(8);
  for (std::size_t i = 0; i < eight.shards.size(); ++i) {
    eight.shards[i].worker = i;
  }
  eight.quantiles.resize(1);
  EXPECT_EQ(JsonKeys(RenderStatusJson(one)),
            JsonKeys(RenderStatusJson(eight)));
  EXPECT_NE(RenderStatusJson(eight).find("\"workers\":8"),
            std::string::npos);
}

/// Worker chain mirroring parallel_executor_test's: identically seeded
/// simulated transports so any worker count yields the same campaign.
class SimShardChain final : public ShardChain {
 public:
  SimShardChain(const sim::SimWorld& world, const faults::FaultPlan& plan)
      : transport_{world.MakeTransport(9)}, faulty_{*transport_, plan} {}

  net::Transport& transport() override { return faulty_; }
  report::ProbeAccounting accounting() const override {
    return faulty_.accounting();
  }

 private:
  std::unique_ptr<sim::SimTransport> transport_;
  faults::FaultyTransport faulty_;
};

/// Runs a campaign with a StatusHub attached and a poller thread
/// sampling /statusz JSON the whole time; returns the last snapshot.
std::string SampleLiveStatusJson(int workers, const std::string& tag) {
  sim::WorldConfig world_config;
  world_config.total_blocks = 24;
  world_config.seed = 0x57a757;
  const auto world = sim::SimWorld::Generate(world_config);

  std::vector<BlockTarget> targets;
  for (const auto& block : world.blocks()) {
    targets.push_back({block.spec.block, sim::EverActiveOctets(block.spec),
                       sim::TrueAvailability(block.spec, 13 * 3600)});
  }
  faults::FaultPlan plan;
  plan.iid_loss = 0.05;

  SupervisorConfig config;
  config.seed = 11;
  config.checkpoint_path = testing::TempDir() + "/status_" + tag + ".ck";
  std::remove(config.checkpoint_path.c_str());
  StatusHub hub;
  config.status = &hub;

  std::atomic<bool> done{false};
  std::string json;
  std::thread poller{[&] {
    while (!done.load(std::memory_order_relaxed)) {
      CampaignStatus status;
      if (hub.Snapshot(status)) json = RenderStatusJson(status);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }};

  ParallelConfig parallel;
  parallel.workers = workers;
  RunParallelCampaign(
      targets,
      [&](std::size_t) { return std::make_unique<SimShardChain>(world, plan); },
      160, config, parallel);
  done.store(true, std::memory_order_relaxed);
  poller.join();
  std::remove(config.checkpoint_path.c_str());
  return json;
}

TEST(StatusIntegration, LiveSchemaIsStableAcrossWorkerCounts) {
  const auto one = SampleLiveStatusJson(1, "w1");
  const auto eight = SampleLiveStatusJson(8, "w8");
  ASSERT_FALSE(one.empty()) << "poller never caught the 1-worker campaign";
  ASSERT_FALSE(eight.empty()) << "poller never caught the 8-worker run";
  EXPECT_EQ(JsonKeys(one), JsonKeys(eight));
  // The live section reflects the actual worker count.
  EXPECT_NE(eight.find("\"workers\":8"), std::string::npos) << eight;
  EXPECT_NE(one.find("\"workers\":1"), std::string::npos) << one;
  // Both runs saw the same campaign (the sim world expands
  // total_blocks into more measurement targets; the exact count only
  // has to agree across worker counts and be non-empty).
  const auto total_of = [](const std::string& json) {
    const auto pos = json.find("\"blocks_total\":");
    return pos == std::string::npos
               ? std::string{}
               : json.substr(pos, json.find(',', pos) - pos);
  };
  EXPECT_EQ(total_of(one), total_of(eight));
  EXPECT_NE(total_of(one), "\"blocks_total\":0") << one;
}

}  // namespace
}  // namespace sleepwalk::core
