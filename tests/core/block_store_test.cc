// The columnar BlockStore and the paper-scale store campaign
// (core/block_store.h, core/store_campaign.h): the batched estimator
// kernel must be bitwise identical to the scalar AvailabilityEstimator,
// v3 snapshots must round-trip byte-exactly and refuse hostile or
// mismatched files, and a killed store campaign must resume — at any
// worker count — to columns byte-identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sleepwalk/core/availability.h"
#include "sleepwalk/core/block_store.h"
#include "sleepwalk/core/checkpoint.h"
#include "sleepwalk/core/store_campaign.h"
#include "sleepwalk/storage/columnar.h"
#include "sleepwalk/storage/file.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk {
namespace {

using core::AvailabilityConfig;
using core::AvailabilityEstimator;
using core::AvailabilityState;
using core::BlockStore;
using core::BlockVerdict;
using core::RoundSample;
using core::StoreCampaignConfig;
using core::SyntheticRoundSample;
using storage::MemEnv;

TEST(BlockStore, BatchedKernelMatchesScalarEstimatorBitwise) {
  // 64 blocks, 500 rounds, deliberately varied priors. The SoA batched
  // loop must reproduce AvailabilityEstimator's doubles bit-for-bit —
  // same expressions, same order (the shared AvailabilityObserve body).
  constexpr std::size_t kBlocks = 64;
  constexpr std::int64_t kRounds = 500;
  AvailabilityConfig config;
  config.initial_deviation = 0.07;

  BlockStore store;
  store.Reset(kBlocks, config);
  std::vector<AvailabilityEstimator> scalars;
  for (std::size_t i = 0; i < kBlocks; ++i) {
    const double prior = 0.1 + 0.8 * static_cast<double>(i) / kBlocks;
    store.SeedBlock(i, static_cast<std::uint32_t>(i * 7), prior);
    scalars.emplace_back(prior, config);
  }

  std::vector<RoundSample> round(kBlocks);
  for (std::int64_t r = 0; r < kRounds; ++r) {
    for (std::size_t i = 0; i < kBlocks; ++i) {
      round[i] = SyntheticRoundSample(0xabc, static_cast<std::uint32_t>(i * 7),
                                      r);
      scalars[i].Observe(round[i].positives, round[i].total);
    }
    store.ObserveRound(0, kBlocks, round);
  }

  for (std::size_t i = 0; i < kBlocks; ++i) {
    const AvailabilityState state = store.ExportEstimator(i);
    const AvailabilityState expect = scalars[i].ExportState();
    // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the contract is bitwise.
    EXPECT_EQ(state.p_short, expect.p_short) << "block " << i;
    EXPECT_EQ(state.t_short, expect.t_short) << "block " << i;
    EXPECT_EQ(state.p_long, expect.p_long) << "block " << i;
    EXPECT_EQ(state.t_long, expect.t_long) << "block " << i;
    EXPECT_EQ(state.deviation, expect.deviation) << "block " << i;
    EXPECT_EQ(state.rounds, expect.rounds) << "block " << i;
    EXPECT_EQ(store.ShortTerm(i), scalars[i].ShortTerm()) << "block " << i;
    EXPECT_EQ(store.Operational(i), scalars[i].Operational()) << "block " << i;
  }
}

TEST(BlockStore, ScalarObserveMatchesBatchedRound) {
  AvailabilityConfig config;
  BlockStore batched;
  BlockStore scalar;
  batched.Reset(8, config);
  scalar.Reset(8, config);
  for (std::size_t i = 0; i < 8; ++i) {
    batched.SeedBlock(i, static_cast<std::uint32_t>(i), 0.5);
    scalar.SeedBlock(i, static_cast<std::uint32_t>(i), 0.5);
  }
  std::vector<RoundSample> round(8);
  for (std::int64_t r = 0; r < 50; ++r) {
    for (std::size_t i = 0; i < 8; ++i) {
      round[i] = SyntheticRoundSample(1, static_cast<std::uint32_t>(i), r);
      scalar.Observe(i, round[i].positives, round[i].total);
    }
    batched.ObserveRound(0, 8, round);
  }
  EXPECT_EQ(batched.Digest(), scalar.Digest());
}

TEST(BlockStore, RecordVerdictSetsFlagsAndColumns) {
  BlockStore store;
  store.Reset(4);
  BlockVerdict verdict;
  verdict.prefix_index = 1234;
  verdict.probed = true;
  verdict.quarantined = false;
  verdict.stationary = true;
  verdict.classification = 2;
  verdict.ever_active = 99;
  verdict.observed_days = 14;
  verdict.down_rounds = 3;
  verdict.mean_short = 0.625;
  verdict.final_operational = 0.5;
  verdict.mean_probes_per_round = 4.25;
  AvailabilityState estimator;
  estimator.p_short = 0.25;
  estimator.rounds = 77;
  store.RecordVerdict(2, verdict, estimator);

  EXPECT_EQ(store.prefix_index()[2], 1234u);
  EXPECT_EQ(store.flags()[2],
            core::kBlockFlagProbed | core::kBlockFlagStationary);
  EXPECT_EQ(store.classification()[2], 2);
  EXPECT_EQ(store.ever_active()[2], 99);
  EXPECT_EQ(store.observed_days()[2], 14);
  EXPECT_EQ(store.down_rounds()[2], 3);
  EXPECT_EQ(store.mean_short()[2], 0.625);
  EXPECT_EQ(store.final_operational()[2], 0.5);
  EXPECT_EQ(store.mean_probes_per_round()[2], 4.25);
  EXPECT_EQ(store.ExportEstimator(2).p_short, 0.25);
  EXPECT_EQ(store.ExportEstimator(2).rounds, 77);
  // Neighbours untouched.
  EXPECT_EQ(store.flags()[1], 0);
  EXPECT_EQ(store.prefix_index()[3], 0u);
}

TEST(BlockStore, SnapshotRoundTripsByteIdentically) {
  BlockStore store;
  store.Reset(300);
  std::vector<RoundSample> round(300);
  for (std::size_t i = 0; i < 300; ++i) {
    store.SeedBlock(i, static_cast<std::uint32_t>(i), 0.4);
  }
  for (std::int64_t r = 0; r < 40; ++r) {
    for (std::size_t i = 0; i < 300; ++i) {
      round[i] = SyntheticRoundSample(9, static_cast<std::uint32_t>(i), r);
    }
    store.ObserveRound(0, 300, round);
  }

  const auto image = store.EncodeSnapshot(0xf00d, 40, 2);
  EXPECT_EQ(image, store.EncodeSnapshot(0xf00d, 40, 2))
      << "snapshot encode must be deterministic";

  BlockStore restored;
  std::uint64_t rounds_done = 0;
  std::uint64_t checkpoints_written = 0;
  ASSERT_TRUE(restored
                  .DecodeSnapshot(image, 0xf00d, rounds_done,
                                  checkpoints_written)
                  .ok());
  EXPECT_EQ(rounds_done, 40u);
  EXPECT_EQ(checkpoints_written, 2u);
  EXPECT_EQ(restored.size(), 300u);
  EXPECT_EQ(restored.Digest(), store.Digest());
  EXPECT_EQ(restored.EncodeSnapshot(0xf00d, 40, 2), image);
}

TEST(BlockStore, SeriesSnapshotRoundTripsThroughWraparound) {
  // Rings mid-wraparound (60 rounds through 48-slot rings): the
  // snapshot must carry values, rounds, len, AND head so the restored
  // store replays CopySeriesOrdered identically.
  BlockStore store;
  store.Reset(40, {}, 48);
  std::vector<RoundSample> round(40);
  for (std::size_t i = 0; i < 40; ++i) {
    store.SeedBlock(i, static_cast<std::uint32_t>(i), 0.4);
  }
  for (std::int64_t r = 0; r < 60; ++r) {
    for (std::size_t i = 0; i < 40; ++i) {
      round[i] = SyntheticRoundSample(3, static_cast<std::uint32_t>(i), r);
    }
    store.ObserveRound(0, 40, round);
    store.RecordSeriesRound(0, 40, r);
  }

  const auto image = store.EncodeSnapshot(0xbeef, 60, 1);
  BlockStore restored;
  std::uint64_t rounds_done = 0;
  std::uint64_t checkpoints_written = 0;
  ASSERT_TRUE(
      restored.DecodeSnapshot(image, 0xbeef, rounds_done, checkpoints_written)
          .ok());
  EXPECT_EQ(restored.series_capacity(), 48);
  EXPECT_EQ(restored.Digest(), store.Digest());
  std::vector<ts::Observation> a;
  std::vector<ts::Observation> b;
  store.CopySeriesOrdered(17, a);
  restored.CopySeriesOrdered(17, b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].round, b[k].round) << "slot " << k;
    EXPECT_EQ(a[k].value, b[k].value) << "slot " << k;
  }
  EXPECT_EQ(restored.EncodeSnapshot(0xbeef, 60, 1), image);

  // Byte-flip coverage over the series columns too.
  for (std::size_t i = 0; i < image.size(); i += 97) {
    auto bent = image;
    bent[i] ^= 0x01;
    BlockStore scratch;
    EXPECT_FALSE(
        scratch.DecodeSnapshot(bent, 0xbeef, rounds_done, checkpoints_written)
            .ok())
        << "flipped byte " << i;
  }
}

TEST(BlockStore, LegacyTwoWordMetaSnapshotStillDecodes) {
  // A PR 9 snapshot carries META {rounds_done, checkpoints_written}
  // and no series columns. Forge one from a live store's column views
  // (ids are frozen file-format constants) and require today's decoder
  // to adopt it as an estimator-only store.
  BlockStore src;
  src.Reset(6);
  for (std::size_t i = 0; i < 6; ++i) {
    src.SeedBlock(i, static_cast<std::uint32_t>(100 + i), 0.3);
    src.Observe(i, 2, 5);
  }
  const std::uint64_t meta[2] = {1, 1};
  storage::ColumnarWriter writer("SLCK", core::kStoreSnapshotKind, 0x1e6a, 1);
  writer.AddTypedBorrowed<std::uint64_t>(1, meta);
  writer.AddTypedBorrowed(2, src.prefix_index());
  writer.AddTypedBorrowed(3, src.p_short());
  writer.AddTypedBorrowed(4, src.t_short());
  writer.AddTypedBorrowed(5, src.p_long());
  writer.AddTypedBorrowed(6, src.t_long());
  writer.AddTypedBorrowed(7, src.deviation());
  writer.AddTypedBorrowed(8, src.rounds());
  writer.AddTypedBorrowed(9, src.probes());
  writer.AddTypedBorrowed(10, src.positives());
  writer.AddTypedBorrowed(11, src.down_rounds());
  writer.AddTypedBorrowed(12, src.flags());
  writer.AddTypedBorrowed(13, src.classification());
  writer.AddTypedBorrowed(14, src.ever_active());
  writer.AddTypedBorrowed(15, src.observed_days());
  writer.AddTypedBorrowed(16, src.mean_short());
  writer.AddTypedBorrowed(17, src.final_operational());
  writer.AddTypedBorrowed(18, src.mean_probes_per_round());
  const auto legacy = writer.Finish();

  BlockStore restored;
  std::uint64_t rounds_done = 0;
  std::uint64_t checkpoints_written = 0;
  ASSERT_TRUE(
      restored.DecodeSnapshot(legacy, 0x1e6a, rounds_done, checkpoints_written)
          .ok());
  EXPECT_EQ(rounds_done, 1u);
  EXPECT_EQ(checkpoints_written, 1u);
  EXPECT_EQ(restored.series_capacity(), 0);
  EXPECT_EQ(restored.size(), 6u);
  EXPECT_EQ(restored.Digest(), src.Digest());
}

TEST(BlockStore, SnapshotRefusesWrongFingerprintAndKind) {
  BlockStore store;
  store.Reset(10);
  const auto image = store.EncodeSnapshot(111, 0, 0);

  BlockStore other;
  std::uint64_t rounds_done = 0;
  std::uint64_t checkpoints_written = 0;
  const auto mismatch =
      other.DecodeSnapshot(image, 222, rounds_done, checkpoints_written);
  EXPECT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.detail.find("fingerprint"), std::string::npos)
      << mismatch.ToString();

  // A v3 *checkpoint* (kind 1) must not parse as a store snapshot even
  // though it shares the SLCK magic.
  core::Checkpoint checkpoint;
  checkpoint.fingerprint = 111;
  const auto ckpt_image = core::EncodeCheckpointColumnar(checkpoint);
  const auto wrong_kind =
      other.DecodeSnapshot(ckpt_image, 111, rounds_done, checkpoints_written);
  EXPECT_FALSE(wrong_kind.ok());
  EXPECT_NE(wrong_kind.detail.find("kind"), std::string::npos)
      << wrong_kind.ToString();
}

TEST(BlockStore, EverySingleByteCorruptionOfSnapshotIsDetected) {
  BlockStore store;
  store.Reset(3);
  store.SeedBlock(0, 5, 0.5);
  store.Observe(0, 1, 4);
  const auto image = store.EncodeSnapshot(77, 1, 1);
  for (std::size_t i = 0; i < image.size(); ++i) {
    auto bent = image;
    bent[i] ^= 0x01;
    BlockStore scratch;
    std::uint64_t rounds_done = 0;
    std::uint64_t checkpoints_written = 0;
    EXPECT_FALSE(
        scratch.DecodeSnapshot(bent, 77, rounds_done, checkpoints_written)
            .ok())
        << "flipped byte " << i;
  }
}

StoreCampaignConfig ScaleConfig(storage::Env& env, const std::string& path) {
  StoreCampaignConfig config;
  config.n_blocks = 10'000;
  config.n_rounds = 60;
  config.seed = 0x9e1;
  config.checkpoint_path = path;
  config.checkpoint_every_rounds = 16;
  config.env = &env;
  return config;
}

TEST(StoreCampaign, WorkerCountIsInvisibleInTheColumns) {
  MemEnv env;
  std::uint64_t digest1 = 0;
  for (const int workers : {1, 3, 8}) {
    auto config = ScaleConfig(env, "");
    config.workers = workers;
    BlockStore store;
    const auto outcome = core::RunStoreCampaign(store, config);
    ASSERT_TRUE(outcome.error.empty()) << outcome.error;
    EXPECT_EQ(outcome.rounds_done, 60);
    if (workers == 1) {
      digest1 = outcome.digest;
    } else {
      EXPECT_EQ(outcome.digest, digest1) << "workers " << workers;
    }
  }
}

// The paper-scale durability claim, in miniature: kill a 10k-block
// campaign mid-run at a checkpoint boundary, resume at a DIFFERENT
// worker count, and demand the final snapshot be byte-identical to an
// uninterrupted run's.
TEST(StoreCampaign, KillAndResumeIsByteIdenticalAcrossWorkerCounts) {
  const std::string path = "/ckpt/store.slck";

  // Uninterrupted reference at 1 worker.
  MemEnv clean_env;
  auto clean_config = ScaleConfig(clean_env, path);
  clean_config.workers = 1;
  BlockStore clean_store;
  const auto clean = core::RunStoreCampaign(clean_store, clean_config);
  ASSERT_TRUE(clean.error.empty()) << clean.error;
  std::vector<std::uint8_t> clean_file;
  ASSERT_TRUE(clean_env.ReadAll(path, clean_file).ok());

  for (const int first_workers : {1, 8}) {
    for (const int second_workers : {1, 8}) {
      MemEnv env;
      auto config = ScaleConfig(env, path);
      config.workers = first_workers;
      config.stop_after_rounds = 30;  // killed at the round-32 boundary
      BlockStore first;
      const auto killed = core::RunStoreCampaign(first, config);
      ASSERT_TRUE(killed.error.empty()) << killed.error;
      EXPECT_TRUE(killed.stopped_early);
      EXPECT_LT(killed.rounds_done, 60);

      config.stop_after_rounds = 0;
      config.workers = second_workers;
      BlockStore second;
      const auto resumed = core::RunStoreCampaign(second, config);
      ASSERT_TRUE(resumed.error.empty()) << resumed.error;
      EXPECT_TRUE(resumed.resumed);
      EXPECT_EQ(resumed.rounds_done, 60);
      EXPECT_EQ(resumed.digest, clean.digest)
          << first_workers << " -> " << second_workers << " workers";

      std::vector<std::uint8_t> resumed_file;
      ASSERT_TRUE(env.ReadAll(path, resumed_file).ok());
      EXPECT_EQ(resumed_file == clean_file, true)
          << "final snapshot diverged after kill/resume ("
          << first_workers << " -> " << second_workers << " workers)";
    }
  }
}

// Same durability claim with the FULL pipeline: series rings recorded
// every round and the classify sweep run before the final checkpoint.
// The resumed run must classify, and its snapshot — verdict columns
// and rings included — must match the uninterrupted run's bytes.
TEST(StoreCampaign, KillAndResumeWithSeriesAndClassifyIsByteIdentical) {
  const std::string path = "/ckpt/classify.slck";
  const auto configure = [&path](storage::Env& env) {
    StoreCampaignConfig config;
    config.n_blocks = 600;
    config.n_rounds = 500;  // ring keeps ~3 days; >= 2 survive the trim
    config.seed = 0xc1a5;
    config.checkpoint_path = path;
    config.checkpoint_every_rounds = 128;
    config.env = &env;
    config.series_capacity = 400;
    config.classify = true;
    return config;
  };

  MemEnv clean_env;
  auto clean_config = configure(clean_env);
  clean_config.workers = 1;
  BlockStore clean_store;
  const auto clean = core::RunStoreCampaign(clean_store, clean_config);
  ASSERT_TRUE(clean.error.empty()) << clean.error;
  EXPECT_EQ(clean.analyze.analyzed, 600u);
  EXPECT_EQ(clean.analyze.classified, 600u);
  EXPECT_GT(clean.analyze.diurnal, 0u);
  std::vector<std::uint8_t> clean_file;
  ASSERT_TRUE(clean_env.ReadAll(path, clean_file).ok());

  MemEnv env;
  auto config = configure(env);
  config.workers = 8;
  config.stop_after_rounds = 150;  // killed before any classification
  BlockStore first;
  const auto killed = core::RunStoreCampaign(first, config);
  ASSERT_TRUE(killed.error.empty()) << killed.error;
  EXPECT_TRUE(killed.stopped_early);
  EXPECT_EQ(killed.analyze.classified, 0u);

  config.stop_after_rounds = 0;
  config.workers = 3;
  BlockStore second;
  const auto resumed = core::RunStoreCampaign(second, config);
  ASSERT_TRUE(resumed.error.empty()) << resumed.error;
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.analyze.classified, 600u);
  EXPECT_EQ(resumed.digest, clean.digest);

  std::vector<std::uint8_t> resumed_file;
  ASSERT_TRUE(env.ReadAll(path, resumed_file).ok());
  EXPECT_EQ(resumed_file == clean_file, true)
      << "final snapshot (with verdicts + rings) diverged after kill/resume";
}

TEST(StoreCampaign, ForeignSnapshotIsIgnoredOnResume) {
  const std::string path = "/ckpt/store.slck";
  MemEnv env;

  // Leave a snapshot from a DIFFERENT campaign identity at the path.
  auto foreign = ScaleConfig(env, path);
  foreign.n_blocks = 500;
  foreign.n_rounds = 10;
  foreign.seed = 0xdead;
  BlockStore foreign_store;
  ASSERT_TRUE(core::RunStoreCampaign(foreign_store, foreign).error.empty());

  auto config = ScaleConfig(env, path);
  config.n_blocks = 500;
  config.n_rounds = 10;
  BlockStore store;
  const auto outcome = core::RunStoreCampaign(store, config);
  ASSERT_TRUE(outcome.error.empty()) << outcome.error;
  EXPECT_FALSE(outcome.resumed)
      << "a fingerprint-mismatched snapshot must not be adopted";
  EXPECT_EQ(outcome.rounds_done, 10);
}

}  // namespace
}  // namespace sleepwalk
