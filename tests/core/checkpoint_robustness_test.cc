// SLCK v2 robustness: every single-byte corruption and every truncation
// of a checkpoint file must be detected; the CheckpointStore must
// self-heal from retained generations; mixed-version splices must be
// refused; v1 files must still read.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sleepwalk/core/checkpoint.h"
#include "sleepwalk/core/supervisor.h"
#include "sleepwalk/net/checksum.h"
#include "sleepwalk/sim/world.h"
#include "sleepwalk/storage/bytes.h"
#include "sleepwalk/storage/file.h"

namespace sleepwalk {
namespace {

constexpr char kPath[] = "/campaign/ck.slck";

sim::SimWorld SmallWorld() {
  sim::WorldConfig config;
  config.total_blocks = 8;
  config.seed = 0xc0ffee;
  return sim::SimWorld::Generate(config);
}

std::vector<core::BlockTarget> TargetsOf(const sim::SimWorld& world) {
  std::vector<core::BlockTarget> targets;
  for (const auto& block : world.blocks()) {
    targets.push_back({block.spec.block, sim::EverActiveOctets(block.spec),
                       sim::TrueAvailability(block.spec, 13 * 3600)});
  }
  return targets;
}

core::SupervisorConfig ConfigFor(storage::Env& env, int keep = 3) {
  core::SupervisorConfig config;
  config.checkpoint_path = kPath;
  config.checkpoint_keep = keep;
  // This suite probes the v2 row format specifically (v3 containers get
  // the same treatment in checkpoint_columnar_test.cc).
  config.checkpoint_format = core::kCheckpointVersion;
  config.env = &env;
  return config;
}

core::CampaignOutcome RunOnce(const sim::SimWorld& world, storage::Env& env,
                              int keep = 3) {
  auto transport = world.MakeTransport(3);
  return core::RunResilientCampaign(TargetsOf(world), *transport, 30,
                                    ConfigFor(env, keep));
}

std::vector<std::uint8_t> FileBytes(storage::Env& env,
                                    const std::string& path) {
  std::vector<std::uint8_t> bytes;
  const auto error = env.ReadAll(path, bytes);
  EXPECT_TRUE(error.ok()) << error.ToString();
  return bytes;
}

/// Retained generation files (names) under the campaign directory.
std::vector<std::string> GenerationFiles(storage::Env& env) {
  std::vector<std::string> names;
  for (const auto& name : env.List("/campaign")) {
    if (name.find(".slck.g") != std::string::npos) names.push_back(name);
  }
  return names;
}

void PatchU32(std::vector<std::uint8_t>& bytes, std::size_t offset,
              std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    bytes[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
}

TEST(CheckpointRobustness, DecodeReencodeIsByteIdentical) {
  storage::MemEnv env;
  const auto outcome = RunOnce(SmallWorld(), env);
  ASSERT_GT(outcome.stats.checkpoints_written, 0u);

  const auto bytes = FileBytes(env, kPath);
  core::CheckpointLoadReport report;
  const auto checkpoint = core::DecodeCheckpoint(bytes, &report);
  ASSERT_TRUE(checkpoint.has_value()) << report.detail;
  EXPECT_EQ(report.version, core::kCheckpointVersion);
  EXPECT_EQ(report.corrupt_sections, 0);
  EXPECT_EQ(report.generation, checkpoint->stats.checkpoints_written);
  EXPECT_EQ(core::EncodeCheckpoint(*checkpoint), bytes);
}

TEST(CheckpointRobustness, EverySingleByteCorruptionIsDetected) {
  storage::MemEnv env;
  RunOnce(SmallWorld(), env);
  const auto bytes = FileBytes(env, kPath);
  ASSERT_FALSE(bytes.empty());

  auto corrupted = bytes;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    corrupted[i] = bytes[i] ^ 0xA5;
    core::CheckpointLoadReport report;
    EXPECT_FALSE(core::DecodeCheckpoint(corrupted, &report).has_value())
        << "flip at byte " << i << " went undetected";
    EXPECT_TRUE(report.bad_magic || report.version_refused ||
                report.corrupt_sections > 0)
        << "flip at byte " << i << " reported nothing";
    corrupted[i] = bytes[i];
  }
}

TEST(CheckpointRobustness, EveryTruncationIsDetected) {
  storage::MemEnv env;
  RunOnce(SmallWorld(), env);
  const auto bytes = FileBytes(env, kPath);
  ASSERT_FALSE(bytes.empty());

  for (std::size_t length = 0; length < bytes.size(); ++length) {
    const std::span<const std::uint8_t> prefix{bytes.data(), length};
    EXPECT_FALSE(core::DecodeCheckpoint(prefix).has_value())
        << "truncation to " << length << " bytes went undetected";
  }
}

TEST(CheckpointRobustness, MixedVersionMetaPayloadIsRefused) {
  storage::MemEnv env;
  RunOnce(SmallWorld(), env);
  auto bytes = FileBytes(env, kPath);

  // Splice: rewrite the META payload's format version to 1 and fix the
  // section CRC so only the version check can object. Layout: magic(4) +
  // header(24) + header_crc(4), then META's frame id(4) + len(8) + crc(4).
  constexpr std::size_t kFrame = 4 + 24 + 4;
  constexpr std::size_t kPayload = kFrame + 4 + 8 + 4;
  std::uint64_t meta_len = 0;
  for (int i = 0; i < 8; ++i) {
    meta_len |= static_cast<std::uint64_t>(bytes[kFrame + 4 + i]) << (8 * i);
  }
  ASSERT_LE(kPayload + meta_len, bytes.size());
  PatchU32(bytes, kPayload, 1);  // META format version := 1
  PatchU32(bytes, kFrame + 12,
           net::Crc32cOf(std::span{bytes.data() + kPayload, meta_len}));

  core::CheckpointLoadReport report;
  EXPECT_FALSE(core::DecodeCheckpoint(bytes, &report).has_value());
  EXPECT_TRUE(report.version_refused);
  EXPECT_FALSE(report.bad_magic);
}

TEST(CheckpointRobustness, CorruptPrimaryHealsFromNewestGeneration) {
  storage::MemEnv env;
  const auto world = SmallWorld();
  const auto baseline = RunOnce(world, env);
  ASSERT_FALSE(baseline.resumed);

  // Damage the primary file; the newest retained generation holds the
  // same (final) checkpoint, so the resume is still idempotent.
  auto bytes = FileBytes(env, kPath);
  bytes[bytes.size() / 2] ^= 0x01;
  ASSERT_TRUE(storage::AtomicWrite(env, kPath, bytes).ok());

  const auto healed = RunOnce(world, env);
  EXPECT_TRUE(healed.resumed);
  EXPECT_EQ(healed.recovery.recoveries, 1u);
  EXPECT_EQ(healed.recovery.generations_discarded, 1u);
  EXPECT_GE(healed.recovery.corrupt_sections, 1u);
  // The damaged file was quarantined for post-mortem.
  EXPECT_TRUE(env.Exists(std::string{kPath} + ".corrupt"));
  ASSERT_EQ(healed.result.analyses.size(), baseline.result.analyses.size());
  for (std::size_t i = 0; i < baseline.result.analyses.size(); ++i) {
    EXPECT_EQ(baseline.result.analyses[i].short_series.values,
              healed.result.analyses[i].short_series.values);
  }
}

TEST(CheckpointRobustness, WalksGenerationsNewestFirstPastMultipleCorrupt) {
  storage::MemEnv env;
  const auto world = SmallWorld();
  const auto baseline = RunOnce(world, env);

  // Damage the primary AND the newest generation: recovery must land on
  // the second-newest, which is one block short of final — the resumed
  // campaign redoes that block and still matches the baseline.
  auto generations = GenerationFiles(env);
  ASSERT_GE(generations.size(), 2u);
  const std::string newest = "/campaign/" + generations.back();
  for (const auto& victim : {std::string{kPath}, newest}) {
    auto bytes = FileBytes(env, victim);
    bytes[bytes.size() - 1] ^= 0x80;
    ASSERT_TRUE(storage::AtomicWrite(env, victim, bytes).ok());
  }

  const auto healed = RunOnce(world, env);
  EXPECT_TRUE(healed.resumed);
  EXPECT_EQ(healed.recovery.recoveries, 1u);
  EXPECT_EQ(healed.recovery.generations_discarded, 2u);
  ASSERT_EQ(healed.result.analyses.size(), baseline.result.analyses.size());
  for (std::size_t i = 0; i < baseline.result.analyses.size(); ++i) {
    EXPECT_EQ(baseline.result.analyses[i].short_series.values,
              healed.result.analyses[i].short_series.values);
  }
}

TEST(CheckpointRobustness, AllCopiesCorruptMeansFreshStart) {
  storage::MemEnv env;
  const auto world = SmallWorld();
  const auto baseline = RunOnce(world, env);

  std::vector<std::string> victims{kPath};
  for (const auto& name : GenerationFiles(env)) {
    victims.push_back("/campaign/" + name);
  }
  for (const auto& victim : victims) {
    auto bytes = FileBytes(env, victim);
    bytes[10] ^= 0xFF;
    ASSERT_TRUE(storage::AtomicWrite(env, victim, bytes).ok());
  }

  const auto fresh = RunOnce(world, env);
  EXPECT_FALSE(fresh.resumed);
  EXPECT_EQ(fresh.recovery.recoveries, 0u);
  EXPECT_EQ(fresh.recovery.generations_discarded, victims.size());
  ASSERT_EQ(fresh.result.analyses.size(), baseline.result.analyses.size());
  for (std::size_t i = 0; i < baseline.result.analyses.size(); ++i) {
    EXPECT_EQ(baseline.result.analyses[i].short_series.values,
              fresh.result.analyses[i].short_series.values);
  }
}

TEST(CheckpointRobustness, KeepKRetainsExactlyTheNewestGenerations) {
  storage::MemEnv env;
  const auto outcome = RunOnce(SmallWorld(), env, /*keep=*/3);
  const auto written = outcome.stats.checkpoints_written;
  ASSERT_GT(written, 3u);

  const auto generations = GenerationFiles(env);
  ASSERT_EQ(generations.size(), 3u);
  // Exactly generations written-2 .. written survive the pruning, and
  // each one still decodes.
  for (std::uint64_t gen = written - 2; gen <= written; ++gen) {
    const std::string path =
        std::string{kPath} + ".g" + std::to_string(gen);
    ASSERT_TRUE(env.Exists(path)) << path;
    EXPECT_TRUE(core::ReadCheckpoint(env, path).has_value()) << path;
  }
}

TEST(CheckpointRobustness, KeepOneDisablesRotation) {
  storage::MemEnv env;
  RunOnce(SmallWorld(), env, /*keep=*/1);
  EXPECT_TRUE(env.Exists(kPath));
  EXPECT_TRUE(GenerationFiles(env).empty());
}

TEST(CheckpointRobustness, MissingPrimaryDiscardsStaleGenerations) {
  storage::MemEnv env;
  const auto world = SmallWorld();
  RunOnce(world, env);
  ASSERT_FALSE(GenerationFiles(env).empty());

  // Deleting the primary declares the campaign fresh; stale generations
  // must not resurrect it behind the caller's back.
  ASSERT_TRUE(env.Remove(kPath).ok());
  const auto fresh = RunOnce(world, env);
  EXPECT_FALSE(fresh.resumed);
  EXPECT_EQ(fresh.recovery.recoveries, 0u);
}

TEST(CheckpointRobustness, FingerprintMismatchIsSilentlySkipped) {
  storage::MemEnv env;
  RunOnce(SmallWorld(), env);
  core::CheckpointStore store{env, kPath, 3};
  core::RecoveryEvents events;
  EXPECT_FALSE(store.Load(0xdeadbeef, events).has_value());
  EXPECT_EQ(events.recoveries, 0u);
  EXPECT_EQ(events.generations_discarded, 0u);
  // The intact-but-foreign file was not quarantined.
  EXPECT_TRUE(env.Exists(kPath));
  EXPECT_FALSE(env.Exists(std::string{kPath} + ".corrupt"));
}

TEST(CheckpointRobustness, V1FilesStillRead) {
  storage::ByteWriter out;
  const char magic[4] = {'S', 'L', 'C', 'K'};
  out.PutBytes(std::span{reinterpret_cast<const std::uint8_t*>(magic), 4});
  out.Put(std::uint32_t{1});        // version
  out.Put(std::uint64_t{0xfeed});   // fingerprint
  out.Put(std::int64_t{3});         // counts.strict
  out.Put(std::int64_t{1});         // counts.relaxed
  out.Put(std::int64_t{2});         // counts.non_diurnal
  out.Put(std::int64_t{0});         // counts.skipped
  out.Put(std::uint64_t{10});       // probes.attempts
  out.Put(std::uint64_t{1});        // probes.errors
  out.Put(std::uint64_t{7});        // probes.answered
  out.Put(std::uint64_t{2});        // probes.lost
  out.Put(std::uint64_t{0});        // probes.rate_limited
  out.Put(std::uint64_t{0});        // probes.unreachable
  out.Put(std::uint64_t{40});       // rounds_attempted
  out.Put(std::uint64_t{0});        // rounds_failed
  out.Put(std::uint64_t{0});        // rounds_gapped
  out.Put(std::uint64_t{0});        // retries
  out.Put(double{0.0});             // backoff_seconds
  out.Put(std::uint64_t{0});        // forced_restarts
  out.Put(std::uint64_t{0});        // quarantined_blocks
  out.Put(std::uint64_t{7});        // checkpoints_written
  out.Put(std::uint8_t{1});         // resumed flag (v1 persisted it)
  out.Put(std::uint64_t{0});        // completed count
  out.Put(std::uint64_t{0});        // quarantined count
  out.Put(std::uint64_t{6});        // next_block
  out.Put(std::uint8_t{0});         // has_inflight
  out.Put(std::uint64_t{0});        // transport bytes
  const auto bytes = out.Take();

  core::CheckpointLoadReport report;
  const auto checkpoint = core::DecodeCheckpoint(bytes, &report);
  ASSERT_TRUE(checkpoint.has_value()) << report.detail;
  EXPECT_EQ(report.version, 1u);
  EXPECT_EQ(report.generation, 7u);
  EXPECT_EQ(checkpoint->fingerprint, 0xfeedu);
  EXPECT_EQ(checkpoint->counts.strict, 3);
  EXPECT_EQ(checkpoint->counts.non_diurnal, 2);
  EXPECT_EQ(checkpoint->stats.checkpoints_written, 7u);
  EXPECT_EQ(checkpoint->next_block, 6u);
  EXPECT_TRUE(checkpoint->stats.resumed_from_checkpoint);
  EXPECT_FALSE(checkpoint->has_inflight);

  // Truncated v1 is still a detected failure, not UB.
  const std::span<const std::uint8_t> truncated{bytes.data(),
                                                bytes.size() - 9};
  core::CheckpointLoadReport bad;
  EXPECT_FALSE(core::DecodeCheckpoint(truncated, &bad).has_value());
  EXPECT_GE(bad.corrupt_sections, 1);
}

}  // namespace
}  // namespace sleepwalk
