// Parameterized sweeps over the availability estimator's configuration
// space: the paper's gains (0.1 / 0.01) are one point; these tests pin
// down the qualitative tradeoffs that justify them.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "sleepwalk/core/availability.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::core {
namespace {

// Simulated Trinocular round at availability `a`.
std::pair<int, int> Round(double a, Rng& rng) {
  int probes = 0;
  while (probes < 15) {
    ++probes;
    if (rng.NextBool(a)) return {1, probes};
  }
  return {0, probes};
}

// Sweep over (alpha_short, true availability).
class AlphaSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(AlphaSweep, ConvergesUnbiasedAtAnyGain) {
  const auto [alpha, true_a] = GetParam();
  AvailabilityConfig config;
  config.alpha_short = alpha;
  AvailabilityEstimator estimator{0.5, config};
  Rng rng{static_cast<std::uint64_t>(alpha * 1e4) ^
          static_cast<std::uint64_t>(true_a * 1e3)};
  // Long-run mean of the short-term estimate.
  double sum = 0.0;
  const int warmup = 2000;
  const int rounds = 20000;
  for (int i = 0; i < rounds; ++i) {
    const auto [p, t] = Round(true_a, rng);
    estimator.Observe(p, t);
    if (i >= warmup) sum += estimator.ShortTerm();
  }
  const double mean = sum / (rounds - warmup);
  EXPECT_NEAR(mean, true_a, 0.05)
      << "alpha " << alpha << " A " << true_a;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AlphaSweep,
    ::testing::Combine(::testing::Values(0.02, 0.05, 0.1, 0.3),
                       ::testing::Values(0.25, 0.5, 0.8)),
    [](const auto& info) {
      return "a" + std::to_string(static_cast<int>(
                       std::get<0>(info.param) * 100)) +
             "_A" + std::to_string(static_cast<int>(
                        std::get<1>(info.param) * 100));
    });

// Higher gain => faster adaptation but more jitter: the fundamental
// EWMA tradeoff the paper navigates with two separate gains.
TEST(GainTradeoff, FastGainAdaptsFasterButJittersMore) {
  const double before = 0.9;
  const double after = 0.3;
  const auto measure = [&](double alpha) {
    AvailabilityConfig config;
    config.alpha_short = alpha;
    AvailabilityEstimator estimator{before, config};
    Rng rng{0x6a17 + static_cast<std::uint64_t>(alpha * 1000)};
    // Step change at round 0: count rounds until within 0.1 of `after`.
    int adaptation_rounds = -1;
    std::vector<double> steady;
    for (int i = 0; i < 4000; ++i) {
      const auto [p, t] = Round(after, rng);
      estimator.Observe(p, t);
      if (adaptation_rounds < 0 &&
          std::fabs(estimator.ShortTerm() - after) < 0.1) {
        adaptation_rounds = i;
      }
      if (i > 2000) steady.push_back(estimator.ShortTerm());
    }
    double variance = 0.0;
    double mean = 0.0;
    for (const double v : steady) mean += v;
    mean /= static_cast<double>(steady.size());
    for (const double v : steady) variance += (v - mean) * (v - mean);
    variance /= static_cast<double>(steady.size());
    return std::pair{adaptation_rounds, variance};
  };

  const auto [fast_rounds, fast_var] = measure(0.1);
  const auto [slow_rounds, slow_var] = measure(0.01);
  EXPECT_GE(fast_rounds, 0);
  EXPECT_GE(slow_rounds, 0);
  EXPECT_LT(fast_rounds, slow_rounds) << "alpha=0.1 must adapt faster";
  EXPECT_GT(fast_var, slow_var) << "alpha=0.1 must jitter more";
}

// The operational estimate's conservatism must hold across the whole
// availability range, not just the default config.
class OperationalSweep : public ::testing::TestWithParam<double> {};

TEST_P(OperationalSweep, RarelyOverestimates) {
  const double true_a = GetParam();
  AvailabilityEstimator estimator{true_a};
  Rng rng{static_cast<std::uint64_t>(true_a * 7919)};
  int over = 0;
  int total = 0;
  for (int i = 0; i < 8000; ++i) {
    const auto [p, t] = Round(true_a, rng);
    estimator.Observe(p, t);
    if (i >= 1000 && true_a > 0.12) {  // skip the floor regime
      ++total;
      if (estimator.Operational() > true_a) ++over;
    }
  }
  if (total > 0) {
    EXPECT_LT(static_cast<double>(over) / total, 0.10)
        << "A = " << true_a;
  }
}

INSTANTIATE_TEST_SUITE_P(TrueA, OperationalSweep,
                         ::testing::Values(0.15, 0.3, 0.45, 0.6, 0.75,
                                           0.9),
                         [](const auto& info) {
                           return "A" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

}  // namespace
}  // namespace sleepwalk::core
