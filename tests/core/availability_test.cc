#include "sleepwalk/core/availability.h"

#include <gtest/gtest.h>

#include <vector>

#include "sleepwalk/util/rng.h"

namespace sleepwalk::core {
namespace {

TEST(AvailabilityEstimator, InitialValueSeedsEstimates) {
  AvailabilityEstimator estimator{0.7};
  EXPECT_NEAR(estimator.ShortTerm(), 0.7, 1e-12);
  EXPECT_NEAR(estimator.LongTerm(), 0.7, 1e-12);
  EXPECT_EQ(estimator.rounds_observed(), 0);
}

TEST(AvailabilityEstimator, IgnoresEmptyRounds) {
  AvailabilityEstimator estimator{0.5};
  estimator.Observe(0, 0);
  estimator.Observe(1, -3);
  EXPECT_EQ(estimator.rounds_observed(), 0);
  EXPECT_NEAR(estimator.ShortTerm(), 0.5, 1e-12);
}

TEST(AvailabilityEstimator, ShortTermAdaptsFasterThanLongTerm) {
  AvailabilityEstimator estimator{0.2};
  // Feed consistent full-availability rounds.
  for (int i = 0; i < 30; ++i) estimator.Observe(1, 1);
  EXPECT_GT(estimator.ShortTerm(), 0.9);
  EXPECT_LT(estimator.LongTerm(), estimator.ShortTerm());
  EXPECT_GT(estimator.LongTerm(), 0.2);
}

TEST(AvailabilityEstimator, ConvergesToStationaryRatio) {
  // Rounds alternating (1 of 2) and (1 of 2): A = 0.5.
  AvailabilityEstimator estimator{0.9};
  for (int i = 0; i < 500; ++i) estimator.Observe(1, 2);
  EXPECT_NEAR(estimator.ShortTerm(), 0.5, 1e-6);
  EXPECT_NEAR(estimator.LongTerm(), 0.5, 0.02);
}

// The core statistical property (paper §2.1.2): under Trinocular's
// stop-on-first-positive sampling, E[p]/E[t] equals the true A while
// E[p/t] exceeds it. The separate-EWMA estimator is therefore unbiased
// where the ratio-EWMA variant overestimates.
class SamplingBias : public ::testing::TestWithParam<double> {};

TEST_P(SamplingBias, SeparateTrackingIsUnbiasedRatioIsNot) {
  const double true_a = GetParam();
  Rng rng{0xb1a5};
  AvailabilityEstimator separate{true_a};
  RatioEwmaEstimator ratio{true_a, 0.01};

  for (int round = 0; round < 30000; ++round) {
    // Trinocular-style round: probe until positive or 15 probes.
    int probes = 0;
    int positives = 0;
    while (probes < 15) {
      ++probes;
      if (rng.NextBool(true_a)) {
        positives = 1;
        break;
      }
    }
    separate.Observe(positives, probes);
    ratio.Observe(positives, probes);
  }

  EXPECT_NEAR(separate.LongTerm(), true_a, 0.02)
      << "separate p/t tracking must be unbiased";
  if (true_a > 0.15 && true_a < 0.9) {
    EXPECT_GT(ratio.Value(), true_a + 0.03)
        << "EWMA of the ratio must overestimate (the paper's A_12w bug)";
  }
}

INSTANTIATE_TEST_SUITE_P(TrueAvailability, SamplingBias,
                         ::testing::Values(0.2, 0.35, 0.5, 0.735, 0.9),
                         [](const auto& info) {
                           return "A" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

TEST(AvailabilityEstimator, OperationalStaysBelowTrueValue) {
  // Paper Fig 5: A-hat_o underestimates ~94% of rounds once warmed up.
  const double true_a = 0.6;
  Rng rng{0x0b5e};
  AvailabilityEstimator estimator{true_a};
  int under = 0;
  int total = 0;
  for (int round = 0; round < 5000; ++round) {
    int probes = 0;
    int positives = 0;
    while (probes < 15) {
      ++probes;
      if (rng.NextBool(true_a)) {
        positives = 1;
        break;
      }
    }
    estimator.Observe(positives, probes);
    if (round >= 500) {  // skip warm-up
      ++total;
      if (estimator.Operational() < true_a) ++under;
    }
  }
  EXPECT_GT(static_cast<double>(under) / total, 0.90);
}

TEST(AvailabilityEstimator, OperationalFloorAtTenPercent) {
  AvailabilityEstimator estimator{0.05};
  for (int i = 0; i < 200; ++i) estimator.Observe(0, 15);
  EXPECT_DOUBLE_EQ(estimator.Operational(), 0.1);
}

TEST(AvailabilityEstimator, OperationalUsesDeviationMargin) {
  AvailabilityConfig config;
  config.initial_deviation = 0.2;
  AvailabilityEstimator estimator{0.8, config};
  // A-hat_o = max(0.8 - 0.5 * 0.2, 0.1) = 0.7 before any observation.
  EXPECT_NEAR(estimator.Operational(), 0.7, 1e-12);
}

TEST(AvailabilityEstimator, RecoversFromBadInitialEstimate) {
  // "Our initial estimates ... may be off significantly if block usage
  //  has changed."
  AvailabilityEstimator estimator{0.95};
  Rng rng{3};
  const double true_a = 0.3;
  for (int round = 0; round < 2000; ++round) {
    int probes = 0;
    int positives = 0;
    while (probes < 15) {
      ++probes;
      if (rng.NextBool(true_a)) {
        positives = 1;
        break;
      }
    }
    estimator.Observe(positives, probes);
  }
  EXPECT_NEAR(estimator.LongTerm(), true_a, 0.05);
  EXPECT_LT(estimator.Operational(), true_a + 0.02);
}

TEST(AvailabilityEstimator, TracksOutageDrop) {
  AvailabilityEstimator estimator{0.8};
  for (int i = 0; i < 100; ++i) estimator.Observe(1, 1);
  const double before = estimator.ShortTerm();
  // Outage: all-negative rounds.
  for (int i = 0; i < 20; ++i) estimator.Observe(0, 15);
  EXPECT_LT(estimator.ShortTerm(), before / 3.0);
}

TEST(AvailabilityEstimator, ShortTermJitterIsBounded) {
  // Quantized observations make A-hat_s jittery but it must stay in
  // [0, 1].
  AvailabilityEstimator estimator{0.5};
  Rng rng{77};
  for (int i = 0; i < 1000; ++i) {
    const int t = 1 + static_cast<int>(rng.NextBelow(15));
    const int p = rng.NextBool(0.5) ? 1 : 0;
    estimator.Observe(p, t);
    EXPECT_GE(estimator.ShortTerm(), 0.0);
    EXPECT_LE(estimator.ShortTerm(), 1.0);
  }
}

TEST(RatioEwmaEstimator, TracksCleanRatio) {
  RatioEwmaEstimator estimator{0.0, 0.1};
  for (int i = 0; i < 200; ++i) estimator.Observe(3, 4);
  EXPECT_NEAR(estimator.Value(), 0.75, 1e-6);
}

}  // namespace
}  // namespace sleepwalk::core
