// SLPW v3 columnar datasets (core/dataset_columnar.h): the format must
// round-trip losslessly, re-analyze bitwise identically to the framed
// v2 layout, map zero-copy through storage::Env, and fail closed on
// every forged byte, truncation, wrong kind, and hostile offset table.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sleepwalk/core/dataset.h"
#include "sleepwalk/core/dataset_columnar.h"
#include "sleepwalk/core/campaign_ledger.h"
#include "sleepwalk/core/pipeline.h"
#include "sleepwalk/storage/columnar.h"
#include "sleepwalk/storage/file.h"

namespace sleepwalk::core {
namespace {

// Mirror of the file-format column ids in dataset_columnar.cc (frozen
// constants; the hostile-file tests below forge containers with them).
constexpr std::uint32_t kColMeta = 1;
constexpr std::uint32_t kColPrefix = 2;
constexpr std::uint32_t kColEverActive = 3;
constexpr std::uint32_t kColProbed = 4;
constexpr std::uint32_t kColFirstRound = 5;
constexpr std::uint32_t kColCount = 6;
constexpr std::uint32_t kColOffset = 7;
constexpr std::uint32_t kColValues = 8;

// A classifiable block: >= 2 whole days of 660-second rounds with a
// clear daily cycle, plus per-block phase/jitter so blocks differ.
BlockAnalysis MakeAnalysis(std::uint32_t index, int samples,
                           bool diurnal) {
  BlockAnalysis analysis;
  analysis.block = net::Prefix24::FromIndex(index);
  analysis.ever_active = 20 + static_cast<int>(index % 50);
  analysis.probed = true;
  analysis.short_series.first_round = 2;
  analysis.short_series.values.resize(static_cast<std::size_t>(samples));
  constexpr double kRoundsPerDay = 86400.0 / 660.0;
  for (int k = 0; k < samples; ++k) {
    const double phase =
        2.0 * 3.14159265358979323846 *
        (static_cast<double>(k) / kRoundsPerDay + 0.01 * index);
    const double jitter =
        0.02 * static_cast<double>((k * 37 + static_cast<int>(index)) % 100) /
        100.0;
    analysis.short_series.values[static_cast<std::size_t>(k)] =
        diurnal ? 0.55 + 0.3 * std::sin(phase) + jitter : 0.6 + jitter;
  }
  return analysis;
}

std::vector<BlockAnalysis> TestAnalyses() {
  std::vector<BlockAnalysis> analyses;
  analyses.push_back(MakeAnalysis(100, 280, true));
  analyses.push_back(MakeAnalysis(207, 290, false));
  analyses.push_back(MakeAnalysis(314, 280, true));
  // Too short to classify, and a policy-skipped block with no series.
  analyses.push_back(MakeAnalysis(421, 10, false));
  BlockAnalysis skipped;
  skipped.block = net::Prefix24::FromIndex(528);
  skipped.ever_active = 3;
  skipped.probed = false;
  analyses.push_back(skipped);
  return analyses;
}

TEST(DatasetColumnar, RoundTripMaterializesTheV2DatasetExactly) {
  const auto analyses = TestAnalyses();
  const auto v3 = EncodeDatasetColumnar(analyses, 660, 4242);
  const auto v2 = EncodeDataset(analyses, 660, 4242);

  ColumnarDatasetView view;
  ASSERT_TRUE(ParseDatasetColumnar(v3, view).ok());
  ASSERT_EQ(view.size(), analyses.size());
  EXPECT_EQ(view.round_seconds, 660);
  EXPECT_EQ(view.epoch_sec, 4242);

  const auto from_v3 = MaterializeDataset(view);
  const auto from_v2 = DecodeDataset(v2);
  ASSERT_TRUE(from_v2.has_value());
  ASSERT_EQ(from_v3.blocks.size(), from_v2->blocks.size());
  EXPECT_EQ(from_v3.round_seconds, from_v2->round_seconds);
  EXPECT_EQ(from_v3.epoch_sec, from_v2->epoch_sec);
  for (std::size_t i = 0; i < from_v3.blocks.size(); ++i) {
    const auto& a = from_v3.blocks[i];
    const auto& b = from_v2->blocks[i];
    EXPECT_EQ(a.block.Index(), b.block.Index()) << "block " << i;
    EXPECT_EQ(a.ever_active, b.ever_active) << "block " << i;
    EXPECT_EQ(a.probed, b.probed) << "block " << i;
    EXPECT_EQ(a.series.first_round, b.series.first_round) << "block " << i;
    ASSERT_EQ(a.series.values.size(), b.series.values.size()) << "block " << i;
    for (std::size_t k = 0; k < a.series.values.size(); ++k) {
      // Bitwise: both formats narrow through the same f32.
      EXPECT_EQ(a.series.values[k], b.series.values[k])
          << "block " << i << " sample " << k;
    }
  }
}

TEST(DatasetColumnar, DecodeDatasetSniffsV3) {
  const auto analyses = TestAnalyses();
  const auto v3 = EncodeDatasetColumnar(analyses, 660, 7);
  DatasetLoadReport report;
  const auto dataset = DecodeDataset(v3, &report);
  ASSERT_TRUE(dataset.has_value()) << report.detail;
  EXPECT_EQ(report.version, storage::kColumnarVersion);
  EXPECT_EQ(report.records_expected, analyses.size());
  EXPECT_EQ(dataset->blocks.size(), analyses.size());
}

TEST(DatasetColumnar, ReanalysisIsBitwiseIdenticalAcrossFormats) {
  const auto analyses = TestAnalyses();
  const auto v3 = EncodeDatasetColumnar(analyses, 660, 0);
  const auto v2 = EncodeDataset(analyses, 660, 0);

  ColumnarDatasetView view;
  ASSERT_TRUE(ParseDatasetColumnar(v3, view).ok());
  const auto dataset = DecodeDataset(v2);
  ASSERT_TRUE(dataset.has_value());

  AnalysisScratch scratch;
  BlockAnalysis from_view;
  BlockAnalysis from_record;
  for (std::size_t i = 0; i < analyses.size(); ++i) {
    ReanalyzeColumnar(view, i, {}, scratch, from_view);
    Reanalyze(dataset->blocks[i], {}, scratch, from_record);
    EXPECT_EQ(from_view.probed, from_record.probed) << "block " << i;
    EXPECT_EQ(from_view.observed_days, from_record.observed_days)
        << "block " << i;
    EXPECT_EQ(from_view.mean_short, from_record.mean_short) << "block " << i;
    EXPECT_EQ(from_view.stationarity.stationary,
              from_record.stationarity.stationary)
        << "block " << i;
    EXPECT_EQ(from_view.diurnal.classification,
              from_record.diurnal.classification)
        << "block " << i;
    EXPECT_EQ(from_view.diurnal.strongest_cycles_per_day,
              from_record.diurnal.strongest_cycles_per_day)
        << "block " << i;
  }
}

TEST(DatasetColumnar, EverySingleByteCorruptionFailsTheParse) {
  // Small blocks keep this O(bytes^2) sweep quick while still covering
  // header, directory, every column payload, and the padding.
  std::vector<BlockAnalysis> analyses;
  analyses.push_back(MakeAnalysis(1, 24, true));
  analyses.push_back(MakeAnalysis(2, 30, false));
  const auto bytes = EncodeDatasetColumnar(analyses, 660, 1);
  auto bent = bytes;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bent[i] = bytes[i] ^ 0xA5;
    ColumnarDatasetView view;
    EXPECT_FALSE(ParseDatasetColumnar(bent, view).ok())
        << "flip at byte " << i << " went undetected";
    bent[i] = bytes[i];
  }
}

TEST(DatasetColumnar, EveryTruncationFailsTheParse) {
  std::vector<BlockAnalysis> analyses;
  analyses.push_back(MakeAnalysis(1, 24, true));
  const auto bytes = EncodeDatasetColumnar(analyses, 660, 1);
  for (std::size_t length = 0; length < bytes.size(); ++length) {
    const std::span<const std::uint8_t> prefix{bytes.data(), length};
    ColumnarDatasetView view;
    EXPECT_FALSE(ParseDatasetColumnar(prefix, view).ok())
        << "truncation to " << length << " bytes went undetected";
  }
}

TEST(DatasetColumnar, WrongKindAndMagicAreRefused) {
  // Right magic, foreign kind: a hypothetical future SLPW container
  // must not parse as a dataset.
  storage::ColumnarWriter writer("SLPW", /*kind=*/9, 0, 0);
  const std::uint64_t meta[4] = {660, 0, 0, 0};
  writer.AddTypedBorrowed<std::uint64_t>(kColMeta, meta);
  const auto foreign_kind = writer.Finish();
  ColumnarDatasetView view;
  const auto kind_error = ParseDatasetColumnar(foreign_kind, view);
  EXPECT_FALSE(kind_error.ok());
  EXPECT_NE(kind_error.detail.find("kind"), std::string::npos)
      << kind_error.ToString();

  // SLCK magic (a checkpoint-family container) must be refused before
  // any column is read.
  storage::ColumnarWriter checkpoint("SLCK", 1, 0, 0);
  checkpoint.AddTypedBorrowed<std::uint64_t>(kColMeta, meta);
  const auto wrong_magic = checkpoint.Finish();
  EXPECT_FALSE(ParseDatasetColumnar(wrong_magic, view).ok());
}

// Builds a structurally valid container whose OFFSET column the test
// can bend: CRCs are all correct, so only the cross-column validation
// stands between a hostile table and out-of-bounds series spans.
std::vector<std::uint8_t> ForgeDataset(
    const std::vector<std::uint64_t>& offset,
    const std::vector<std::uint32_t>& count, std::uint64_t meta_samples,
    std::size_t n_values) {
  const auto n = static_cast<std::uint64_t>(offset.size());
  const std::uint64_t meta[4] = {660, 0, n, meta_samples};
  std::vector<std::uint32_t> prefix(offset.size(), 7);
  std::vector<std::int32_t> ever_active(offset.size(), 20);
  std::vector<std::uint8_t> probed(offset.size(), 1);
  std::vector<std::int64_t> first_round(offset.size(), 0);
  std::vector<float> values(n_values, 0.5F);
  storage::ColumnarWriter writer("SLPW", kDatasetColumnarKind, 0, 0);
  writer.AddTypedBorrowed<std::uint64_t>(kColMeta, meta);
  writer.AddTypedBorrowed<std::uint32_t>(kColPrefix, prefix);
  writer.AddTypedBorrowed<std::int32_t>(kColEverActive, ever_active);
  writer.AddTypedBorrowed<std::uint8_t>(kColProbed, probed);
  writer.AddTypedBorrowed<std::int64_t>(kColFirstRound, first_round);
  writer.AddTypedBorrowed<std::uint32_t>(kColCount, count);
  writer.AddTypedBorrowed<std::uint64_t>(kColOffset, offset);
  writer.AddTypedBorrowed<float>(kColValues, values);
  return writer.Finish();
}

TEST(DatasetColumnar, HostileOffsetTableIsRefused) {
  // The honest layout: counts {4, 6}, offsets {0, 4}, 10 values.
  ColumnarDatasetView view;
  EXPECT_TRUE(ParseDatasetColumnar(ForgeDataset({0, 4}, {4, 6}, 10, 10), view)
                  .ok());

  // Overlapping series (offset[1] rewinds into block 0's samples).
  const auto overlap =
      ParseDatasetColumnar(ForgeDataset({0, 2}, {4, 6}, 10, 10), view);
  EXPECT_FALSE(overlap.ok());
  EXPECT_NE(overlap.detail.find("prefix sum"), std::string::npos)
      << overlap.ToString();

  // Counts stop short of the values column: 2 trailing samples would
  // be reachable through a forged SeriesOf() span.
  const auto short_counts =
      ParseDatasetColumnar(ForgeDataset({0, 4}, {4, 4}, 10, 10), view);
  EXPECT_FALSE(short_counts.ok());

  // META sample count disagrees with the values column outright.
  EXPECT_FALSE(
      ParseDatasetColumnar(ForgeDataset({0, 4}, {4, 6}, 12, 10), view).ok());
}

TEST(DatasetColumnar, MapsZeroCopyThroughAnEnv) {
  storage::MemEnv env;
  const auto analyses = TestAnalyses();
  ASSERT_TRUE(WriteDatasetColumnar(env, "/data/a.slpw", analyses, 660, 9)
                  .ok());

  storage::MappedRegion region;
  ColumnarDatasetView view;
  ASSERT_TRUE(MapDatasetColumnar(env, "/data/a.slpw", region, view).ok());
  EXPECT_EQ(view.size(), analyses.size());
  EXPECT_EQ(view.epoch_sec, 9);
  // The spans alias the mapping, not a per-block copy.
  const auto* base = region.bytes().data();
  const auto* end = base + region.bytes().size();
  const auto* series = reinterpret_cast<const std::uint8_t*>(view.values.data());
  EXPECT_TRUE(series >= base && series < end)
      << "values column was copied out of the mapping";

  EXPECT_FALSE(
      MapDatasetColumnar(env, "/data/missing.slpw", region, view).ok());
}

TEST(DatasetColumnar, ParallelReanalysisCountsMatchTheV2Pipeline) {
  // ReanalyzeDatasetColumnar (O(workers) memory, claim-counter sweep)
  // must report exactly the counts of the v2 path: ReanalyzeDataset +
  // ClassifyAnalysis per block — at any worker count.
  std::vector<BlockAnalysis> analyses;
  for (std::uint32_t i = 0; i < 12; ++i) {
    analyses.push_back(MakeAnalysis(1000 + 13 * i, 270 + static_cast<int>(i),
                                    i % 3 != 2));
  }
  analyses.push_back(MakeAnalysis(9000, 8, true));  // too short: skipped
  const auto v3 = EncodeDatasetColumnar(analyses, 660, 0);
  const auto v2 = EncodeDataset(analyses, 660, 0);

  ColumnarDatasetView view;
  ASSERT_TRUE(ParseDatasetColumnar(v3, view).ok());
  const auto dataset = DecodeDataset(v2);
  ASSERT_TRUE(dataset.has_value());

  DiurnalCounts expect;
  for (const auto& analysis : ReanalyzeDataset(*dataset, {}, 1)) {
    ClassifyAnalysis(analysis, false, expect);
  }
  ASSERT_GT(expect.probed(), 0);
  ASSERT_GT(expect.strict + expect.relaxed, 0);

  for (const int workers : {1, 4}) {
    const DiurnalCounts counts = ReanalyzeDatasetColumnar(view, {}, workers);
    EXPECT_EQ(counts.strict, expect.strict) << "workers " << workers;
    EXPECT_EQ(counts.relaxed, expect.relaxed) << "workers " << workers;
    EXPECT_EQ(counts.non_diurnal, expect.non_diurnal) << "workers " << workers;
    EXPECT_EQ(counts.skipped, expect.skipped) << "workers " << workers;
  }
}

}  // namespace
}  // namespace sleepwalk::core
