#include "sleepwalk/core/pipeline.h"

#include <gtest/gtest.h>

#include "sleepwalk/sim/block.h"
#include "sleepwalk/sim/survey.h"

namespace sleepwalk::core {
namespace {

sim::BlockSpec MakeSpec(std::uint32_t index, int n_always, int n_diurnal) {
  sim::BlockSpec spec;
  spec.block = net::Prefix24::FromIndex(index);
  spec.seed = index * 0x9e37u + 1;
  spec.n_always = static_cast<std::uint8_t>(n_always);
  spec.n_diurnal = static_cast<std::uint8_t>(n_diurnal);
  spec.response_prob = 0.92F;
  spec.on_start_sec = 8.0F * 3600.0F;
  spec.on_duration_sec = 9.0F * 3600.0F;
  spec.phase_spread_sec = 1.5F * 3600.0F;
  return spec;
}

TEST(RunCampaign, ClassifiesMixedPopulation) {
  std::vector<sim::BlockSpec> specs;
  // 10 diurnal, 10 always-on, 3 sparse.
  for (std::uint32_t i = 0; i < 10; ++i) {
    specs.push_back(MakeSpec(1000 + i, 20, 120));
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    specs.push_back(MakeSpec(2000 + i, 120, 0));
  }
  for (std::uint32_t i = 0; i < 3; ++i) {
    specs.push_back(MakeSpec(3000 + i, 6, 0));
  }

  sim::SimTransport transport{11};
  std::vector<BlockTarget> targets;
  for (const auto& spec : specs) {
    transport.AddBlock(&spec);
    targets.push_back({spec.block, sim::EverActiveOctets(spec),
                       sim::TrueAvailability(spec, 12 * 3600)});
  }

  AnalyzerConfig config;
  probing::RoundScheduler scheduler{config.schedule};
  const auto result = RunCampaign(std::move(targets), transport,
                                  scheduler.RoundsForDays(10), config);

  ASSERT_EQ(result.analyses.size(), 23u);
  EXPECT_EQ(result.counts.skipped, 3);
  EXPECT_EQ(result.counts.probed(), 20);
  // Nearly all 10 diurnal blocks detected at least as relaxed. The
  // relaxed class catches some noise blocks too — EWMA smoothing gives
  // A-hat_s a red spectrum, and the paper's relaxed test has no
  // dominance requirement (hence their 25% relaxed vs 11% strict) — but
  // no always-on block may pass the *strict* test.
  EXPECT_GE(result.counts.strict + result.counts.relaxed, 8);
  EXPECT_GE(result.counts.non_diurnal, 4);
  for (std::size_t i = 10; i < 20; ++i) {
    EXPECT_FALSE(result.analyses[i].diurnal.IsStrict())
        << "always-on block " << i << " classified strictly diurnal";
  }
  // The strict detections are the truly diurnal blocks (first ten).
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(result.analyses[i].diurnal.IsDiurnal())
        << "diurnal block " << i << " missed entirely";
  }

  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(result.analyses[i].probed);
  }
  for (std::size_t i = 20; i < 23; ++i) {
    EXPECT_FALSE(result.analyses[i].probed);
  }
}

TEST(RunCampaign, CountsFractions) {
  DiurnalCounts counts;
  counts.strict = 11;
  counts.relaxed = 14;
  counts.non_diurnal = 75;
  EXPECT_EQ(counts.probed(), 100);
  EXPECT_DOUBLE_EQ(counts.StrictFraction(), 0.11);
  EXPECT_DOUBLE_EQ(counts.EitherFraction(), 0.25);
  EXPECT_DOUBLE_EQ(DiurnalCounts{}.StrictFraction(), 0.0);
}

TEST(RunCampaign, ProgressCallbackInvoked) {
  const auto spec = MakeSpec(100, 50, 0);
  sim::SimTransport transport{1};
  transport.AddBlock(&spec);
  std::vector<BlockTarget> targets;
  targets.push_back({spec.block, sim::EverActiveOctets(spec), 0.9});

  std::size_t calls = 0;
  AnalyzerConfig config;
  RunCampaign(std::move(targets), transport, 300, config, 1,
              [&](std::size_t done, std::size_t total) {
                ++calls;
                EXPECT_LE(done, total);
              });
  EXPECT_EQ(calls, 1u);
}

TEST(RunCampaign, EmptyTargets) {
  sim::SimTransport transport{1};
  const auto result = RunCampaign({}, transport, 100);
  EXPECT_TRUE(result.analyses.empty());
  EXPECT_EQ(result.counts.probed(), 0);
}

TEST(RunCampaign, TooFewRoundsCountsAsSkipped) {
  const auto spec = MakeSpec(100, 50, 0);
  sim::SimTransport transport{1};
  transport.AddBlock(&spec);
  std::vector<BlockTarget> targets;
  targets.push_back({spec.block, sim::EverActiveOctets(spec), 0.9});
  // 100 rounds < 1 day: cannot be midnight-trimmed to 2 days.
  const auto result = RunCampaign(std::move(targets), transport, 100);
  EXPECT_EQ(result.counts.skipped, 1);
}

}  // namespace
}  // namespace sleepwalk::core
