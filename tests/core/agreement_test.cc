#include "sleepwalk/core/agreement.h"

#include <gtest/gtest.h>

namespace sleepwalk::core {
namespace {

BlockAnalysis Make(std::uint32_t index, Diurnality classification,
                   bool probed = true, int days = 14) {
  BlockAnalysis analysis;
  analysis.block = net::Prefix24::FromIndex(index);
  analysis.probed = probed;
  analysis.observed_days = days;
  analysis.diurnal.classification = classification;
  return analysis;
}

TEST(AgreementClassOf, MapsClassifications) {
  EXPECT_EQ(AgreementClassOf(Make(1, Diurnality::kStrictlyDiurnal)),
            AgreementClass::kStrict);
  EXPECT_EQ(AgreementClassOf(Make(1, Diurnality::kRelaxedDiurnal)),
            AgreementClass::kRelaxed);
  EXPECT_EQ(AgreementClassOf(Make(1, Diurnality::kNonDiurnal)),
            AgreementClass::kNeither);
}

TEST(CompareRuns, FullAgreement) {
  std::vector<BlockAnalysis> a;
  std::vector<BlockAnalysis> b;
  for (std::uint32_t i = 0; i < 10; ++i) {
    const auto cls = i < 3 ? Diurnality::kStrictlyDiurnal
                   : i < 5 ? Diurnality::kRelaxedDiurnal
                           : Diurnality::kNonDiurnal;
    a.push_back(Make(i, cls));
    b.push_back(Make(i, cls));
  }
  const auto matrix = CompareRuns(a, b);
  EXPECT_EQ(matrix.compared, 10);
  EXPECT_EQ(matrix.counts[0][0], 3);
  EXPECT_EQ(matrix.counts[1][1], 2);
  EXPECT_EQ(matrix.counts[2][2], 5);
  EXPECT_DOUBLE_EQ(matrix.StrictAgain(), 1.0);
  EXPECT_DOUBLE_EQ(matrix.AtLeastRelaxed(), 1.0);
  EXPECT_DOUBLE_EQ(matrix.StrongDisagreement(), 0.0);
}

TEST(CompareRuns, PartialDisagreement) {
  std::vector<BlockAnalysis> a = {
      Make(0, Diurnality::kStrictlyDiurnal),
      Make(1, Diurnality::kStrictlyDiurnal),
      Make(2, Diurnality::kStrictlyDiurnal),
      Make(3, Diurnality::kStrictlyDiurnal),
  };
  std::vector<BlockAnalysis> b = {
      Make(0, Diurnality::kStrictlyDiurnal),
      Make(1, Diurnality::kStrictlyDiurnal),
      Make(2, Diurnality::kRelaxedDiurnal),
      Make(3, Diurnality::kNonDiurnal),
  };
  const auto matrix = CompareRuns(a, b);
  EXPECT_EQ(matrix.StrictAtFirst(), 4);
  EXPECT_DOUBLE_EQ(matrix.StrictAgain(), 0.5);
  EXPECT_DOUBLE_EQ(matrix.AtLeastRelaxed(), 0.75);
  EXPECT_DOUBLE_EQ(matrix.StrongDisagreement(), 0.25);
}

TEST(CompareRuns, SkipsUnprobedAndShort) {
  std::vector<BlockAnalysis> a = {
      Make(0, Diurnality::kStrictlyDiurnal),
      Make(1, Diurnality::kStrictlyDiurnal, /*probed=*/false),
      Make(2, Diurnality::kStrictlyDiurnal, true, /*days=*/1),
  };
  std::vector<BlockAnalysis> b = {
      Make(0, Diurnality::kStrictlyDiurnal),
      Make(1, Diurnality::kStrictlyDiurnal),
      Make(2, Diurnality::kStrictlyDiurnal),
  };
  const auto matrix = CompareRuns(a, b);
  EXPECT_EQ(matrix.compared, 1);
}

TEST(CompareRuns, SkipsMisalignedBlocks) {
  std::vector<BlockAnalysis> a = {Make(7, Diurnality::kNonDiurnal)};
  std::vector<BlockAnalysis> b = {Make(8, Diurnality::kNonDiurnal)};
  const auto matrix = CompareRuns(a, b);
  EXPECT_EQ(matrix.compared, 0);
}

TEST(CompareRuns, EmptyAndMismatchedLengths) {
  EXPECT_EQ(CompareRuns({}, {}).compared, 0);
  std::vector<BlockAnalysis> a = {Make(0, Diurnality::kNonDiurnal),
                                  Make(1, Diurnality::kNonDiurnal)};
  std::vector<BlockAnalysis> b = {Make(0, Diurnality::kNonDiurnal)};
  EXPECT_EQ(CompareRuns(a, b).compared, 1);
}

TEST(AgreementMatrix, RatesWithNoStrictBlocks) {
  AgreementMatrix matrix;
  EXPECT_DOUBLE_EQ(matrix.StrictAgain(), 0.0);
  EXPECT_DOUBLE_EQ(matrix.AtLeastRelaxed(), 0.0);
  EXPECT_DOUBLE_EQ(matrix.StrongDisagreement(), 0.0);
}

}  // namespace
}  // namespace sleepwalk::core
