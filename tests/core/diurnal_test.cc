#include "sleepwalk/core/diurnal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "sleepwalk/util/rng.h"

namespace sleepwalk::core {
namespace {

constexpr int kRoundsPerDay = 131;  // ~11-minute rounds

// value = base + amplitude while "awake" (start..start+duration hours).
std::vector<double> SquareDiurnal(int days, double start_hour,
                                  double duration_hours, double base = 0.2,
                                  double amplitude = 0.6) {
  std::vector<double> series(static_cast<std::size_t>(days * kRoundsPerDay));
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double hour =
        24.0 * static_cast<double>(i % kRoundsPerDay) / kRoundsPerDay;
    const bool awake = hour >= start_hour && hour < start_hour + duration_hours;
    series[i] = base + (awake ? amplitude : 0.0);
  }
  return series;
}

std::vector<double> SineDaily(int days, double phase = 0.0,
                              double amplitude = 0.3) {
  std::vector<double> series(static_cast<std::size_t>(days * kRoundsPerDay));
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double t = static_cast<double>(i) / kRoundsPerDay;  // days
    series[i] = 0.5 + amplitude * std::cos(2.0 * std::numbers::pi * t + phase);
  }
  return series;
}

TEST(ClassifyDiurnal, PureDailySineIsStrict) {
  const auto result = ClassifyDiurnal(SineDaily(14), 14);
  EXPECT_EQ(result.classification, Diurnality::kStrictlyDiurnal);
  EXPECT_EQ(result.daily_bin, 14u);
  EXPECT_EQ(result.strongest_bin, 14u);
  EXPECT_NEAR(result.strongest_cycles_per_day, 1.0, 1e-12);
}

TEST(ClassifyDiurnal, SquareWaveIsStrictDespiteHarmonics) {
  // A square wave has strong harmonics, but the fundamental dominates;
  // the strict rule compares against harmonics but only requires the
  // daily bin to *exceed* them.
  const auto result = ClassifyDiurnal(SquareDiurnal(14, 8.0, 8.0), 14);
  EXPECT_EQ(result.classification, Diurnality::kStrictlyDiurnal);
}

TEST(ClassifyDiurnal, FlatSeriesIsNonDiurnal) {
  const std::vector<double> flat(14 * kRoundsPerDay, 0.7);
  const auto result = ClassifyDiurnal(flat, 14);
  EXPECT_EQ(result.classification, Diurnality::kNonDiurnal);
}

TEST(ClassifyDiurnal, WhiteNoiseIsNonDiurnal) {
  Rng rng{123};
  std::vector<double> noise(14 * kRoundsPerDay);
  for (auto& v : noise) v = 0.5 + 0.1 * rng.NextGaussian();
  const auto result = ClassifyDiurnal(noise, 14);
  EXPECT_EQ(result.classification, Diurnality::kNonDiurnal);
}

TEST(ClassifyDiurnal, NonDailyPeriodicityRejected) {
  // A 6-hour cycle (4 cycles/day) peaks at bin 4*N_d: not daily, not the
  // first harmonic -> non-diurnal.
  std::vector<double> series(14 * kRoundsPerDay);
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double t = static_cast<double>(i) / kRoundsPerDay;
    series[i] = 0.5 + 0.3 * std::cos(2.0 * std::numbers::pi * 4.0 * t);
  }
  const auto result = ClassifyDiurnal(series, 14);
  EXPECT_EQ(result.classification, Diurnality::kNonDiurnal);
  EXPECT_NEAR(result.strongest_cycles_per_day, 4.0, 0.1);
}

TEST(ClassifyDiurnal, FirstHarmonicDominantIsRelaxed) {
  // Strong 2-cycles/day with a little daily: the paper's relaxed class
  // ("strongest frequency is at 1 cycle per day or the first harmonic").
  std::vector<double> series(14 * kRoundsPerDay);
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double t = static_cast<double>(i) / kRoundsPerDay;
    series[i] = 0.5 + 0.3 * std::cos(2.0 * std::numbers::pi * 2.0 * t) +
                0.05 * std::cos(2.0 * std::numbers::pi * t);
  }
  const auto result = ClassifyDiurnal(series, 14);
  EXPECT_EQ(result.classification, Diurnality::kRelaxedDiurnal);
}

TEST(ClassifyDiurnal, WeakDominanceIsRelaxedNotStrict) {
  // Daily strongest, but a non-harmonic competitor at 4.5 c/d within 2x:
  // fails the strict dominance test, passes relaxed.
  std::vector<double> series(14 * kRoundsPerDay);
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double t = static_cast<double>(i) / kRoundsPerDay;
    series[i] = 0.5 + 0.3 * std::cos(2.0 * std::numbers::pi * t) +
                0.2 * std::cos(2.0 * std::numbers::pi * 4.5 * t);
  }
  const auto result = ClassifyDiurnal(series, 14);
  EXPECT_EQ(result.classification, Diurnality::kRelaxedDiurnal);
}

TEST(ClassifyDiurnal, NoisyDiurnalStillDetected) {
  Rng rng{9};
  auto series = SquareDiurnal(14, 9.0, 9.0);
  for (auto& v : series) v += 0.08 * rng.NextGaussian();
  const auto result = ClassifyDiurnal(series, 14);
  EXPECT_EQ(result.classification, Diurnality::kStrictlyDiurnal);
}

TEST(ClassifyDiurnal, TooShortSeriesIsNonDiurnal) {
  const auto result = ClassifyDiurnal(SineDaily(1), 1);
  EXPECT_EQ(result.classification, Diurnality::kNonDiurnal);
  EXPECT_FALSE(ClassifyDiurnal({}, 0).IsDiurnal());
}

TEST(ClassifyDiurnal, PhaseTracksWakeTime) {
  // Cosine with phase -phi peaks phi radians into the day. Our detector
  // reports arg(alpha_Nd); verify the recovered phase matches.
  for (const double phase : {-2.0, -1.0, 0.0, 1.0, 2.5}) {
    const auto result = ClassifyDiurnal(SineDaily(14, phase), 14);
    ASSERT_TRUE(result.IsStrict());
    EXPECT_NEAR(result.phase, phase, 0.05) << "injected phase " << phase;
  }
}

TEST(ClassifyDiurnal, PhaseShiftBetweenTimezones) {
  // Two blocks waking 6 hours apart differ by pi/2 in daily phase.
  const auto east = ClassifyDiurnal(SquareDiurnal(14, 2.0, 8.0), 14);
  const auto west = ClassifyDiurnal(SquareDiurnal(14, 8.0, 8.0), 14);
  ASSERT_TRUE(east.IsDiurnal());
  ASSERT_TRUE(west.IsDiurnal());
  double delta = east.phase - west.phase;
  while (delta < -std::numbers::pi) delta += 2.0 * std::numbers::pi;
  while (delta >= std::numbers::pi) delta -= 2.0 * std::numbers::pi;
  EXPECT_NEAR(std::fabs(delta), std::numbers::pi / 2.0, 0.1);
}

TEST(ClassifyDiurnal, NeighborBinCatchesOffGridFrequency) {
  // 35-day series whose daily frequency leaks between bins 35 and 36
  // (sampling not exactly aligned): the detector checks N_d and N_d + 1.
  const int days = 35;
  std::vector<double> series(static_cast<std::size_t>(days * kRoundsPerDay));
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double t = static_cast<double>(i) / kRoundsPerDay;
    // 1.014 cycles/day -> bin 35.5 at N_d = 35.
    series[i] = 0.5 + 0.3 * std::cos(2.0 * std::numbers::pi * 1.0143 * t);
  }
  const auto result = ClassifyDiurnal(series, days);
  EXPECT_TRUE(result.IsDiurnal());
}

TEST(ClassifyDiurnal, ThirtyFiveDayWindow) {
  // The A_12w shape: 35 days, peak at k = 35 (paper Fig 6).
  const auto result = ClassifyDiurnal(SquareDiurnal(35, 8.0, 8.0), 35);
  EXPECT_TRUE(result.IsStrict());
  EXPECT_GE(result.daily_bin, 35u);
  EXPECT_LE(result.daily_bin, 36u);
}

TEST(ClassifySpectrum, MatchesClassifyDiurnal) {
  const auto series = SineDaily(14);
  const auto spectrum = fft::ComputeSpectrum(series);
  const auto from_spectrum = ClassifySpectrum(spectrum, 14);
  const auto from_series = ClassifyDiurnal(series, 14);
  EXPECT_EQ(from_spectrum.classification, from_series.classification);
  EXPECT_EQ(from_spectrum.daily_bin, from_series.daily_bin);
  EXPECT_DOUBLE_EQ(from_spectrum.daily_amplitude,
                   from_series.daily_amplitude);
}

TEST(ClassifyDiurnal, DominanceThresholdConfigurable) {
  std::vector<double> series(14 * kRoundsPerDay);
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double t = static_cast<double>(i) / kRoundsPerDay;
    series[i] = 0.5 + 0.3 * std::cos(2.0 * std::numbers::pi * t) +
                0.11 * std::cos(2.0 * std::numbers::pi * 4.5 * t);
  }
  DiurnalConfig strict_config;
  strict_config.strict_dominance = 2.0;  // 0.3 vs 0.11: passes
  EXPECT_TRUE(ClassifyDiurnal(series, 14, strict_config).IsStrict());
  strict_config.strict_dominance = 4.0;  // needs 4x: fails
  EXPECT_FALSE(ClassifyDiurnal(series, 14, strict_config).IsStrict());
}

// Sweep: strict detection must hold across wake durations (the paper
// argues 6-10 h typical; we sweep wider).
class DurationSweep : public ::testing::TestWithParam<double> {};

TEST_P(DurationSweep, SquareWaveDetected) {
  const double duration = GetParam();
  const auto result = ClassifyDiurnal(SquareDiurnal(14, 7.0, duration), 14);
  EXPECT_TRUE(result.IsDiurnal()) << "duration " << duration << " h";
}

INSTANTIATE_TEST_SUITE_P(Hours, DurationSweep,
                         ::testing::Values(2.0, 4.0, 6.0, 8.0, 10.0, 12.0,
                                           16.0, 20.0),
                         [](const auto& info) {
                           return "h" + std::to_string(static_cast<int>(
                                            info.param));
                         });

}  // namespace
}  // namespace sleepwalk::core
