// Allocation-count tests for the analysis hot loop: once scratch and
// output capacities are warm, BlockAnalyzer::Finish / Reanalyze /
// ComputeSpectrum / QuickDiurnalScreen must perform ZERO heap
// allocations (DESIGN.md §10). Built as its own binary because it
// replaces the global operator new/delete with counting versions —
// that replacement is process-wide and must not leak into other suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "sleepwalk/core/block_analyzer.h"
#include "sleepwalk/core/dataset.h"
#include "sleepwalk/core/quick_screen.h"
#include "sleepwalk/fft/plan.h"
#include "sleepwalk/fft/spectrum.h"
#include "sleepwalk/probing/scheduler.h"
#include "sleepwalk/sim/block.h"
#include "sleepwalk/sim/survey.h"
#include "sleepwalk/util/rng.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};

void* CountedAllocate(std::size_t size, std::size_t alignment) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* ptr = nullptr;
  if (alignment > alignof(std::max_align_t)) {
    // aligned_alloc requires size to be a multiple of the alignment.
    const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
    ptr = std::aligned_alloc(alignment, rounded);
  } else {
    ptr = std::malloc(size > 0 ? size : 1);
  }
  if (ptr == nullptr) throw std::bad_alloc{};
  return ptr;
}

/// Counts global operator new hits (all variants) while alive.
class AllocationCounter {
 public:
  AllocationCounter() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocationCounter() { g_counting.store(false, std::memory_order_relaxed); }
  AllocationCounter(const AllocationCounter&) = delete;
  AllocationCounter& operator=(const AllocationCounter&) = delete;

  std::size_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

}  // namespace

void* operator new(std::size_t size) {
  return CountedAllocate(size, 0);
}
void* operator new[](std::size_t size) {
  return CountedAllocate(size, 0);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAllocate(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAllocate(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return CountedAllocate(size, 0);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return CountedAllocate(size, 0);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  std::free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

namespace sleepwalk::core {
namespace {

sim::BlockSpec DiurnalSpec() {
  sim::BlockSpec spec;
  spec.block = net::Prefix24::FromIndex(500);
  spec.seed = 0x11;
  spec.n_always = 30;
  spec.n_diurnal = 120;
  spec.response_prob = 0.95F;
  spec.on_start_sec = 8.0F * 3600.0F;
  spec.on_duration_sec = 9.0F * 3600.0F;
  spec.phase_spread_sec = 2.0F * 3600.0F;
  return spec;
}

TEST(ZeroAlloc, BlockAnalyzerFinishSteadyState) {
  const auto spec = DiurnalSpec();
  AnalyzerConfig config;
  config.schedule.epoch_sec = 0;
  sim::SimTransport transport{3};
  transport.AddBlock(&spec);
  probing::RoundScheduler scheduler{config.schedule};
  BlockAnalyzer analyzer{spec.block, sim::EverActiveOctets(spec),
                         sim::TrueAvailability(spec, 12 * 3600), 3, config};
  analyzer.RunCampaign(transport, scheduler.RoundsForDays(14));

  AnalysisScratch scratch;
  BlockAnalysis analysis;
  // Two warm-up calls: the first grows every buffer to its high-water
  // mark, the second proves the marks are stable.
  analyzer.Finish(scratch, analysis);
  analyzer.Finish(scratch, analysis);
  ASSERT_TRUE(analysis.probed);
  ASSERT_TRUE(analysis.diurnal.IsDiurnal());

  AllocationCounter counter;
  analyzer.Finish(scratch, analysis);
  EXPECT_EQ(counter.count(), 0u)
      << "Finish() allocated on a warm scratch/output pair";
}

TEST(ZeroAlloc, ReanalyzeSteadyState) {
  const auto spec = DiurnalSpec();
  AnalyzerConfig config;
  config.schedule.epoch_sec = 0;
  sim::SimTransport transport{3};
  transport.AddBlock(&spec);
  probing::RoundScheduler scheduler{config.schedule};
  BlockAnalyzer analyzer{spec.block, sim::EverActiveOctets(spec),
                         sim::TrueAvailability(spec, 12 * 3600), 3, config};
  analyzer.RunCampaign(transport, scheduler.RoundsForDays(14));
  const BlockAnalysis finished = analyzer.Finish();

  StoredSeries stored;
  stored.block = finished.block;
  stored.ever_active = finished.ever_active;
  stored.probed = finished.probed;
  stored.series = finished.short_series;

  AnalysisScratch scratch;
  BlockAnalysis analysis;
  Reanalyze(stored, config, scratch, analysis);
  Reanalyze(stored, config, scratch, analysis);
  ASSERT_TRUE(analysis.probed);

  AllocationCounter counter;
  Reanalyze(stored, config, scratch, analysis);
  EXPECT_EQ(counter.count(), 0u)
      << "Reanalyze() allocated on a warm scratch/output pair";
}

TEST(ZeroAlloc, ComputeSpectrumSteadyState) {
  Rng rng{42};
  std::vector<double> series(1834);
  for (auto& value : series) value = rng.NextDouble();

  const fft::SpectrumOptions options;
  fft::FftScratch scratch;
  fft::Spectrum spectrum;
  fft::ComputeSpectrum(series, options, scratch, spectrum);
  fft::ComputeSpectrum(series, options, scratch, spectrum);

  AllocationCounter counter;
  fft::ComputeSpectrum(series, options, scratch, spectrum);
  EXPECT_EQ(counter.count(), 0u)
      << "ComputeSpectrum allocated on warm scratch";

  // Odd length exercises the Bluestein path's scratch reuse too.
  series.resize(1833);
  fft::ComputeSpectrum(series, options, scratch, spectrum);
  fft::ComputeSpectrum(series, options, scratch, spectrum);
  AllocationCounter bluestein_counter;
  fft::ComputeSpectrum(series, options, scratch, spectrum);
  EXPECT_EQ(bluestein_counter.count(), 0u)
      << "Bluestein ComputeSpectrum allocated on warm scratch";
}

TEST(ZeroAlloc, QuickScreenSteadyState) {
  Rng rng{42};
  std::vector<double> series(1834);
  for (auto& value : series) value = rng.NextDouble();

  const QuickScreenConfig config;
  std::vector<double> centered;
  QuickDiurnalScreen(series, 14, config, centered);

  AllocationCounter counter;
  const auto result = QuickDiurnalScreen(series, 14, config, centered);
  EXPECT_EQ(counter.count(), 0u)
      << "QuickDiurnalScreen allocated on warm centered scratch";
  EXPECT_GT(result.rms_amplitude, 0.0);
}

}  // namespace
}  // namespace sleepwalk::core
