// The columnar analysis sweep (core/store_analyzer.h): for identical
// recorded samples, the verdict columns AnalyzeStore writes must be
// bitwise identical to the scalar BlockAnalyzer::Finish output
// projected through VerdictOf — including after the series ring has
// wrapped, at any worker count. The Goertzel screen mode may only ever
// downgrade a verdict to non-diurnal, never invent a diurnal one.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "sleepwalk/core/availability.h"
#include "sleepwalk/core/block_analyzer.h"
#include "sleepwalk/core/block_store.h"
#include "sleepwalk/core/campaign_ledger.h"
#include "sleepwalk/core/store_analyzer.h"
#include "sleepwalk/core/store_campaign.h"

namespace sleepwalk {
namespace {

using core::AnalyzerConfig;
using core::AvailabilityEstimator;
using core::BlockAnalyzer;
using core::BlockAnalyzerState;
using core::BlockStore;
using core::BlockVerdict;
using core::RoundSample;
using core::StoreAnalyzerConfig;
using core::SyntheticEverActive;
using core::SyntheticInitialAvailability;
using core::SyntheticRoundSample;
using core::VerdictOf;

// Drives `store` (already Reset with a series capacity) and returns,
// per block, the scalar BlockAnalyzer that saw the exact same samples:
// estimator trajectory from the scalar AvailabilityEstimator, raw
// series limited to what the ring retained (the newest `capacity`
// samples), probe/down accounting over the full run.
std::vector<BlockAnalyzer> DriveBoth(BlockStore& store, std::size_t n_blocks,
                                     std::int64_t n_rounds,
                                     std::int32_t capacity,
                                     std::uint64_t seed) {
  std::vector<BlockAnalyzer> scalars;
  std::vector<AvailabilityEstimator> estimators;
  scalars.reserve(n_blocks);
  estimators.reserve(n_blocks);
  std::vector<std::vector<ts::Observation>> raw(n_blocks);
  std::vector<std::int64_t> total_probes(n_blocks, 0);
  std::vector<int> down_rounds(n_blocks, 0);

  for (std::size_t i = 0; i < n_blocks; ++i) {
    const auto prefix = static_cast<std::uint32_t>(i);
    const double prior = SyntheticInitialAvailability(seed, prefix);
    const std::int32_t active = SyntheticEverActive(seed, prefix);
    store.SeedBlock(i, prefix, prior);
    store.SetEverActive(i, active);
    estimators.emplace_back(prior, store.config());
    std::vector<std::uint8_t> octets(static_cast<std::size_t>(active));
    std::iota(octets.begin(), octets.end(), std::uint8_t{1});
    scalars.emplace_back(net::Prefix24::FromIndex(prefix), std::move(octets),
                         prior, seed, AnalyzerConfig{});
  }

  std::vector<RoundSample> round(n_blocks);
  for (std::int64_t r = 0; r < n_rounds; ++r) {
    for (std::size_t i = 0; i < n_blocks; ++i) {
      round[i] =
          SyntheticRoundSample(seed, static_cast<std::uint32_t>(i), r);
      estimators[i].Observe(round[i].positives, round[i].total);
      raw[i].push_back({r, estimators[i].ShortTerm()});
      total_probes[i] += round[i].total;
      if (round[i].positives <= 0) ++down_rounds[i];
    }
    store.ObserveRound(0, n_blocks, round);
    store.RecordSeriesRound(0, n_blocks, r);
  }

  for (std::size_t i = 0; i < n_blocks; ++i) {
    BlockAnalyzerState state;
    state.estimator = estimators[i].ExportState();
    // The ring holds the newest `capacity` samples; the scalar
    // reference analyzes exactly that window.
    const std::size_t keep =
        std::min(raw[i].size(), static_cast<std::size_t>(capacity));
    state.raw.assign(raw[i].end() - static_cast<std::ptrdiff_t>(keep),
                     raw[i].end());
    state.total_probes = total_probes[i];
    state.rounds_run = n_rounds;
    state.down_rounds = down_rounds[i];
    scalars[i].RestoreState(std::move(state));
  }
  return scalars;
}

void ExpectVerdictColumnsMatch(const BlockStore& store,
                               std::vector<BlockAnalyzer>& scalars) {
  core::AnalysisScratch scratch;
  core::BlockAnalysis analysis;
  for (std::size_t i = 0; i < scalars.size(); ++i) {
    scalars[i].Finish(scratch, analysis);
    const BlockVerdict expect = VerdictOf(analysis, false);
    EXPECT_EQ(store.prefix_index()[i], expect.prefix_index) << "block " << i;
    EXPECT_EQ((store.flags()[i] & core::kBlockFlagProbed) != 0, expect.probed)
        << "block " << i;
    EXPECT_EQ((store.flags()[i] & core::kBlockFlagStationary) != 0,
              expect.stationary)
        << "block " << i;
    EXPECT_EQ(store.classification()[i], expect.classification)
        << "block " << i;
    EXPECT_EQ(store.ever_active()[i], expect.ever_active) << "block " << i;
    EXPECT_EQ(store.observed_days()[i], expect.observed_days) << "block " << i;
    EXPECT_EQ(store.down_rounds()[i], expect.down_rounds) << "block " << i;
    // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the contract is bitwise.
    EXPECT_EQ(store.mean_short()[i], expect.mean_short) << "block " << i;
    EXPECT_EQ(store.final_operational()[i], expect.final_operational)
        << "block " << i;
    EXPECT_EQ(store.mean_probes_per_round()[i], expect.mean_probes_per_round)
        << "block " << i;
  }
}

TEST(StoreAnalyzer, SweepMatchesScalarFinishBitwise) {
  // 280 rounds fit in a 300-slot ring: the sweep sees every sample the
  // scalar analyzer recorded, so every verdict column must agree to
  // the bit.
  constexpr std::size_t kBlocks = 32;
  constexpr std::int32_t kCapacity = 300;
  BlockStore store;
  store.Reset(kBlocks, {}, kCapacity);
  auto scalars = DriveBoth(store, kBlocks, 280, kCapacity, 0x5eed);

  const auto stats = core::AnalyzeStore(store, StoreAnalyzerConfig{}, 1);
  EXPECT_EQ(stats.analyzed, kBlocks);
  EXPECT_EQ(stats.classified, kBlocks);
  EXPECT_EQ(stats.screened_out, 0u);
  ExpectVerdictColumnsMatch(store, scalars);
}

TEST(StoreAnalyzer, WraparoundSweepEqualsScalarOverTheRetainedWindow) {
  // 400 rounds through a 300-slot ring: the oldest 100 samples are
  // overwritten. The sweep must analyze exactly the retained window —
  // the scalar reference is Finish() over the newest 300 samples with
  // full-campaign probe accounting.
  constexpr std::size_t kBlocks = 24;
  constexpr std::int32_t kCapacity = 300;
  BlockStore store;
  store.Reset(kBlocks, {}, kCapacity);
  auto scalars = DriveBoth(store, kBlocks, 400, kCapacity, 0x1196);

  const auto stats = core::AnalyzeStore(store, StoreAnalyzerConfig{}, 1);
  EXPECT_EQ(stats.analyzed, kBlocks);
  ExpectVerdictColumnsMatch(store, scalars);
}

TEST(StoreAnalyzer, RingWraparoundKeepsTheNewestSamplesInOrder) {
  BlockStore store;
  store.Reset(2, {}, 8);
  for (std::int64_t r = 0; r < 20; ++r) {
    store.AppendSeriesSample(0, r, 0.01 * static_cast<double>(r));
  }
  EXPECT_EQ(store.SeriesLength(0), 8);
  EXPECT_EQ(store.SeriesLength(1), 0);

  std::vector<ts::Observation> ordered;
  store.CopySeriesOrdered(0, ordered);
  ASSERT_EQ(ordered.size(), 8u);
  for (std::size_t k = 0; k < 8; ++k) {
    const auto round = static_cast<std::int64_t>(12 + k);
    EXPECT_EQ(ordered[k].round, round) << "slot " << k;
    EXPECT_EQ(ordered[k].value, 0.01 * static_cast<double>(round))
        << "slot " << k;
  }
}

TEST(StoreAnalyzer, BatchedSeriesKernelMatchesPerBlockAppends) {
  // RecordSeriesRound must record, per block, exactly what
  // AppendSeriesSample(i, round, ShortTerm(i)) would — including after
  // wraparound (48 rounds through 16-slot rings).
  constexpr std::size_t kBlocks = 16;
  BlockStore batched;
  BlockStore scalar;
  batched.Reset(kBlocks, {}, 16);
  scalar.Reset(kBlocks, {}, 16);
  for (std::size_t i = 0; i < kBlocks; ++i) {
    batched.SeedBlock(i, static_cast<std::uint32_t>(i), 0.5);
    scalar.SeedBlock(i, static_cast<std::uint32_t>(i), 0.5);
  }
  std::vector<RoundSample> round(kBlocks);
  for (std::int64_t r = 0; r < 48; ++r) {
    for (std::size_t i = 0; i < kBlocks; ++i) {
      round[i] = SyntheticRoundSample(7, static_cast<std::uint32_t>(i), r);
    }
    batched.ObserveRound(0, kBlocks, round);
    batched.RecordSeriesRound(0, kBlocks, r);
    scalar.ObserveRound(0, kBlocks, round);
    for (std::size_t i = 0; i < kBlocks; ++i) {
      scalar.AppendSeriesSample(i, r, scalar.ShortTerm(i));
    }
  }
  EXPECT_EQ(batched.Digest(), scalar.Digest());
}

TEST(StoreAnalyzer, WorkerCountIsInvisibleInTheVerdictColumns) {
  constexpr std::size_t kBlocks = 64;
  std::uint64_t digest1 = 0;
  core::StoreAnalyzeStats stats1;
  for (const int workers : {1, 5}) {
    BlockStore store;
    store.Reset(kBlocks, {}, 300);
    DriveBoth(store, kBlocks, 280, 300, 0xabc);
    const auto stats = core::AnalyzeStore(store, StoreAnalyzerConfig{},
                                          workers);
    if (workers == 1) {
      digest1 = store.Digest();
      stats1 = stats;
    } else {
      EXPECT_EQ(store.Digest(), digest1);
      EXPECT_EQ(stats.analyzed, stats1.analyzed);
      EXPECT_EQ(stats.classified, stats1.classified);
      EXPECT_EQ(stats.diurnal, stats1.diurnal);
    }
  }
}

TEST(StoreAnalyzer, UnprobedBlocksAreSkippedNotClassified) {
  BlockStore store;
  store.Reset(3, {}, 16);
  store.SeedBlock(0, 10, 0.5);
  store.SeedBlock(1, 11, 0.5);  // never observed: no rounds
  store.SeedBlock(2, 12, 0.5);
  for (std::int64_t r = 0; r < 8; ++r) {
    store.Observe(0, 1, 2);
    store.Observe(2, 0, 2);
    store.AppendSeriesSample(0, r, store.ShortTerm(0));
    store.AppendSeriesSample(2, r, store.ShortTerm(2));
  }
  const auto stats = core::AnalyzeStore(store, StoreAnalyzerConfig{}, 1);
  EXPECT_EQ(stats.analyzed, 2u);
  EXPECT_EQ(stats.classified, 0u) << "8 samples is far short of 2 days";
  EXPECT_EQ(store.flags()[1] & core::kBlockFlagProbed, 0);
  EXPECT_NE(store.flags()[0] & core::kBlockFlagProbed, 0);
}

TEST(StoreAnalyzer, GoertzelScreenOnlyEverDowngradesToNonDiurnal) {
  // Same samples, screen off vs on: the screen may only replace a
  // diurnal verdict with non-diurnal (the triaged FFT skip), never the
  // reverse, and must leave every other column untouched.
  constexpr std::size_t kBlocks = 48;
  BlockStore off;
  BlockStore on;
  off.Reset(kBlocks, {}, 300);
  on.Reset(kBlocks, {}, 300);
  DriveBoth(off, kBlocks, 280, 300, 0xd1a);
  DriveBoth(on, kBlocks, 280, 300, 0xd1a);

  StoreAnalyzerConfig screened;
  screened.goertzel_screen = true;
  const auto stats_off = core::AnalyzeStore(off, StoreAnalyzerConfig{}, 1);
  const auto stats_on = core::AnalyzeStore(on, screened, 1);

  ASSERT_GT(stats_off.diurnal, 0u)
      << "synthetic sampler should produce diurnal blocks";
  EXPECT_EQ(stats_on.analyzed, stats_off.analyzed);
  EXPECT_EQ(stats_on.classified, stats_off.classified);
  EXPECT_LE(stats_on.diurnal, stats_off.diurnal);
  constexpr auto kNonDiurnal =
      static_cast<std::uint8_t>(core::Diurnality::kNonDiurnal);
  for (std::size_t i = 0; i < kBlocks; ++i) {
    if (on.classification()[i] != off.classification()[i]) {
      EXPECT_EQ(on.classification()[i], kNonDiurnal)
          << "screen invented a verdict for block " << i;
    }
    EXPECT_EQ(on.mean_short()[i], off.mean_short()[i]) << "block " << i;
    EXPECT_EQ(on.observed_days()[i], off.observed_days()[i]) << "block " << i;
  }
}

}  // namespace
}  // namespace sleepwalk
