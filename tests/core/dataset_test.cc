#include "sleepwalk/core/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sleepwalk/sim/block.h"

namespace sleepwalk::core {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

BlockAnalysis MakeAnalysis(std::uint32_t index, int samples) {
  BlockAnalysis analysis;
  analysis.block = net::Prefix24::FromIndex(index);
  analysis.ever_active = 120;
  analysis.probed = true;
  analysis.short_series.first_round = 5;
  analysis.short_series.values.resize(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    analysis.short_series.values[static_cast<std::size_t>(i)] =
        0.5 + 0.25 * std::sin(i * 0.01);
  }
  return analysis;
}

TEST(Dataset, WriteReadRoundTrip) {
  const auto path = TempPath("roundtrip.slpw");
  std::vector<BlockAnalysis> analyses = {MakeAnalysis(100, 300),
                                         MakeAnalysis(200, 150)};
  analyses[1].probed = false;
  ASSERT_TRUE(WriteDataset(path, analyses, 660, 12345));

  const auto dataset = ReadDataset(path);
  ASSERT_TRUE(dataset.has_value());
  EXPECT_EQ(dataset->round_seconds, 660);
  EXPECT_EQ(dataset->epoch_sec, 12345);
  ASSERT_EQ(dataset->blocks.size(), 2u);

  const auto& first = dataset->blocks[0];
  EXPECT_EQ(first.block.Index(), 100u);
  EXPECT_EQ(first.ever_active, 120);
  EXPECT_TRUE(first.probed);
  EXPECT_EQ(first.series.first_round, 5);
  ASSERT_EQ(first.series.size(), 300u);
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_NEAR(first.series.values[i],
                analyses[0].short_series.values[i], 1e-6)
        << i;  // float32 storage: ~7 significant digits
  }
  EXPECT_FALSE(dataset->blocks[1].probed);
  std::remove(path.c_str());
}

TEST(Dataset, EmptyDataset) {
  const auto path = TempPath("empty.slpw");
  ASSERT_TRUE(WriteDataset(path, {}));
  const auto dataset = ReadDataset(path);
  ASSERT_TRUE(dataset.has_value());
  EXPECT_TRUE(dataset->blocks.empty());
  std::remove(path.c_str());
}

TEST(Dataset, MissingFileRejected) {
  EXPECT_FALSE(ReadDataset("/nonexistent/nowhere.slpw").has_value());
}

TEST(Dataset, BadMagicRejected) {
  const auto path = TempPath("badmagic.slpw");
  {
    std::ofstream out{path, std::ios::binary};
    out << "NOPE and some more bytes to get past the header";
  }
  EXPECT_FALSE(ReadDataset(path).has_value());
  std::remove(path.c_str());
}

TEST(Dataset, TruncationRejected) {
  const auto path = TempPath("trunc.slpw");
  const std::vector<BlockAnalysis> analyses = {MakeAnalysis(7, 400)};
  ASSERT_TRUE(WriteDataset(path, analyses));

  // Read the bytes, rewrite truncated versions: all must be rejected.
  std::ifstream in{path, std::ios::binary};
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  for (const std::size_t keep :
       {bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_FALSE(ReadDataset(path).has_value()) << "kept " << keep;
  }
  std::remove(path.c_str());
}

TEST(Dataset, ReanalyzeRecoversClassification) {
  // Measure a diurnal block, persist, reload, re-classify: the verdict
  // must survive the float32 round trip.
  sim::BlockSpec spec;
  spec.block = net::Prefix24::FromIndex(555);
  spec.seed = 3;
  spec.n_always = 30;
  spec.n_diurnal = 120;
  spec.response_prob = 0.9F;
  spec.on_duration_sec = 9.0F * 3600.0F;
  spec.phase_spread_sec = 1.5F * 3600.0F;

  sim::SimTransport transport{8};
  transport.AddBlock(&spec);
  AnalyzerConfig config;
  BlockAnalyzer analyzer{spec.block, sim::EverActiveOctets(spec), 0.8, 2,
                         config};
  const probing::RoundScheduler scheduler{config.schedule};
  analyzer.RunCampaign(transport, scheduler.RoundsForDays(10));
  const auto original = analyzer.Finish();
  ASSERT_TRUE(original.diurnal.IsDiurnal());

  const auto path = TempPath("reanalyze.slpw");
  const std::vector<BlockAnalysis> analyses = {original};
  ASSERT_TRUE(WriteDataset(path, analyses));
  const auto dataset = ReadDataset(path);
  ASSERT_TRUE(dataset.has_value());
  const auto reloaded = Reanalyze(dataset->blocks.front(), config);

  EXPECT_EQ(reloaded.diurnal.classification,
            original.diurnal.classification);
  EXPECT_EQ(reloaded.observed_days, original.observed_days);
  EXPECT_NEAR(reloaded.mean_short, original.mean_short, 1e-6);
  EXPECT_NEAR(reloaded.diurnal.phase, original.diurnal.phase, 1e-4);
  std::remove(path.c_str());
}

TEST(Dataset, ReanalyzeUnprobedBlockStaysEmpty) {
  StoredSeries stored;
  stored.block = net::Prefix24::FromIndex(1);
  stored.probed = false;
  const auto analysis = Reanalyze(stored);
  EXPECT_FALSE(analysis.probed);
  EXPECT_FALSE(analysis.diurnal.IsDiurnal());
}

}  // namespace
}  // namespace sleepwalk::core
