// SLPW v2 robustness: every single-byte corruption and truncation must
// fail the strict loader; the tolerant loader must salvage the intact
// records and count the damaged ones; v1 files must still read; foreign
// versions must be refused.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sleepwalk/core/dataset.h"
#include "sleepwalk/net/checksum.h"
#include "sleepwalk/storage/bytes.h"

namespace sleepwalk::core {
namespace {

// Layout constants of the v2 container (see dataset.h):
// magic(4) + header(28) + header_crc(4), then per record len(4) + crc(4)
// + payload.
constexpr std::size_t kFirstRecord = 4 + 28 + 4;

BlockAnalysis MakeAnalysis(std::uint32_t index, int samples) {
  BlockAnalysis analysis;
  analysis.block = net::Prefix24::FromIndex(index);
  analysis.ever_active = 100 + static_cast<int>(index % 100);
  analysis.probed = true;
  analysis.short_series.first_round = 3;
  analysis.short_series.values.resize(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    analysis.short_series.values[static_cast<std::size_t>(i)] =
        0.25 + 0.5 * static_cast<double>((i * 37 + index) % 100) / 100.0;
  }
  return analysis;
}

std::vector<BlockAnalysis> TestAnalyses() {
  std::vector<BlockAnalysis> analyses;
  for (std::uint32_t i = 0; i < 5; ++i) {
    analyses.push_back(MakeAnalysis(1000 + 7 * i, 24 + static_cast<int>(i)));
  }
  analyses[3].probed = false;
  return analyses;
}

TEST(DatasetRobustness, StrictDecodeReportsCleanV2) {
  const auto bytes = EncodeDataset(TestAnalyses(), 660, 42);
  DatasetLoadReport report;
  const auto dataset = DecodeDataset(bytes, &report);
  ASSERT_TRUE(dataset.has_value()) << report.detail;
  EXPECT_EQ(report.version, kDatasetVersion);
  EXPECT_EQ(report.corrupt_records, 0);
  EXPECT_EQ(report.records_expected, 5u);
  EXPECT_EQ(dataset->blocks.size(), 5u);
  EXPECT_EQ(dataset->round_seconds, 660);
  EXPECT_EQ(dataset->epoch_sec, 42);
}

TEST(DatasetRobustness, EverySingleByteCorruptionFailsStrictDecode) {
  const auto bytes = EncodeDataset(TestAnalyses(), 660, 42);
  auto corrupted = bytes;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    corrupted[i] = bytes[i] ^ 0xA5;
    DatasetLoadReport report;
    EXPECT_FALSE(DecodeDataset(corrupted, &report).has_value())
        << "flip at byte " << i << " went undetected";
    EXPECT_TRUE(report.bad_magic || report.version_refused ||
                report.corrupt_records > 0)
        << "flip at byte " << i << " reported nothing";
    corrupted[i] = bytes[i];
  }
}

TEST(DatasetRobustness, EveryTruncationFailsStrictDecode) {
  const auto bytes = EncodeDataset(TestAnalyses(), 660, 42);
  for (std::size_t length = 0; length < bytes.size(); ++length) {
    const std::span<const std::uint8_t> prefix{bytes.data(), length};
    EXPECT_FALSE(DecodeDataset(prefix).has_value())
        << "truncation to " << length << " bytes went undetected";
  }
}

TEST(DatasetRobustness, TolerantDecodeSalvagesAroundOneBadRecord) {
  const auto analyses = TestAnalyses();
  auto bytes = EncodeDataset(analyses, 660, 42);
  // Flip a payload byte of record 0 (offset +8 skips its len and crc,
  // +2 lands inside the block index field).
  bytes[kFirstRecord + 8 + 2] ^= 0xFF;

  EXPECT_FALSE(DecodeDataset(bytes).has_value());

  DatasetLoadReport report;
  const auto salvaged = DecodeDatasetTolerant(bytes, &report);
  ASSERT_TRUE(salvaged.has_value());
  EXPECT_EQ(report.corrupt_records, 1);
  EXPECT_EQ(report.records_expected, 5u);
  ASSERT_EQ(salvaged->blocks.size(), 4u);
  // The survivors are the records after the damaged one, in order.
  for (std::size_t i = 0; i < salvaged->blocks.size(); ++i) {
    EXPECT_EQ(salvaged->blocks[i].block.Index(),
              analyses[i + 1].block.Index());
    EXPECT_EQ(salvaged->blocks[i].series.size(),
              analyses[i + 1].short_series.size());
  }
}

TEST(DatasetRobustness, TolerantDecodeStopsAtABrokenFrameChain) {
  const auto analyses = TestAnalyses();
  const auto bytes = EncodeDataset(analyses, 660, 42);
  // Cut into the last record's payload: its frame is no longer whole,
  // and nothing after it is locatable.
  const std::span<const std::uint8_t> truncated{bytes.data(),
                                                bytes.size() - 5};
  DatasetLoadReport report;
  const auto salvaged = DecodeDatasetTolerant(truncated, &report);
  ASSERT_TRUE(salvaged.has_value());
  EXPECT_EQ(report.corrupt_records, 1);
  EXPECT_EQ(salvaged->blocks.size(), analyses.size() - 1);
}

TEST(DatasetRobustness, TolerantDecodeStillRefusesABrokenHeader) {
  auto bytes = EncodeDataset(TestAnalyses(), 660, 42);
  bytes[9] ^= 0x10;  // inside round_seconds, under the header CRC
  DatasetLoadReport report;
  EXPECT_FALSE(DecodeDatasetTolerant(bytes, &report).has_value());
  EXPECT_GE(report.corrupt_records, 1);
}

TEST(DatasetRobustness, ForeignVersionIsRefusedNotMisread) {
  auto bytes = EncodeDataset(TestAnalyses(), 660, 42);
  bytes[4] = 9;  // version u32 LSB: 2 -> 9 (no such format)
  DatasetLoadReport report;
  EXPECT_FALSE(DecodeDataset(bytes, &report).has_value());
  EXPECT_TRUE(report.version_refused);
  EXPECT_FALSE(DecodeDatasetTolerant(bytes).has_value());
}

TEST(DatasetRobustness, V2BodyMasqueradingAsV3IsRefused) {
  // Version says columnar, the body is framed v2: the columnar parser
  // must fail closed (header CRC covers the version field), never
  // misread frames as a column directory.
  auto bytes = EncodeDataset(TestAnalyses(), 660, 42);
  bytes[4] = 3;
  DatasetLoadReport report;
  EXPECT_FALSE(DecodeDataset(bytes, &report).has_value());
  EXPECT_GE(report.corrupt_records, 1);
}

TEST(DatasetRobustness, V1FilesStillRead) {
  // Hand-built v1: unframed records, no checksums.
  storage::ByteWriter out;
  const char magic[4] = {'S', 'L', 'P', 'W'};
  out.PutBytes(std::span{reinterpret_cast<const std::uint8_t*>(magic), 4});
  out.Put(std::uint32_t{1});      // version
  out.Put(std::int64_t{660});     // round_seconds
  out.Put(std::int64_t{99});      // epoch_sec
  out.Put(std::uint64_t{1});      // block_count
  out.Put(std::uint32_t{4242});   // record: block index
  out.Put(std::uint16_t{77});     //   ever_active
  out.Put(std::uint8_t{1});       //   probed
  out.Put(std::int64_t{2});       //   first_round
  out.Put(std::uint32_t{3});      //   n_samples
  out.Put(0.25F);
  out.Put(0.5F);
  out.Put(0.75F);
  const auto bytes = out.Take();

  DatasetLoadReport report;
  const auto dataset = DecodeDataset(bytes, &report);
  ASSERT_TRUE(dataset.has_value()) << report.detail;
  EXPECT_EQ(report.version, 1u);
  ASSERT_EQ(dataset->blocks.size(), 1u);
  EXPECT_EQ(dataset->blocks[0].block.Index(), 4242u);
  EXPECT_EQ(dataset->blocks[0].ever_active, 77);
  EXPECT_TRUE(dataset->blocks[0].probed);
  EXPECT_EQ(dataset->blocks[0].series.first_round, 2);
  ASSERT_EQ(dataset->blocks[0].series.size(), 3u);
  EXPECT_DOUBLE_EQ(dataset->blocks[0].series.values[1], 0.5);

  // v1 truncation is still a detected failure.
  const std::span<const std::uint8_t> truncated{bytes.data(),
                                                bytes.size() - 2};
  DatasetLoadReport bad;
  EXPECT_FALSE(DecodeDataset(truncated, &bad).has_value());
  EXPECT_GE(bad.corrupt_records, 1);
}

}  // namespace
}  // namespace sleepwalk::core
