#include "sleepwalk/core/quick_screen.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "sleepwalk/core/diurnal.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::core {
namespace {

constexpr int kRoundsPerDay = 131;

std::vector<double> DailySine(int days, double amplitude, double noise,
                              std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> series(static_cast<std::size_t>(days * kRoundsPerDay));
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double t = static_cast<double>(i) / kRoundsPerDay;
    series[i] = 0.5 + amplitude * std::cos(2.0 * std::numbers::pi * t) +
                noise * rng.NextGaussian();
  }
  return series;
}

TEST(QuickScreen, PureDiurnalScoresHigh) {
  const auto result = QuickDiurnalScreen(DailySine(14, 0.3, 0.0, 1), 14);
  EXPECT_TRUE(result.pass);
  // A pure sinusoid scores ~sqrt(n/2) ~= 30 for a 14-day series.
  EXPECT_GT(result.score, 20.0);
}

TEST(QuickScreen, WhiteNoiseScoresLow) {
  Rng rng{5};
  std::vector<double> noise(14 * kRoundsPerDay);
  for (auto& v : noise) v = 0.5 + 0.1 * rng.NextGaussian();
  const auto result = QuickDiurnalScreen(noise, 14);
  EXPECT_FALSE(result.pass);
  EXPECT_LT(result.score, 2.0);
}

TEST(QuickScreen, FlatSeriesScoresZero) {
  const std::vector<double> flat(14 * kRoundsPerDay, 0.7);
  const auto result = QuickDiurnalScreen(flat, 14);
  EXPECT_FALSE(result.pass);
  EXPECT_DOUBLE_EQ(result.score, 0.0);
}

TEST(QuickScreen, NoisyDiurnalStillPasses) {
  const auto result = QuickDiurnalScreen(DailySine(14, 0.25, 0.1, 7), 14);
  EXPECT_TRUE(result.pass);
}

TEST(QuickScreen, HarmonicOnlySignalPasses) {
  // Energy at 2 cycles/day only (relaxed-diurnal shape).
  std::vector<double> series(14 * kRoundsPerDay);
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double t = static_cast<double>(i) / kRoundsPerDay;
    series[i] = 0.5 + 0.3 * std::cos(2.0 * std::numbers::pi * 2.0 * t);
  }
  const auto result = QuickDiurnalScreen(series, 14);
  EXPECT_TRUE(result.pass);
  EXPECT_GT(result.harmonic_amplitude, result.daily_amplitude);
}

TEST(QuickScreen, OffDailyPeriodicityFails) {
  // Power at 5 cycles/day: strong periodicity, but not daily — the
  // screen must not pass it (neither must the full classifier).
  std::vector<double> series(14 * kRoundsPerDay);
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double t = static_cast<double>(i) / kRoundsPerDay;
    series[i] = 0.5 + 0.3 * std::cos(2.0 * std::numbers::pi * 5.0 * t);
  }
  EXPECT_FALSE(QuickDiurnalScreen(series, 14).pass);
}

TEST(QuickScreen, DegenerateInputs) {
  EXPECT_FALSE(QuickDiurnalScreen({}, 14).pass);
  const std::vector<double> short_series(5, 0.5);
  EXPECT_FALSE(QuickDiurnalScreen(short_series, 14).pass);
  EXPECT_FALSE(QuickDiurnalScreen(DailySine(14, 0.3, 0.0, 1), 1).pass);
}

// The screening contract: (almost) no true diurnal block is rejected —
// the screen only saves FFTs on clearly non-diurnal blocks.
class ScreenRecall : public ::testing::TestWithParam<double> {};

TEST_P(ScreenRecall, DiurnalBlocksPassAcrossNoiseLevels) {
  const double noise = GetParam();
  int passed = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    const auto series =
        DailySine(14, 0.2, noise, 100 + static_cast<std::uint64_t>(trial));
    const auto screen = QuickDiurnalScreen(series, 14);
    const auto full = ClassifyDiurnal(series, 14);
    // If the full classifier says diurnal, the screen must agree.
    if (full.IsDiurnal()) {
      EXPECT_TRUE(screen.pass) << "screen rejected a diurnal block";
    }
    if (screen.pass) ++passed;
  }
  if (noise < 0.15) {
    EXPECT_EQ(passed, trials);
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, ScreenRecall,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2, 0.4),
                         [](const auto& info) {
                           return "noise" + std::to_string(static_cast<int>(
                                                info.param * 100));
                         });

}  // namespace
}  // namespace sleepwalk::core
