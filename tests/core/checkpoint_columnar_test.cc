// SLCK v3 columnar checkpoints (core/checkpoint.h,
// SupervisorConfig::checkpoint_format = 3): the paper-scale encoding
// must uphold the exact robustness contract the v2 suite established —
// deterministic encode, decode→re-encode byte identity, every
// single-byte corruption and truncation detected — plus the v3-only
// guarantees: estimator columns persisted per completed block, and
// kill/resume byte identity through the zero-copy Env::Map load path,
// even when the formats differ across restarts.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sleepwalk/core/checkpoint.h"
#include "sleepwalk/core/supervisor.h"
#include "sleepwalk/obs/context.h"
#include "sleepwalk/obs/metrics.h"
#include "sleepwalk/sim/world.h"
#include "sleepwalk/storage/file.h"
#include "sleepwalk/storage/instrumented_env.h"

namespace sleepwalk {
namespace {

constexpr char kPath[] = "/campaign/ck.slck";

sim::SimWorld SmallWorld() {
  sim::WorldConfig config;
  config.total_blocks = 8;
  config.seed = 0xc0ffee;
  return sim::SimWorld::Generate(config);
}

std::vector<core::BlockTarget> TargetsOf(const sim::SimWorld& world) {
  std::vector<core::BlockTarget> targets;
  for (const auto& block : world.blocks()) {
    targets.push_back({block.spec.block, sim::EverActiveOctets(block.spec),
                       sim::TrueAvailability(block.spec, 13 * 3600)});
  }
  return targets;
}

core::SupervisorConfig ColumnarConfig(storage::Env& env) {
  core::SupervisorConfig config;
  config.checkpoint_path = kPath;
  config.checkpoint_format = core::kCheckpointVersionColumnar;
  config.env = &env;
  return config;
}

core::CampaignOutcome RunOnce(const sim::SimWorld& world,
                              core::SupervisorConfig config) {
  auto transport = world.MakeTransport(3);
  return core::RunResilientCampaign(TargetsOf(world), *transport, 30, config);
}

std::vector<std::uint8_t> FileBytes(storage::Env& env,
                                    const std::string& path) {
  std::vector<std::uint8_t> bytes;
  const auto error = env.ReadAll(path, bytes);
  EXPECT_TRUE(error.ok()) << error.ToString();
  return bytes;
}

TEST(CheckpointColumnar, DecodeReencodeIsByteIdentical) {
  storage::MemEnv env;
  const auto outcome = RunOnce(SmallWorld(), ColumnarConfig(env));
  ASSERT_GT(outcome.stats.checkpoints_written, 0u);

  const auto bytes = FileBytes(env, kPath);
  core::CheckpointLoadReport report;
  const auto checkpoint = core::DecodeCheckpoint(bytes, &report);
  ASSERT_TRUE(checkpoint.has_value()) << report.detail;
  EXPECT_EQ(report.version, core::kCheckpointVersionColumnar);
  EXPECT_EQ(report.corrupt_sections, 0);
  EXPECT_EQ(report.generation, checkpoint->stats.checkpoints_written);
  EXPECT_EQ(core::EncodeCheckpointColumnar(*checkpoint), bytes);
  EXPECT_EQ(core::EncodeCheckpointAs(*checkpoint,
                                     core::kCheckpointVersionColumnar),
            bytes);

  // v3 carries per-completed-block estimator state, parallel to
  // `completed` — the column v2's frozen layout could never hold.
  EXPECT_EQ(checkpoint->estimators.size(), checkpoint->completed.size());
  ASSERT_FALSE(checkpoint->completed.empty());
  bool any_rounds = false;
  for (const auto& estimator : checkpoint->estimators) {
    any_rounds = any_rounds || estimator.rounds > 0;
  }
  EXPECT_TRUE(any_rounds) << "estimator columns decoded as defaults";
}

TEST(CheckpointColumnar, EverySingleByteCorruptionIsDetected) {
  storage::MemEnv env;
  RunOnce(SmallWorld(), ColumnarConfig(env));
  const auto bytes = FileBytes(env, kPath);
  ASSERT_FALSE(bytes.empty());

  auto corrupted = bytes;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    corrupted[i] = bytes[i] ^ 0xA5;
    core::CheckpointLoadReport report;
    EXPECT_FALSE(core::DecodeCheckpoint(corrupted, &report).has_value())
        << "flip at byte " << i << " went undetected";
    EXPECT_TRUE(report.bad_magic || report.version_refused ||
                report.corrupt_sections > 0)
        << "flip at byte " << i << " reported nothing";
    corrupted[i] = bytes[i];
  }
}

TEST(CheckpointColumnar, EveryTruncationIsDetected) {
  storage::MemEnv env;
  RunOnce(SmallWorld(), ColumnarConfig(env));
  const auto bytes = FileBytes(env, kPath);
  ASSERT_FALSE(bytes.empty());

  for (std::size_t length = 0; length < bytes.size(); ++length) {
    const std::span<const std::uint8_t> cut{bytes.data(), length};
    EXPECT_FALSE(core::DecodeCheckpoint(cut).has_value())
        << "truncation to " << length << " bytes went undetected";
  }
}

TEST(CheckpointColumnar, BothFormatsDecodeToTheSameCampaignState) {
  storage::MemEnv env;
  RunOnce(SmallWorld(), ColumnarConfig(env));
  const auto v3_bytes = FileBytes(env, kPath);
  const auto v3 = core::DecodeCheckpoint(v3_bytes);
  ASSERT_TRUE(v3.has_value());

  // Round-trip the same logical checkpoint through v2: everything v2
  // can represent must survive; only the estimator columns are v3-only.
  const auto v2_bytes = core::EncodeCheckpointAs(*v3, core::kCheckpointVersion);
  core::CheckpointLoadReport report;
  const auto v2 = core::DecodeCheckpoint(v2_bytes, &report);
  ASSERT_TRUE(v2.has_value()) << report.detail;
  EXPECT_EQ(report.version, core::kCheckpointVersion);
  EXPECT_TRUE(v2->estimators.empty());

  auto with_estimators = *v2;
  with_estimators.estimators = v3->estimators;
  EXPECT_EQ(core::EncodeCheckpointColumnar(with_estimators), v3_bytes)
      << "v2 dropped state the v3 container carries (beyond estimators)";
}

TEST(CheckpointColumnar, KilledCampaignResumesByteIdentically) {
  const auto world = SmallWorld();

  storage::MemEnv clean_env;
  const auto clean = RunOnce(world, ColumnarConfig(clean_env));
  const auto clean_file = FileBytes(clean_env, kPath);

  storage::MemEnv env;
  auto config = ColumnarConfig(env);
  config.stop_after_rounds = 100;
  const auto killed = RunOnce(world, config);
  EXPECT_TRUE(killed.stopped_early);

  config.stop_after_rounds = 0;
  const auto resumed = RunOnce(world, config);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_FALSE(resumed.stopped_early);

  ASSERT_EQ(resumed.result.analyses.size(), clean.result.analyses.size());

  // The graceful kill writes one checkpoint the uninterrupted timeline
  // never does, so checkpoints_written (and with it the generation
  // header) runs one ahead; everything else in the final file must be
  // byte-identical. Normalize that one counter and compare bytes.
  auto final_ckpt = core::DecodeCheckpoint(FileBytes(env, kPath));
  const auto clean_ckpt = core::DecodeCheckpoint(clean_file);
  ASSERT_TRUE(final_ckpt.has_value());
  ASSERT_TRUE(clean_ckpt.has_value());
  EXPECT_EQ(final_ckpt->stats.checkpoints_written,
            clean_ckpt->stats.checkpoints_written + 1);
  final_ckpt->stats.checkpoints_written =
      clean_ckpt->stats.checkpoints_written;
  EXPECT_EQ(core::EncodeCheckpointColumnar(*final_ckpt), clean_file);

  // The columnar outcome mirror must also converge: estimator columns
  // for blocks finished before the kill came back through the v3
  // estimator columns, not defaults.
  EXPECT_EQ(resumed.store.Digest(), clean.store.Digest());
}

TEST(CheckpointColumnar, FormatSwitchAcrossRestartsResumes) {
  const auto world = SmallWorld();

  // Uninterrupted v2 reference for the result bytes.
  storage::MemEnv ref_env;
  auto ref_config = ColumnarConfig(ref_env);
  ref_config.checkpoint_format = core::kCheckpointVersion;
  const auto reference = RunOnce(world, ref_config);

  // Kill under v2, resume writing v3: Load() reads either format.
  storage::MemEnv env;
  auto config = ColumnarConfig(env);
  config.checkpoint_format = core::kCheckpointVersion;
  config.stop_after_rounds = 100;
  RunOnce(world, config);

  config.checkpoint_format = core::kCheckpointVersionColumnar;
  config.stop_after_rounds = 0;
  const auto resumed = RunOnce(world, config);
  EXPECT_TRUE(resumed.resumed);
  ASSERT_EQ(resumed.result.analyses.size(), reference.result.analyses.size());
  EXPECT_EQ(resumed.result.counts.strict, reference.result.counts.strict);
  EXPECT_EQ(resumed.result.counts.relaxed, reference.result.counts.relaxed);

  core::CheckpointLoadReport report;
  const auto final_file = core::DecodeCheckpoint(FileBytes(env, kPath),
                                                 &report);
  ASSERT_TRUE(final_file.has_value());
  EXPECT_EQ(report.version, core::kCheckpointVersionColumnar);
}

TEST(CheckpointColumnar, LoadGoesThroughTheMapSeam) {
  storage::MemEnv mem;
  obs::Registry registry;
  obs::Context context;
  context.metrics = &registry;
  storage::InstrumentedEnv env{mem, context};
  auto config = ColumnarConfig(env);
  config.stop_after_rounds = 100;
  RunOnce(SmallWorld(), config);

  const auto* maps = registry.counter("storage_maps_total");
  ASSERT_NE(maps, nullptr);
  const double maps_before = maps->value();
  config.stop_after_rounds = 0;
  const auto resumed = RunOnce(SmallWorld(), config);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_GT(maps->value(), maps_before)
      << "checkpoint resume no longer uses the zero-copy Map path";
}

}  // namespace
}  // namespace sleepwalk
