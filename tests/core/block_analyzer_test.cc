#include "sleepwalk/core/block_analyzer.h"

#include <gtest/gtest.h>

#include "sleepwalk/sim/block.h"
#include "sleepwalk/sim/survey.h"

namespace sleepwalk::core {
namespace {

sim::BlockSpec DiurnalSpec() {
  sim::BlockSpec spec;
  spec.block = net::Prefix24::FromIndex(500);
  spec.seed = 0x11;
  spec.n_always = 30;
  spec.n_diurnal = 120;
  spec.response_prob = 0.95F;
  spec.on_start_sec = 8.0F * 3600.0F;
  spec.on_duration_sec = 9.0F * 3600.0F;
  spec.phase_spread_sec = 2.0F * 3600.0F;
  return spec;
}

sim::BlockSpec AlwaysOnSpec() {
  sim::BlockSpec spec;
  spec.block = net::Prefix24::FromIndex(501);
  spec.seed = 0x22;
  spec.n_always = 100;
  spec.response_prob = 0.9F;
  return spec;
}

AnalyzerConfig TwoWeekConfig() {
  AnalyzerConfig config;
  config.schedule.epoch_sec = 0;
  return config;
}

BlockAnalysis Analyze(const sim::BlockSpec& spec, int days,
                      const AnalyzerConfig& config, std::uint64_t seed = 3) {
  sim::SimTransport transport{seed};
  transport.AddBlock(&spec);
  probing::RoundScheduler scheduler{config.schedule};
  BlockAnalyzer analyzer{spec.block, sim::EverActiveOctets(spec),
                         sim::TrueAvailability(spec, 12 * 3600), seed, config};
  analyzer.RunCampaign(transport, scheduler.RoundsForDays(days));
  return analyzer.Finish();
}

TEST(BlockAnalyzer, DetectsDiurnalBlock) {
  const auto analysis = Analyze(DiurnalSpec(), 14, TwoWeekConfig());
  ASSERT_TRUE(analysis.probed);
  EXPECT_EQ(analysis.observed_days, 14);
  EXPECT_TRUE(analysis.diurnal.IsDiurnal())
      << "strongest bin " << analysis.diurnal.strongest_bin;
}

TEST(BlockAnalyzer, AlwaysOnBlockIsNonDiurnal) {
  const auto analysis = Analyze(AlwaysOnSpec(), 14, TwoWeekConfig());
  ASSERT_TRUE(analysis.probed);
  EXPECT_FALSE(analysis.diurnal.IsDiurnal());
  EXPECT_TRUE(analysis.stationarity.stationary);
}

TEST(BlockAnalyzer, ShortTermTracksTruthOnAverage) {
  const auto spec = AlwaysOnSpec();
  const auto analysis = Analyze(spec, 14, TwoWeekConfig());
  ASSERT_TRUE(analysis.probed);
  // True A = 0.9 (always-on with response prob 0.9).
  EXPECT_NEAR(analysis.mean_short, 0.9, 0.06);
}

TEST(BlockAnalyzer, OperationalConservative) {
  const auto analysis = Analyze(AlwaysOnSpec(), 14, TwoWeekConfig());
  ASSERT_TRUE(analysis.probed);
  EXPECT_LT(analysis.final_operational, 0.9);
  EXPECT_GE(analysis.final_operational, 0.1);
}

TEST(BlockAnalyzer, SparseBlockSkippedByPolicy) {
  sim::BlockSpec spec;
  spec.block = net::Prefix24::FromIndex(502);
  spec.n_always = 8;  // below the 15-address policy minimum
  const auto analysis = Analyze(spec, 14, TwoWeekConfig());
  EXPECT_FALSE(analysis.probed);
  EXPECT_EQ(analysis.ever_active, 8);
}

TEST(BlockAnalyzer, PolicyThresholdConfigurable) {
  sim::BlockSpec spec;
  spec.block = net::Prefix24::FromIndex(503);
  spec.seed = 0x9;
  spec.n_always = 8;
  spec.response_prob = 0.9F;
  auto config = TwoWeekConfig();
  config.min_ever_active = 5;
  const auto analysis = Analyze(spec, 14, config);
  EXPECT_TRUE(analysis.probed);
}

TEST(BlockAnalyzer, EmptyEverActiveDegradesToSkippedEvenWithZeroPolicy) {
  // min_ever_active <= 0 must not feed an empty E(b) into the walker
  // (which would throw); the block degrades to "skipped".
  AnalyzerConfig config;
  config.min_ever_active = 0;
  BlockAnalyzer analyzer{net::Prefix24::FromIndex(504), {}, 0.5, 1, config};
  EXPECT_FALSE(analyzer.probing_enabled());
  EXPECT_FALSE(analyzer.Finish().probed);
}

TEST(BlockAnalyzer, ProbeBudgetStaysTrinocularScale) {
  // Paper: outage detection needs < 20 probes/hour/block. 11-minute
  // rounds -> ~5.45 rounds/hour, so mean probes/round must stay small
  // for a healthy block.
  const auto analysis = Analyze(AlwaysOnSpec(), 7, TwoWeekConfig());
  ASSERT_TRUE(analysis.probed);
  EXPECT_LT(analysis.mean_probes_per_round, 3.0);
  EXPECT_LT(analysis.mean_probes_per_round * 60.0 / 11.0, 20.0);
}

TEST(BlockAnalyzer, OutageDetectedAndRecorded) {
  auto spec = AlwaysOnSpec();
  // Outage on day 5, lasting 6 hours.
  spec.outage_start_sec = 5 * 86400;
  spec.outage_end_sec = 5 * 86400 + 6 * 3600;
  // Seed chosen so the healthy 9 days around the outage are free of
  // unlucky all-negative rounds (a ~0.1%/round event at response 0.9)
  // and the first detected outage is the injected one.
  const auto analysis = Analyze(spec, 14, TwoWeekConfig(), /*seed=*/2);
  ASSERT_TRUE(analysis.probed);
  EXPECT_GT(analysis.down_rounds, 10);
  ASSERT_FALSE(analysis.outage_starts.empty());
  // First detected outage round should be near round 5*86400/660 = 654.
  EXPECT_NEAR(static_cast<double>(analysis.outage_starts.front()), 654.0,
              5.0);
}

TEST(BlockAnalyzer, NoFalseOutagesOnHealthyBlock) {
  // Same seed as OutageDetectedAndRecorded: its clean baseline.
  const auto analysis = Analyze(AlwaysOnSpec(), 14, TwoWeekConfig(),
                                /*seed=*/2);
  ASSERT_TRUE(analysis.probed);
  EXPECT_EQ(analysis.down_rounds, 0)
      << "A-hat_o conservatism should prevent false outages";
}

TEST(BlockAnalyzer, DiurnalBlockLowAtNightIsNotAnOutage) {
  // The low-availability phase of a diurnal block must not read as a
  // nightly outage: 30 of 150 addresses stay up all night, so down
  // verdicts should be a small fraction of the ~900 night rounds (an
  // occasional unlucky all-negative round is expected — this is exactly
  // the false-outage pressure that motivates the conservative A-hat_o).
  const auto analysis = Analyze(DiurnalSpec(), 14, TwoWeekConfig());
  ASSERT_TRUE(analysis.probed);
  const auto total_rounds =
      probing::RoundScheduler{TwoWeekConfig().schedule}.RoundsForDays(14);
  EXPECT_LT(analysis.down_rounds, total_rounds / 10);
}

TEST(BlockAnalyzer, SeriesIsMidnightAligned) {
  auto config = TwoWeekConfig();
  config.schedule.epoch_sec = 7 * 3600;  // campaign starts at 07:00 UTC
  const auto analysis = Analyze(DiurnalSpec(), 14, config);
  ASSERT_TRUE(analysis.probed);
  const std::int64_t start_sec =
      config.schedule.epoch_sec +
      analysis.short_series.first_round * config.schedule.round_seconds;
  EXPECT_LT(start_sec % 86400, config.schedule.round_seconds);
  EXPECT_EQ(analysis.observed_days, 13);  // one partial day trimmed away
}

TEST(BlockAnalyzer, EstimatorAccessibleDuringRun) {
  const auto spec = AlwaysOnSpec();
  sim::SimTransport transport{1};
  transport.AddBlock(&spec);
  BlockAnalyzer analyzer{spec.block, sim::EverActiveOctets(spec), 0.9, 1,
                         TwoWeekConfig()};
  ASSERT_TRUE(analyzer.probing_enabled());
  analyzer.RunRound(transport, 0);
  EXPECT_EQ(analyzer.estimator().rounds_observed(), 1);
  EXPECT_EQ(analyzer.raw_series().size(), 1u);
}

}  // namespace
}  // namespace sleepwalk::core
