#include "sleepwalk/rdns/dns_resolver.h"

#include <gtest/gtest.h>

#include "sleepwalk/rdns/classifier.h"
#include "sleepwalk/rdns/names.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::rdns {
namespace {

TEST(InMemoryPtrResolver, ResolvesAddedRecord) {
  InMemoryPtrResolver resolver;
  const net::Ipv4Addr addr{192, 0, 2, 5};
  resolver.AddRecord(addr, "dsl-192-0-2-5.example.net");
  const auto name = resolver.Resolve(addr);
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(*name, "dsl-192-0-2-5.example.net");
  EXPECT_EQ(resolver.queries_served(), 1u);
}

TEST(InMemoryPtrResolver, UnknownAddressIsNxDomain) {
  InMemoryPtrResolver resolver;
  EXPECT_FALSE(resolver.Resolve(net::Ipv4Addr{10, 1, 2, 3}).has_value());
}

TEST(InMemoryPtrResolver, ReplacementWins) {
  InMemoryPtrResolver resolver;
  const net::Ipv4Addr addr{192, 0, 2, 5};
  resolver.AddRecord(addr, "old.example.net");
  resolver.AddRecord(addr, "new.example.net");
  EXPECT_EQ(resolver.record_count(), 1u);
  EXPECT_EQ(*resolver.Resolve(addr), "new.example.net");
}

TEST(InMemoryPtrResolver, BlockLoadSkipsEmptyNames) {
  InMemoryPtrResolver resolver;
  const auto block = net::Prefix24::FromIndex(77);
  std::vector<std::string> names(256);
  names[1] = "sta-1.example.net";
  names[200] = "sta-200.example.net";
  resolver.AddBlock(block, names);
  EXPECT_EQ(resolver.record_count(), 2u);
  EXPECT_TRUE(resolver.Resolve(block.Address(1)).has_value());
  EXPECT_FALSE(resolver.Resolve(block.Address(2)).has_value());
}

TEST(ResolveBlock, ReturnsFullVector) {
  InMemoryPtrResolver resolver;
  const auto block = net::Prefix24::FromIndex(99);
  resolver.AddRecord(block.Address(10), "dyn-10.example.net");
  const auto names = ResolveBlock(resolver, block);
  ASSERT_EQ(names.size(), 256u);
  EXPECT_EQ(names[10], "dyn-10.example.net");
  EXPECT_TRUE(names[11].empty());
  EXPECT_EQ(resolver.queries_served(), 256u);
}

TEST(ResolveBlock, EndToEndWithSynthesizerAndClassifier) {
  // Full §2.3.3 path over real DNS bytes: synthesize a dynamic block's
  // PTR zone, resolve all 256 names through the codec, classify.
  Rng rng{0xe2e};
  const auto block = net::Prefix24::FromIndex(1234);
  const auto names = SynthesizeBlockNames(block, AccessTech::kDynamic,
                                          "example-br.net", 0.8, rng);
  InMemoryPtrResolver resolver;
  resolver.AddBlock(block, names);

  const auto resolved = ResolveBlock(resolver, block);
  const auto label = ClassifyBlock(resolved);
  EXPECT_TRUE(label.has_any);
  EXPECT_NE(label.label & MaskOf(LinkKeyword::kDyn), 0);
}

TEST(ResolveBlock, NamesSurviveWireRoundTripExactly) {
  Rng rng{0x99};
  const auto block = net::Prefix24::FromIndex(4321);
  const auto names = SynthesizeBlockNames(block, AccessTech::kDsl,
                                          "example-de.net", 1.0, rng);
  InMemoryPtrResolver resolver;
  resolver.AddBlock(block, names);
  const auto resolved = ResolveBlock(resolver, block);
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(resolved[i], names[i]) << "octet " << i;
  }
}

TEST(UdpPtrResolver, FactoryConstructs) {
  // A UDP socket needs no privileges; construction should succeed even
  // offline (queries will just time out).
  auto resolver = MakeUdpPtrResolver(net::Ipv4Addr{127, 0, 0, 1},
                                     /*timeout_ms=*/50);
  ASSERT_NE(resolver, nullptr);
  // No DNS server on loopback:53 in the test environment; expect a
  // clean nullopt (timeout), not a crash.
  EXPECT_FALSE(resolver->Resolve(net::Ipv4Addr{192, 0, 2, 1}).has_value());
}

}  // namespace
}  // namespace sleepwalk::rdns
