#include "sleepwalk/rdns/dns_codec.h"

#include <gtest/gtest.h>

#include "sleepwalk/util/rng.h"

namespace sleepwalk::rdns {
namespace {

TEST(ReverseName, Formats) {
  EXPECT_EQ(ReverseName(net::Ipv4Addr(192, 0, 2, 1)),
            "1.2.0.192.in-addr.arpa");
  EXPECT_EQ(ReverseName(net::Ipv4Addr(0, 0, 0, 0)),
            "0.0.0.0.in-addr.arpa");
  EXPECT_EQ(ReverseName(net::Ipv4Addr(255, 255, 255, 255)),
            "255.255.255.255.in-addr.arpa");
}

TEST(ReverseName, ParseRoundTrip) {
  for (const auto addr :
       {net::Ipv4Addr{1, 9, 21, 42}, net::Ipv4Addr{10, 0, 0, 1},
        net::Ipv4Addr{203, 0, 113, 250}}) {
    const auto parsed = ParseReverseName(ReverseName(addr));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, addr);
  }
}

TEST(ReverseName, ParseAcceptsTrailingDot) {
  const auto parsed = ParseReverseName("1.2.0.192.in-addr.arpa.");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ToString(), "192.0.2.1");
}

TEST(ReverseName, ParseRejectsNonReverse) {
  EXPECT_FALSE(ParseReverseName("example.com").has_value());
  EXPECT_FALSE(ParseReverseName("1.2.3.in-addr.arpa").has_value());
  EXPECT_FALSE(ParseReverseName("a.b.c.d.in-addr.arpa").has_value());
  EXPECT_FALSE(ParseReverseName("").has_value());
  EXPECT_FALSE(ParseReverseName("in-addr.arpa").has_value());
}

TEST(EncodeName, BasicLabels) {
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(EncodeName("www.example.com", out));
  const std::vector<std::uint8_t> expected = {
      3, 'w', 'w', 'w', 7, 'e', 'x', 'a', 'm', 'p', 'l', 'e',
      3, 'c', 'o', 'm', 0};
  EXPECT_EQ(out, expected);
}

TEST(EncodeName, TrailingDotAccepted) {
  std::vector<std::uint8_t> with_dot;
  std::vector<std::uint8_t> without;
  ASSERT_TRUE(EncodeName("example.com.", with_dot));
  ASSERT_TRUE(EncodeName("example.com", without));
  EXPECT_EQ(with_dot, without);
}

TEST(EncodeName, RejectsOversizedLabel) {
  std::vector<std::uint8_t> out;
  const std::string big_label(64, 'a');
  EXPECT_FALSE(EncodeName(big_label + ".com", out));
}

TEST(EncodeName, RejectsOversizedName) {
  std::vector<std::uint8_t> out;
  std::string name;
  for (int i = 0; i < 50; ++i) name += "abcdef.";
  name += "com";
  EXPECT_FALSE(EncodeName(name, out));
}

TEST(EncodeName, RejectsEmptyLabel) {
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(EncodeName("a..b", out));
}

TEST(DecodeName, RoundTripsAndLowercases) {
  std::vector<std::uint8_t> buffer;
  ASSERT_TRUE(EncodeName("DSL-Pool.Example.NET", buffer));
  std::size_t offset = 0;
  const auto name = DecodeName(buffer, offset);
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(*name, "dsl-pool.example.net");
  EXPECT_EQ(offset, buffer.size());
}

TEST(DecodeName, FollowsCompressionPointer) {
  // Message: [name at 0][pointer at end -> 0].
  std::vector<std::uint8_t> buffer;
  ASSERT_TRUE(EncodeName("host.example.com", buffer));
  const std::size_t pointer_at = buffer.size();
  buffer.push_back(0xc0);
  buffer.push_back(0x00);
  std::size_t offset = pointer_at;
  const auto name = DecodeName(buffer, offset);
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(*name, "host.example.com");
  EXPECT_EQ(offset, pointer_at + 2) << "offset resumes after the pointer";
}

TEST(DecodeName, PartialNameThenPointer) {
  // "mail" + pointer to "example.com" inside an earlier name.
  std::vector<std::uint8_t> buffer;
  ASSERT_TRUE(EncodeName("www.example.com", buffer));
  const std::size_t example_offset = 4;  // skip "3www"
  const std::size_t start = buffer.size();
  buffer.push_back(4);
  buffer.push_back('m');
  buffer.push_back('a');
  buffer.push_back('i');
  buffer.push_back('l');
  buffer.push_back(static_cast<std::uint8_t>(0xc0 | (example_offset >> 8)));
  buffer.push_back(static_cast<std::uint8_t>(example_offset & 0xff));
  std::size_t offset = start;
  const auto name = DecodeName(buffer, offset);
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(*name, "mail.example.com");
}

TEST(DecodeName, RejectsPointerLoop) {
  // A pointer that refers to itself-ish via an earlier pointer.
  std::vector<std::uint8_t> buffer = {0xc0, 0x02, 0xc0, 0x00};
  std::size_t offset = 2;
  EXPECT_FALSE(DecodeName(buffer, offset).has_value());
}

TEST(DecodeName, RejectsForwardPointer) {
  std::vector<std::uint8_t> buffer = {0xc0, 0x02, 0x00};
  std::size_t offset = 0;
  EXPECT_FALSE(DecodeName(buffer, offset).has_value());
}

TEST(DecodeName, RejectsTruncation) {
  std::vector<std::uint8_t> buffer;
  ASSERT_TRUE(EncodeName("host.example.com", buffer));
  for (std::size_t cut = 0; cut < buffer.size(); ++cut) {
    std::size_t offset = 0;
    const std::span<const std::uint8_t> truncated{buffer.data(), cut};
    EXPECT_FALSE(DecodeName(truncated, offset).has_value())
        << "cut at " << cut;
  }
}

TEST(PtrQuery, BuildAndParse) {
  const net::Ipv4Addr addr{198, 51, 100, 7};
  const auto query = BuildPtrQuery(0xbeef, addr);
  const auto message = ParseMessage(query);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->header.id, 0xbeef);
  EXPECT_FALSE(message->header.is_response);
  EXPECT_EQ(message->header.question_count, 1);
  EXPECT_EQ(message->question_type, DnsType::kPtr);
  EXPECT_EQ(message->question_name, "7.100.51.198.in-addr.arpa");
}

TEST(PtrResponse, BuildAndParseWithCompression) {
  const net::Ipv4Addr addr{192, 0, 2, 33};
  const auto response =
      BuildPtrResponse(7, addr, "dyn-192-0-2-33.example.net");
  const auto message = ParseMessage(response);
  ASSERT_TRUE(message.has_value());
  EXPECT_TRUE(message->header.is_response);
  EXPECT_EQ(message->header.rcode, DnsRcode::kNoError);
  ASSERT_EQ(message->answers.size(), 1u);
  const auto& answer = message->answers.front();
  EXPECT_EQ(answer.type, DnsType::kPtr);
  // The answer's owner name was compressed to a pointer at the question.
  EXPECT_EQ(answer.name, "33.2.0.192.in-addr.arpa");
  EXPECT_EQ(answer.target, "dyn-192-0-2-33.example.net");
  EXPECT_EQ(answer.ttl, 3600u);
}

TEST(PtrResponse, EmptyTargetIsNxDomain) {
  const auto response = BuildPtrResponse(9, net::Ipv4Addr{10, 0, 0, 1}, "");
  const auto message = ParseMessage(response);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->header.rcode, DnsRcode::kNxDomain);
  EXPECT_TRUE(message->answers.empty());
}

TEST(ParseMessage, RejectsShortHeader) {
  const std::vector<std::uint8_t> tiny = {0, 1, 2};
  EXPECT_FALSE(ParseMessage(tiny).has_value());
}

TEST(ParseMessage, RejectsTruncatedAnswers) {
  const auto response = BuildPtrResponse(
      1, net::Ipv4Addr{192, 0, 2, 1}, "host.example.com");
  // Cut anywhere after the header: must never crash, and usually fails.
  for (std::size_t cut = kDnsHeaderSize; cut < response.size(); ++cut) {
    const std::span<const std::uint8_t> truncated{response.data(), cut};
    const auto message = ParseMessage(truncated);
    // Either rejected, or parsed with fewer answers than claimed -> the
    // claimed-count path must have failed cleanly.
    if (message.has_value()) {
      EXPECT_LT(message->answers.size(), 2u);
    }
  }
}

TEST(ParseMessage, FuzzRandomBytesNeverCrash) {
  Rng rng{0xd5f2};
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> junk(rng.NextBelow(64));
    for (auto& byte : junk) {
      byte = static_cast<std::uint8_t>(rng.NextBelow(256));
    }
    (void)ParseMessage(junk);  // must not crash or overread
  }
  SUCCEED();
}

TEST(ParseMessage, FuzzBitFlippedResponses) {
  Rng rng{0xf11b};
  const auto valid = BuildPtrResponse(
      0x1234, net::Ipv4Addr{203, 0, 113, 9}, "adsl-9.example-jp.net");
  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = valid;
    const auto index = rng.NextBelow(mutated.size());
    mutated[index] ^= static_cast<std::uint8_t>(1 + rng.NextBelow(255));
    (void)ParseMessage(mutated);  // must not crash
  }
  SUCCEED();
}

}  // namespace
}  // namespace sleepwalk::rdns
