#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sleepwalk/rdns/classifier.h"
#include "sleepwalk/rdns/names.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::rdns {
namespace {

TEST(KeywordText, PaperOrder) {
  EXPECT_EQ(KeywordText(LinkKeyword::kSta), "sta");
  EXPECT_EQ(KeywordText(LinkKeyword::kDyn), "dyn");
  EXPECT_EQ(KeywordText(LinkKeyword::kWifi), "wifi");
  EXPECT_EQ(kKeywordCount, 16);
}

TEST(DiscardedKeywords, TheSevenAsterisked) {
  // rtr*, gw*, ded*, client*, sql*, wireless*, wifi*.
  EXPECT_TRUE(IsDiscardedKeyword(LinkKeyword::kRtr));
  EXPECT_TRUE(IsDiscardedKeyword(LinkKeyword::kGw));
  EXPECT_TRUE(IsDiscardedKeyword(LinkKeyword::kDed));
  EXPECT_TRUE(IsDiscardedKeyword(LinkKeyword::kClient));
  EXPECT_TRUE(IsDiscardedKeyword(LinkKeyword::kSql));
  EXPECT_TRUE(IsDiscardedKeyword(LinkKeyword::kWireless));
  EXPECT_TRUE(IsDiscardedKeyword(LinkKeyword::kWifi));
  int discarded = 0;
  for (int i = 0; i < kKeywordCount; ++i) {
    if (IsDiscardedKeyword(static_cast<LinkKeyword>(i))) ++discarded;
  }
  EXPECT_EQ(discarded, 7);
}

TEST(MatchAddressName, PaperExampleIsNonExclusive) {
  // "a reverse name of dhcp-dialup-001.example.com is marked as both
  //  DHCP and dial-up".
  const auto mask = MatchAddressName("dhcp-dialup-001.example.com");
  EXPECT_NE(mask & MaskOf(LinkKeyword::kDhcp), 0);
  EXPECT_NE(mask & MaskOf(LinkKeyword::kDial), 0);
  EXPECT_EQ(mask & MaskOf(LinkKeyword::kCable), 0);
}

TEST(MatchAddressName, CaseInsensitive) {
  const auto mask = MatchAddressName("DSL-Pool-1-2-3-4.Example.NET");
  EXPECT_NE(mask & MaskOf(LinkKeyword::kDsl), 0);
}

TEST(MatchAddressName, SubstringSemantics) {
  // "static" contains "sta"; "adsl" contains "dsl"; "residence" contains
  // "res" — the paper's matching is plain substring search, prefix
  // collisions included.
  EXPECT_NE(MatchAddressName("static-1.example.com") &
                MaskOf(LinkKeyword::kSta), 0);
  EXPECT_NE(MatchAddressName("adsl-1.example.com") &
                MaskOf(LinkKeyword::kDsl), 0);
  EXPECT_NE(MatchAddressName("residence-1.example.com") &
                MaskOf(LinkKeyword::kRes), 0);
  const auto wireless = MatchAddressName("wireless-1.example.com");
  EXPECT_NE(wireless & MaskOf(LinkKeyword::kWireless), 0);
}

TEST(MatchAddressName, EmptyAndFeatureless) {
  EXPECT_EQ(MatchAddressName(""), 0);
  EXPECT_EQ(MatchAddressName("host-1-2-3-4.example.com"), 0);
}

std::vector<std::string> Names(int count, const std::string& stem) {
  std::vector<std::string> names;
  for (int i = 0; i < count; ++i) {
    names.push_back(stem + std::to_string(i) + ".example.com");
  }
  return names;
}

TEST(ClassifyBlock, SingleDominantFeature) {
  const auto names = Names(100, "dyn-");
  const auto label = ClassifyBlock(names);
  EXPECT_TRUE(label.has_any);
  EXPECT_FALSE(label.multiple);
  EXPECT_NE(label.label & MaskOf(LinkKeyword::kDyn), 0);
  EXPECT_EQ(label.counts[static_cast<int>(LinkKeyword::kDyn)], 100);
}

TEST(ClassifyBlock, SuppressesMinorFeatures) {
  // 150 dsl names and 5 dhcp names: 5 * 15 < 150, so dhcp is suppressed.
  auto names = Names(150, "dsl-");
  const auto extra = Names(5, "dhcp-");
  names.insert(names.end(), extra.begin(), extra.end());
  const auto label = ClassifyBlock(names);
  EXPECT_NE(label.label & MaskOf(LinkKeyword::kDsl), 0);
  EXPECT_EQ(label.label & MaskOf(LinkKeyword::kDhcp), 0);
  EXPECT_FALSE(label.multiple);
}

TEST(ClassifyBlock, KeepsFeaturesAboveOneFifteenth) {
  // 150 dsl and 10 dhcp: 10 * 15 == 150, feature survives.
  auto names = Names(150, "dsl-");
  const auto extra = Names(10, "dhcp-");
  names.insert(names.end(), extra.begin(), extra.end());
  const auto label = ClassifyBlock(names);
  EXPECT_NE(label.label & MaskOf(LinkKeyword::kDhcp), 0);
  EXPECT_TRUE(label.multiple);
}

TEST(ClassifyBlock, DiscardedKeywordsExcludedByDefault) {
  const auto names = Names(50, "rtr-");
  const auto label = ClassifyBlock(names);
  EXPECT_FALSE(label.has_any);
  // ... but counts are still tracked.
  EXPECT_EQ(label.counts[static_cast<int>(LinkKeyword::kRtr)], 50);
}

TEST(ClassifyBlock, IncludeDiscardedOption) {
  const auto names = Names(50, "wifi-");
  ClassifierOptions options;
  options.include_discarded = true;
  const auto label = ClassifyBlock(names, options);
  EXPECT_NE(label.label & MaskOf(LinkKeyword::kWifi), 0);
}

TEST(ClassifyBlock, EmptyNamesNoFeatures) {
  const std::vector<std::string> names(256);
  const auto label = ClassifyBlock(names);
  EXPECT_FALSE(label.has_any);
  EXPECT_EQ(label.label, 0);
}

TEST(KeptKeywords, NineSurvive) {
  const auto kept = KeptKeywords();
  EXPECT_EQ(kept.size(), 9u);
  for (const auto keyword : kept) {
    EXPECT_FALSE(IsDiscardedKeyword(keyword));
  }
}

TEST(SynthesizeName, CarriesTechnologyToken) {
  Rng rng{1};
  for (int i = 0; i < 20; ++i) {
    const auto name = SynthesizeName(
        AccessTech::kDsl, net::Ipv4Addr{10, 0, 0, 1}, "example.net", rng);
    EXPECT_NE(MatchAddressName(name) & MaskOf(LinkKeyword::kDsl), 0)
        << name;
    EXPECT_NE(name.find("example.net"), std::string::npos);
  }
}

TEST(SynthesizeName, UnnamedHasNoFeatures) {
  Rng rng{2};
  for (int i = 0; i < 20; ++i) {
    const auto name = SynthesizeName(
        AccessTech::kUnnamed, net::Ipv4Addr{10, 0, 0, 7}, "example.net", rng);
    EXPECT_EQ(MatchAddressName(name), 0) << name;
  }
}

TEST(SynthesizeBlockNames, CoverageRespected) {
  Rng rng{3};
  const auto block = net::Prefix24::FromIndex(1000);
  const auto names = SynthesizeBlockNames(block, AccessTech::kDynamic,
                                          "example.net", 0.7, rng);
  ASSERT_EQ(names.size(), 256u);
  int named = 0;
  for (const auto& name : names) {
    if (!name.empty()) ++named;
  }
  EXPECT_GT(named, 256 * 0.55);
  EXPECT_LT(named, 256 * 0.85);
}

TEST(SynthesizeBlockNames, ClassifierRecoversTechnology) {
  // End-to-end: synthesized names for each named technology classify
  // back to the matching keyword.
  struct Case {
    AccessTech tech;
    LinkKeyword keyword;
  };
  const Case cases[] = {
      {AccessTech::kStatic, LinkKeyword::kSta},
      {AccessTech::kDynamic, LinkKeyword::kDyn},
      {AccessTech::kServer, LinkKeyword::kSrv},
      {AccessTech::kDhcp, LinkKeyword::kDhcp},
      {AccessTech::kPpp, LinkKeyword::kPpp},
      {AccessTech::kDsl, LinkKeyword::kDsl},
      {AccessTech::kDialup, LinkKeyword::kDial},
      {AccessTech::kCable, LinkKeyword::kCable},
      {AccessTech::kResidential, LinkKeyword::kRes},
  };
  for (const auto& test_case : cases) {
    Rng rng{42};
    const auto names = SynthesizeBlockNames(
        net::Prefix24::FromIndex(7), test_case.tech, "example.net", 0.8,
        rng);
    const auto label = ClassifyBlock(names);
    EXPECT_NE(label.label & MaskOf(test_case.keyword), 0)
        << AccessTechName(test_case.tech);
  }
}

TEST(AccessTechName, AllNamed) {
  EXPECT_EQ(AccessTechName(AccessTech::kDynamic), "dynamic");
  EXPECT_EQ(AccessTechName(AccessTech::kDialup), "dialup");
  EXPECT_EQ(AccessTechName(AccessTech::kUnnamed), "unnamed");
}

}  // namespace
}  // namespace sleepwalk::rdns
