// Metrics registry contract: instrument semantics (le-inclusive
// histogram buckets in particular), stable pointers, kind-collision
// safety, and byte-exact Prometheus/CSV exposition.
#include <gtest/gtest.h>

#include <sstream>

#include "sleepwalk/obs/metrics.h"

namespace sleepwalk::obs {
namespace {

TEST(Counter, AccumulatesDeltas) {
  Counter c;
  c.Inc();
  c.Inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.Set(10.0);
  g.Add(-4.0);
  EXPECT_DOUBLE_EQ(g.value(), 6.0);
}

TEST(Histogram, BucketEdgesAreLeInclusive) {
  Histogram h{{1.0, 2.0, 5.0}};
  h.Observe(0.5);   // <= 1
  h.Observe(1.0);   // <= 1 (boundary lands in its own bucket)
  h.Observe(1.001); // <= 2
  h.Observe(5.0);   // <= 5
  h.Observe(99.0);  // +Inf
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 5.0 + 99.0);
  EXPECT_EQ(h.CumulativeCount(0), 2u);  // le=1
  EXPECT_EQ(h.CumulativeCount(1), 3u);  // le=2
  EXPECT_EQ(h.CumulativeCount(2), 4u);  // le=5
}

TEST(Histogram, DegradesUnsortedBoundsToSortedUnique) {
  Histogram h{{5.0, 1.0, 5.0, 2.0}};
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_DOUBLE_EQ(h.bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.bounds()[1], 2.0);
  EXPECT_DOUBLE_EQ(h.bounds()[2], 5.0);
}

TEST(Registry, FindOrCreateReturnsStablePointers) {
  Registry registry;
  auto* a = registry.FindOrCreateCounter("x_total");
  auto* b = registry.FindOrCreateCounter("x_total");
  EXPECT_EQ(a, b);
  a->Inc();
  EXPECT_DOUBLE_EQ(registry.counter("x_total")->value(), 1.0);
}

TEST(Registry, KindCollisionReturnsNullInsteadOfAliasing) {
  Registry registry;
  ASSERT_NE(registry.FindOrCreateCounter("x"), nullptr);
  EXPECT_EQ(registry.kind_collisions(), 0u);
  EXPECT_EQ(registry.FindOrCreateGauge("x"), nullptr);
  EXPECT_EQ(registry.FindOrCreateHistogram("x", {1.0}), nullptr);
  // Every mismatched FindOrCreate is a dropped-updates hazard and is
  // counted (debug builds also print a diagnostic to stderr).
  EXPECT_EQ(registry.kind_collisions(), 2u);
  // Typed lookups of the wrong kind return null without counting: the
  // caller asked a question, it did not lose writes.
  EXPECT_EQ(registry.gauge("x"), nullptr);
  EXPECT_NE(registry.counter("x"), nullptr);
  EXPECT_EQ(registry.kind_collisions(), 2u);
}

TEST(Registry, PrometheusExpositionGolden) {
  Registry registry;
  registry.FindOrCreateGauge("blocks_done", "targets finished")->Set(3);
  registry.FindOrCreateCounter("rounds_total", "rounds run")->Inc(42);
  auto* h = registry.FindOrCreateHistogram("delay_seconds", {0.5, 2.0},
                                           "retry delay");
  h->Observe(0.25);
  h->Observe(1.0);
  h->Observe(10.0);

  std::ostringstream out;
  registry.WritePrometheus(out);
  EXPECT_EQ(out.str(),
            "# HELP sleepwalk_blocks_done targets finished\n"
            "# TYPE sleepwalk_blocks_done gauge\n"
            "sleepwalk_blocks_done 3\n"
            "# HELP sleepwalk_delay_seconds retry delay\n"
            "# TYPE sleepwalk_delay_seconds histogram\n"
            "sleepwalk_delay_seconds_bucket{le=\"0.5\"} 1\n"
            "sleepwalk_delay_seconds_bucket{le=\"2\"} 2\n"
            "sleepwalk_delay_seconds_bucket{le=\"+Inf\"} 3\n"
            "sleepwalk_delay_seconds_sum 11.25\n"
            "sleepwalk_delay_seconds_count 3\n"
            "# HELP sleepwalk_rounds_total rounds run\n"
            "# TYPE sleepwalk_rounds_total counter\n"
            "sleepwalk_rounds_total 42\n");
}

TEST(Registry, CsvExpositionGolden) {
  Registry registry;
  registry.FindOrCreateCounter("rounds_total")->Inc(2);
  registry.FindOrCreateGauge("blocks_done")->Set(1);
  auto* h = registry.FindOrCreateHistogram("delay_seconds", {0.5});
  h->Observe(0.1);

  std::ostringstream out;
  registry.WriteCsv(out);
  EXPECT_EQ(out.str(),
            "name,kind,field,value\n"
            "blocks_done,gauge,value,1\n"
            "delay_seconds,histogram,le=0.5,1\n"
            "delay_seconds,histogram,le=+Inf,1\n"
            "delay_seconds,histogram,sum,0.1\n"
            "delay_seconds,histogram,count,1\n"
            "delay_seconds,histogram,p50,0.25\n"
            "delay_seconds,histogram,p95,0.475\n"
            "delay_seconds,histogram,p99,0.495\n"
            "rounds_total,counter,value,2\n");
}

TEST(Registry, ExpositionIsDeterministicAcrossInsertionOrder) {
  Registry first;
  first.FindOrCreateCounter("a_total")->Inc();
  first.FindOrCreateCounter("b_total")->Inc();
  Registry second;
  second.FindOrCreateCounter("b_total")->Inc();
  second.FindOrCreateCounter("a_total")->Inc();

  std::ostringstream out_first;
  std::ostringstream out_second;
  first.WritePrometheus(out_first);
  second.WritePrometheus(out_second);
  EXPECT_EQ(out_first.str(), out_second.str());
}

}  // namespace
}  // namespace sleepwalk::obs
