// Logger contract: level filtering, both sink formats, JSON escaping,
// and the determinism rule (no wall clock in deterministic mode).
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>

#include "sleepwalk/obs/log.h"

namespace sleepwalk::obs {
namespace {

TEST(ParseLevel, RecognizesAllNamesCaseInsensitive) {
  EXPECT_EQ(ParseLevel("trace"), Level::kTrace);
  EXPECT_EQ(ParseLevel("DEBUG"), Level::kDebug);
  EXPECT_EQ(ParseLevel("Info"), Level::kInfo);
  EXPECT_EQ(ParseLevel("warn"), Level::kWarn);
  EXPECT_EQ(ParseLevel("error"), Level::kError);
  EXPECT_EQ(ParseLevel("off"), Level::kOff);
  EXPECT_EQ(ParseLevel("bogus", Level::kWarn), Level::kWarn);
  EXPECT_EQ(ParseLevel(""), Level::kInfo);
}

TEST(Logger, DisabledWithoutSinks) {
  Logger logger;
  EXPECT_FALSE(logger.Enabled(Level::kError));
  // Writing without sinks is a safe no-op.
  logger.Write(Level::kError, "ev", {});
}

TEST(Logger, LevelFiltering) {
  std::ostringstream text;
  Logger logger{LogConfig{Level::kWarn, true}};
  logger.AddTextSink(&text);
  EXPECT_FALSE(logger.Enabled(Level::kTrace));
  EXPECT_FALSE(logger.Enabled(Level::kInfo));
  EXPECT_TRUE(logger.Enabled(Level::kWarn));
  EXPECT_TRUE(logger.Enabled(Level::kError));
  EXPECT_FALSE(logger.Enabled(Level::kOff));

  logger.Write(Level::kInfo, "dropped", {});
  logger.Write(Level::kWarn, "kept", {});
  const auto out = text.str();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("kept"), std::string::npos);
}

TEST(Logger, TextFormatCarriesVirtualTimeAndFields) {
  std::ostringstream text;
  Logger logger;
  logger.AddTextSink(&text);
  logger.set_virtual_time(3960);
  logger.Write(Level::kInfo, "round.retry",
               {{"block", "1.2.3/24"},
                {"attempt", 2},
                {"delay_sec", 0.5},
                {"ok", false},
                {"count", std::uint64_t{7}}});
  EXPECT_EQ(text.str(),
            "INFO vt=3960 round.retry block=1.2.3/24 attempt=2 "
            "delay_sec=0.5 ok=false count=7\n");
}

TEST(Logger, JsonlFormatDeterministicMode) {
  std::ostringstream jsonl;
  Logger logger{LogConfig{Level::kDebug, /*deterministic=*/true}};
  logger.AddJsonlSink(&jsonl);
  logger.set_virtual_time(660);
  logger.Write(Level::kDebug, "belief.transition",
               {{"block", "9.8.7/24"}, {"to", "down"}, {"belief", 0.25}});
  EXPECT_EQ(jsonl.str(),
            "{\"vt\":660,\"lvl\":\"debug\",\"ev\":\"belief.transition\","
            "\"block\":\"9.8.7/24\",\"to\":\"down\",\"belief\":0.25}\n");
}

TEST(Logger, NonDeterministicModeAttachesWallClock) {
  std::ostringstream jsonl;
  Logger logger{LogConfig{Level::kInfo, /*deterministic=*/false}};
  logger.AddJsonlSink(&jsonl);
  logger.Write(Level::kInfo, "ev", {});
  EXPECT_NE(jsonl.str().find("\"wall_ns\":"), std::string::npos);

  std::ostringstream deterministic;
  Logger det{LogConfig{Level::kInfo, /*deterministic=*/true}};
  det.AddJsonlSink(&deterministic);
  det.Write(Level::kInfo, "ev", {});
  EXPECT_EQ(deterministic.str().find("wall_ns"), std::string::npos);
}

TEST(Logger, FanOutToBothSinkKinds) {
  std::ostringstream text;
  std::ostringstream jsonl;
  Logger logger;
  logger.AddTextSink(&text);
  logger.AddJsonlSink(&jsonl);
  logger.Write(Level::kInfo, "ev", {{"k", 1}});
  EXPECT_NE(text.str().find("ev k=1"), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"ev\":\"ev\""), std::string::npos);
}

TEST(AppendJsonEscaped, EscapesQuotesBackslashAndControls) {
  std::string out;
  AppendJsonEscaped(out, "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(out, "a\\\"b\\\\c\\nd\\te\\u0001f");
}

TEST(Logger, JsonEscapingAppliedToKeysAndValues) {
  std::ostringstream jsonl;
  Logger logger;
  logger.AddJsonlSink(&jsonl);
  logger.Write(Level::kInfo, "ev\"il", {{"k", "line1\nline2"}});
  EXPECT_EQ(jsonl.str(),
            "{\"vt\":-1,\"lvl\":\"info\",\"ev\":\"ev\\\"il\","
            "\"k\":\"line1\\nline2\"}\n");
}

TEST(Logger, NonFiniteDoublesSerializeAsStringsInJson) {
  std::ostringstream jsonl;
  Logger logger;
  logger.AddJsonlSink(&jsonl);
  logger.Write(Level::kInfo, "ev",
               {{"a", std::numeric_limits<double>::quiet_NaN()},
                {"b", std::numeric_limits<double>::infinity()}});
  const auto out = jsonl.str();
  EXPECT_NE(out.find("\"a\":\"nan\""), std::string::npos);
  EXPECT_NE(out.find("\"b\":\"inf\""), std::string::npos);
}

}  // namespace
}  // namespace sleepwalk::obs
