// Tracer contract: flame (start) order, nesting depth, deterministic
// sequence ticks, virtual-time stamping, and the determinism rule for
// wall-clock durations.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>

#include "sleepwalk/obs/trace.h"

namespace sleepwalk::obs {
namespace {

TEST(ScopedSpan, NullTracerIsANoOp) {
  ScopedSpan span{nullptr, "ignored"};
  ScopedSpan defaulted;
  // Destruction must not crash; nothing to assert beyond that.
}

TEST(Tracer, SpansNestAndRecordDepthInStartOrder) {
  Tracer tracer;
  tracer.set_virtual_time(100);
  {
    const auto outer = tracer.Span("outer");
    tracer.set_virtual_time(200);
    {
      const auto inner = tracer.Span("inner");
      const auto deeper = tracer.Span("deeper");
    }
    const auto sibling = tracer.Span("sibling");
  }
  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "deeper");
  EXPECT_EQ(spans[2].depth, 2);
  EXPECT_EQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[3].depth, 1);

  // Sequence ticks: start and end each consume one, strictly nested.
  EXPECT_LT(spans[0].seq_start, spans[1].seq_start);
  EXPECT_LT(spans[1].seq_start, spans[2].seq_start);
  EXPECT_LT(spans[2].seq_end, spans[1].seq_end);
  EXPECT_LT(spans[3].seq_end, spans[0].seq_end);

  EXPECT_EQ(spans[0].vt_start, 100);
  EXPECT_EQ(spans[1].vt_start, 200);
  for (const auto& span : spans) {
    EXPECT_FALSE(span.open);
    EXPECT_EQ(span.wall_ns, 0u) << "deterministic mode read a wall clock";
  }
}

TEST(Tracer, MovedFromGuardDoesNotDoubleEnd) {
  Tracer tracer;
  {
    ScopedSpan a = tracer.Span("only");
    ScopedSpan b = std::move(a);
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_FALSE(tracer.spans()[0].open);
  EXPECT_EQ(tracer.spans()[0].seq_end, 1u);
}

TEST(Tracer, WriteJsonlFlameOrderGolden) {
  Tracer tracer;
  tracer.set_virtual_time(10);
  {
    const auto outer = tracer.Span("campaign");
    const auto inner = tracer.Span("block");
  }
  std::ostringstream out;
  tracer.WriteJsonl(out);
  EXPECT_EQ(out.str(),
            "{\"name\":\"campaign\",\"depth\":0,\"seq\":[0,3],"
            "\"vt\":[10,10]}\n"
            "{\"name\":\"block\",\"depth\":1,\"seq\":[1,2],"
            "\"vt\":[10,10]}\n");
}

TEST(Tracer, OpenSpansAreMarkedInOutput) {
  Tracer tracer;
  const auto index = tracer.Start("unfinished");
  (void)index;
  std::ostringstream out;
  tracer.WriteJsonl(out);
  EXPECT_NE(out.str().find("\"open\":true"), std::string::npos);
}

TEST(Tracer, NonDeterministicModeRecordsWallDurations) {
  Tracer tracer{TraceConfig{/*deterministic=*/false}};
  {
    const auto span = tracer.Span("timed");
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  // steady_clock may tick 0ns on a fast machine, but the JSONL must at
  // least carry the field.
  std::ostringstream out;
  tracer.WriteJsonl(out);
  EXPECT_NE(out.str().find("\"wall_ns\":"), std::string::npos);
}

}  // namespace
}  // namespace sleepwalk::obs
