// Derived-telemetry exporters: Prometheus-style quantile estimation
// over histogram snapshots (exact interpolation values, the +Inf
// degradation, and the empty-histogram NaN) and the Chrome trace-event
// array (byte-exact structure, monotone ticks, determinism, and the
// open-span / wall_ns policies). The chrome output is cross-checked
// with the same tools/jsonl.h validator scripts/tier1.sh runs.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "jsonl.h"
#include "sleepwalk/obs/export.h"
#include "sleepwalk/obs/trace.h"

namespace sleepwalk::obs {
namespace {

HistogramSnapshot MakeSnapshot(std::vector<double> bounds,
                               std::vector<std::uint64_t> buckets) {
  HistogramSnapshot snapshot;
  snapshot.bounds = std::move(bounds);
  snapshot.buckets = std::move(buckets);
  snapshot.count = 0;
  for (const auto b : snapshot.buckets) snapshot.count += b;
  return snapshot;
}

TEST(HistogramQuantile, InterpolatesLinearlyInsideBuckets) {
  // 10 observations: 2 in (<=1], 6 in (1,2], 2 in (2,4], none beyond.
  const auto snapshot = MakeSnapshot({1.0, 2.0, 4.0}, {2, 6, 2, 0});
  // rank(p50) = 5 lands 3 observations into the 6-wide (1,2] bucket.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 0.50), 1.5);
  // rank(p95) = 9.5 lands 1.5 observations into the 2-wide (2,4] bucket.
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 0.95), 3.5);
}

TEST(HistogramQuantile, FirstFiniteBucketInterpolatesFromZero) {
  const auto snapshot = MakeSnapshot({10.0}, {4, 0});
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 0.50), 5.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 1.0), 10.0);
}

TEST(HistogramQuantile, InfBucketDegradesToLargestFiniteBound) {
  // 8 of 10 observations sit beyond every finite bound: the estimator
  // cannot see past the histogram, so high quantiles pin to it.
  const auto snapshot = MakeSnapshot({1.0, 2.0}, {1, 1, 8});
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 0.99), 2.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 1.0), 2.0);
}

TEST(HistogramQuantile, EmptyHistogramIsNaN) {
  const auto snapshot = MakeSnapshot({1.0, 2.0}, {0, 0, 0});
  EXPECT_TRUE(std::isnan(HistogramQuantile(snapshot, 0.50)));
}

TEST(HistogramQuantile, AllInfWithNoFiniteBoundsIsNaN) {
  const auto snapshot = MakeSnapshot({}, {5});
  EXPECT_TRUE(std::isnan(HistogramQuantile(snapshot, 0.50)));
}

TEST(HistogramQuantile, QuantileIsClampedToUnitInterval) {
  const auto snapshot = MakeSnapshot({1.0}, {2, 0});
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot, 2.0), 1.0);
}

TEST(HistogramQuantile, SummaryMatchesPointwiseEstimates) {
  const auto snapshot = MakeSnapshot({1.0, 2.0, 4.0}, {2, 6, 2, 0});
  const auto summary = SummarizeQuantiles(snapshot);
  EXPECT_DOUBLE_EQ(summary.p50, HistogramQuantile(snapshot, 0.50));
  EXPECT_DOUBLE_EQ(summary.p95, HistogramQuantile(snapshot, 0.95));
  EXPECT_DOUBLE_EQ(summary.p99, HistogramQuantile(snapshot, 0.99));
}

SpanRecord MakeSpan(std::string name, int depth, std::uint64_t seq_start,
                    std::uint64_t seq_end, std::int64_t vt_start,
                    std::int64_t vt_end, std::uint64_t wall_ns = 0) {
  SpanRecord span;
  span.name = std::move(name);
  span.depth = depth;
  span.seq_start = seq_start;
  span.seq_end = seq_end;
  span.vt_start = vt_start;
  span.vt_end = vt_end;
  span.wall_ns = wall_ns;
  span.open = false;
  return span;
}

TEST(WriteChromeTrace, EmptySpanSetIsAnEmptyArray) {
  std::ostringstream out;
  WriteChromeTrace(std::vector<SpanRecord>{}, out);
  EXPECT_EQ(out.str(), "[\n]\n");
}

TEST(WriteChromeTrace, EmitsNestedBeginEndPairsInTickOrder) {
  const std::vector<SpanRecord> spans = {
      MakeSpan("root", 0, 1, 6, 0, 3),
      MakeSpan("child", 1, 2, 3, 1, 2),
  };
  std::ostringstream out;
  WriteChromeTrace(spans, out);
  EXPECT_EQ(
      out.str(),
      "[\n"
      "{\"name\":\"root\",\"cat\":\"sleepwalk\",\"ph\":\"B\",\"pid\":1,"
      "\"tid\":1,\"ts\":1,\"args\":{\"vt\":0}},\n"
      "{\"name\":\"child\",\"cat\":\"sleepwalk\",\"ph\":\"B\",\"pid\":1,"
      "\"tid\":1,\"ts\":2,\"args\":{\"vt\":1}},\n"
      "{\"name\":\"child\",\"cat\":\"sleepwalk\",\"ph\":\"E\",\"pid\":1,"
      "\"tid\":1,\"ts\":3,\"args\":{\"vt\":2}},\n"
      "{\"name\":\"root\",\"cat\":\"sleepwalk\",\"ph\":\"E\",\"pid\":1,"
      "\"tid\":1,\"ts\":6,\"args\":{\"vt\":3}}\n"
      "]\n");
}

TEST(WriteChromeTrace, WallNanosOnlyRideOnEndEventsWhenNonZero) {
  const std::vector<SpanRecord> spans = {MakeSpan("io", 0, 1, 2, 0, 0, 42)};
  std::ostringstream out;
  WriteChromeTrace(spans, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":2,"
                      "\"args\":{\"vt\":0,\"wall_ns\":42}"),
            std::string::npos);
  // The begin event never carries wall time.
  EXPECT_EQ(text.find("\"ts\":1,\"args\":{\"vt\":0,\"wall_ns\""),
            std::string::npos);
}

TEST(WriteChromeTrace, OpenSpansAreSkipped) {
  std::vector<SpanRecord> spans = {MakeSpan("closed", 0, 1, 2, 0, 0)};
  SpanRecord open = MakeSpan("abandoned", 0, 3, 0, 0, -1);
  open.open = true;
  spans.push_back(open);
  std::ostringstream out;
  WriteChromeTrace(spans, out);
  EXPECT_EQ(out.str().find("abandoned"), std::string::npos);
  EXPECT_NE(out.str().find("closed"), std::string::npos);
}

TEST(WriteChromeTrace, EscapesSpanNames) {
  const std::vector<SpanRecord> spans = {
      MakeSpan("quote\"back\\slash\n", 0, 1, 2, 0, 0)};
  std::ostringstream out;
  WriteChromeTrace(spans, out);
  EXPECT_NE(out.str().find("quote\\\"back\\\\slash\\n"), std::string::npos);
}

/// Deterministic tracer runs produce byte-identical exports, and the
/// bytes satisfy the same well-formedness contract `jsonl_check
/// --chrome-trace` enforces in tier 1.
TEST(WriteChromeTrace, DeterministicAndValidUnderTheTier1Checker) {
  const auto run = [] {
    Tracer tracer;
    const auto campaign = tracer.Start("campaign");
    tracer.set_virtual_time(10);
    {
      const auto block = tracer.Start("block");
      tracer.set_virtual_time(20);
      tracer.End(block);
    }
    tracer.End(campaign);
    std::ostringstream out;
    WriteChromeTrace(tracer, out);
    return out.str();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);

  std::string error;
  std::size_t n_events = 0;
  EXPECT_TRUE(jsonl::CheckChromeTrace(first, error, &n_events)) << error;
  EXPECT_EQ(n_events, 4u);
}

}  // namespace
}  // namespace sleepwalk::obs
