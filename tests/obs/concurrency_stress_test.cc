// Multi-threaded stress of the obs subsystem's thread-safety contract
// (DESIGN.md §8): N threads hammer one Registry, one Logger, and one
// Tracer; afterwards every counter total must reconcile exactly and the
// JSONL sinks must contain only well-formed, whole lines. The CI `tsan`
// job runs this binary under -fsanitize=thread, which is what actually
// proves the locking discipline — the assertions here catch lost
// updates and torn lines even in a plain build.
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "jsonl.h"
#include "sleepwalk/obs/log.h"
#include "sleepwalk/obs/metrics.h"
#include "sleepwalk/obs/trace.h"

namespace sleepwalk::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kIters = 2000;

void RunThreads(const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(body, t);
  for (auto& thread : threads) thread.join();
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in{text};
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(ConcurrencyStress, RegistryCountersReconcile) {
  Registry registry;
  // Instrument creation races on purpose: every thread asks for the
  // same names and must get the same instruments back.
  RunThreads([&registry](int t) {
    Counter* shared = registry.FindOrCreateCounter("shared", "");
    Counter* mine = registry.FindOrCreateCounter(
        "per_thread_" + std::to_string(t), "");
    Gauge* gauge = registry.FindOrCreateGauge("last_round", "");
    Histogram* histogram =
        registry.FindOrCreateHistogram("latency", {1.0, 10.0, 100.0}, "");
    ASSERT_NE(shared, nullptr);
    ASSERT_NE(mine, nullptr);
    ASSERT_NE(gauge, nullptr);
    ASSERT_NE(histogram, nullptr);
    for (int i = 0; i < kIters; ++i) {
      shared->Inc();
      mine->Inc();
      gauge->Set(i);
      histogram->Observe(static_cast<double>(i % 200));
    }
  });

  // 2 + kThreads distinct instruments; every increment accounted for.
  EXPECT_EQ(registry.size(), static_cast<std::size_t>(kThreads) + 3);
  EXPECT_EQ(registry.counter("shared")->value(), kThreads * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter("per_thread_" + std::to_string(t))->value(),
              kIters);
  }
  const Histogram* histogram = registry.histogram("latency");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  // +Inf cumulative equals total: buckets and count moved together.
  EXPECT_EQ(histogram->CumulativeCount(2) +
                (histogram->count() - histogram->CumulativeCount(2)),
            histogram->count());

  // Exposition under (single-threaded) load parses line by line.
  std::ostringstream prom;
  registry.WritePrometheus(prom);
  EXPECT_FALSE(prom.str().empty());
}

TEST(ConcurrencyStress, LoggerEmitsWholeLines) {
  Logger logger{LogConfig{.level = Level::kInfo, .deterministic = true}};
  std::ostringstream text;
  std::ostringstream json;
  logger.AddTextSink(&text);
  logger.AddJsonlSink(&json);

  RunThreads([&logger](int t) {
    for (int i = 0; i < kIters; ++i) {
      logger.set_virtual_time(i);
      if (logger.Enabled(Level::kInfo)) {
        logger.Write(Level::kInfo, "stress.event",
                     {{"thread", t}, {"iter", i}, {"payload", "a\"b\\c"}});
      }
    }
  });

  const auto json_lines = Lines(json.str());
  const auto text_lines = Lines(text.str());
  ASSERT_EQ(json_lines.size(),
            static_cast<std::size_t>(kThreads) * kIters);
  ASSERT_EQ(text_lines.size(),
            static_cast<std::size_t>(kThreads) * kIters);
  // Torn writes would splice two records into one malformed line; the
  // strict parser from tools/jsonl.h rejects any such corruption.
  for (const auto& line : json_lines) {
    ASSERT_TRUE(jsonl::IsJsonObjectLine(line)) << line;
  }
  for (const auto& line : text_lines) {
    ASSERT_NE(line.find("stress.event"), std::string::npos) << line;
  }
}

TEST(ConcurrencyStress, TracerSpansBalance) {
  Tracer tracer{TraceConfig{.deterministic = true}};

  RunThreads([&tracer](int t) {
    (void)t;
    for (int i = 0; i < kIters / 4; ++i) {
      auto outer = tracer.Span("outer");
      { auto inner = tracer.Span("inner"); }
    }
  });

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads) * (kIters / 4) * 2);
  for (const auto& span : spans) {
    EXPECT_FALSE(span.open);
    EXPECT_LT(span.seq_start, span.seq_end);
  }

  std::ostringstream out;
  tracer.WriteJsonl(out);
  const auto lines = Lines(out.str());
  ASSERT_EQ(lines.size(), spans.size());
  for (const auto& line : lines) {
    ASSERT_TRUE(jsonl::IsJsonObjectLine(line)) << line;
  }
}

}  // namespace
}  // namespace sleepwalk::obs
