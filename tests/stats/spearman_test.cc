#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sleepwalk/stats/descriptive.h"

namespace sleepwalk::stats {
namespace {

TEST(Ranks, SimpleOrdering) {
  const std::vector<double> v = {30.0, 10.0, 20.0};
  EXPECT_EQ(Ranks(v), (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(Ranks, TiesGetAverageRank) {
  const std::vector<double> v = {1.0, 2.0, 2.0, 3.0};
  EXPECT_EQ(Ranks(v), (std::vector<double>{1.0, 2.5, 2.5, 4.0}));
}

TEST(Ranks, AllEqual) {
  const std::vector<double> v = {5.0, 5.0, 5.0};
  EXPECT_EQ(Ranks(v), (std::vector<double>{2.0, 2.0, 2.0}));
}

TEST(Spearman, PerfectMonotoneNonlinear) {
  // Spearman sees through monotone nonlinearity where Pearson dips.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.5 * i));
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(x, y), 0.9);
}

TEST(Spearman, PerfectInverse) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {100.0, 10.0, 1.0, 0.1};
  EXPECT_NEAR(SpearmanCorrelation(x, y), -1.0, 1e-12);
}

TEST(Spearman, KnownTextbookValue) {
  // Classic example: rho = 1 - 6*sum(d^2)/(n(n^2-1)).
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y = {2.0, 1.0, 4.0, 3.0, 5.0};
  // d = (1, -1, 1, -1, 0) -> sum d^2 = 4 -> rho = 1 - 24/120 = 0.8.
  EXPECT_NEAR(SpearmanCorrelation(x, y), 0.8, 1e-12);
}

TEST(Spearman, DegenerateInputs) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> bad = {1.0};
  EXPECT_DOUBLE_EQ(SpearmanCorrelation(x, bad), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({}, {}), 0.0);
  const std::vector<double> constant = {3.0, 3.0, 3.0};
  const std::vector<double> varying = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(SpearmanCorrelation(constant, varying), 0.0);
}

TEST(Spearman, InvariantToMonotoneTransform) {
  const std::vector<double> x = {3.0, 1.0, 4.0, 1.5, 5.0, 9.0, 2.0};
  const std::vector<double> y = {2.0, 7.0, 1.0, 8.0, 2.5, 0.5, 9.0};
  std::vector<double> x_cubed(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) x_cubed[i] = x[i] * x[i] * x[i];
  EXPECT_NEAR(SpearmanCorrelation(x, y),
              SpearmanCorrelation(x_cubed, y), 1e-12);
}

}  // namespace
}  // namespace sleepwalk::stats
