// Statistical calibration: the hypothesis tests must have their nominal
// error rates, or every p-value in Table 5 is meaningless.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sleepwalk/stats/anova.h"
#include "sleepwalk/stats/descriptive.h"
#include "sleepwalk/stats/distributions.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::stats {
namespace {

// Under the null hypothesis (factor unrelated to outcome) the p-value
// must be uniform on [0,1]: P(p < alpha) = alpha.
TEST(Calibration, SingleFactorPValueUniformUnderNull) {
  Rng rng{0xca11b};
  const int trials = 2000;
  const std::size_t n = 30;
  int below_05 = 0;
  int below_20 = 0;
  int below_50 = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> x(n);
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = rng.NextGaussian();
      y[i] = rng.NextGaussian();
    }
    const double p = SingleFactorPValue(y, x);
    if (p < 0.05) ++below_05;
    if (p < 0.20) ++below_20;
    if (p < 0.50) ++below_50;
  }
  EXPECT_NEAR(static_cast<double>(below_05) / trials, 0.05, 0.015);
  EXPECT_NEAR(static_cast<double>(below_20) / trials, 0.20, 0.03);
  EXPECT_NEAR(static_cast<double>(below_50) / trials, 0.50, 0.04);
}

TEST(Calibration, OneWayAnovaFalsePositiveRate) {
  Rng rng{0xca12b};
  const int trials = 1500;
  int significant = 0;
  for (int trial = 0; trial < trials; ++trial) {
    // Three groups of 8, all from the same distribution.
    std::vector<std::vector<double>> groups(3, std::vector<double>(8));
    for (auto& group : groups) {
      for (auto& v : group) v = rng.NextGaussian();
    }
    const auto table = OneWay(groups);
    ASSERT_TRUE(table.ok);
    if (table.terms.front().p_value < 0.05) ++significant;
  }
  EXPECT_NEAR(static_cast<double>(significant) / trials, 0.05, 0.02);
}

TEST(Calibration, FStatisticMatchesTheoreticalCdf) {
  // Monte Carlo F(3, 16) statistics vs the analytic CDF at its deciles.
  Rng rng{0xca13b};
  const int trials = 4000;
  std::vector<double> statistics;
  statistics.reserve(trials);
  for (int trial = 0; trial < trials; ++trial) {
    // F = (chi2_3/3) / (chi2_16/16) via sums of squared normals.
    double num = 0.0;
    double den = 0.0;
    for (int i = 0; i < 3; ++i) {
      const double z = rng.NextGaussian();
      num += z * z;
    }
    for (int i = 0; i < 16; ++i) {
      const double z = rng.NextGaussian();
      den += z * z;
    }
    statistics.push_back((num / 3.0) / (den / 16.0));
  }
  std::sort(statistics.begin(), statistics.end());
  for (double q = 0.1; q < 0.95; q += 0.2) {
    const double empirical =
        statistics[static_cast<std::size_t>(q * trials)];
    EXPECT_NEAR(FCdf(empirical, 3.0, 16.0), q, 0.03) << "quantile " << q;
  }
}

TEST(Calibration, InteractionPValueUniformUnderAdditiveNull) {
  // Additive truth, no interaction: the interaction test must not fire
  // above its nominal rate.
  Rng rng{0xca14b};
  const int trials = 1000;
  const std::size_t n = 40;
  int significant = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> x1(n);
    std::vector<double> x2(n);
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
      x1[i] = rng.NextDouble();
      x2[i] = rng.NextDouble();
      y[i] = x1[i] - x2[i] + 0.5 * rng.NextGaussian();
    }
    if (PairInteractionPValue(y, x1, x2) < 0.05) ++significant;
  }
  EXPECT_NEAR(static_cast<double>(significant) / trials, 0.05, 0.02);
}

TEST(Calibration, PowerGrowsWithEffectSize) {
  // Sanity on the other side: a real effect is detected increasingly
  // often as it grows.
  Rng rng{0xca15b};
  const std::size_t n = 25;
  const int trials = 300;
  double previous_power = -1.0;
  for (const double effect : {0.0, 0.3, 0.8, 2.0}) {
    int detected = 0;
    for (int trial = 0; trial < trials; ++trial) {
      std::vector<double> x(n);
      std::vector<double> y(n);
      for (std::size_t i = 0; i < n; ++i) {
        x[i] = rng.NextGaussian();
        y[i] = effect * x[i] + rng.NextGaussian();
      }
      if (SingleFactorPValue(y, x) < 0.05) ++detected;
    }
    const double power = static_cast<double>(detected) / trials;
    EXPECT_GT(power, previous_power - 0.05)
        << "power must not shrink as the effect grows";
    previous_power = power;
  }
  EXPECT_GT(previous_power, 0.95) << "a 2-sigma effect is near-certain";
}

}  // namespace
}  // namespace sleepwalk::stats
