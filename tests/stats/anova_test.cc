#include "sleepwalk/stats/anova.h"

#include <gtest/gtest.h>

#include <vector>

#include "sleepwalk/stats/distributions.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::stats {
namespace {

TEST(OneWay, HandComputedExample) {
  // Groups with means 2, 3, 7; between SS = 42 (df 2), within SS = 6
  // (df 6), F = 21.
  const std::vector<std::vector<double>> groups = {
      {1.0, 2.0, 3.0}, {2.0, 3.0, 4.0}, {6.0, 7.0, 8.0}};
  const auto table = OneWay(groups);
  ASSERT_TRUE(table.ok);
  ASSERT_EQ(table.terms.size(), 1u);
  const auto& term = table.terms.front();
  EXPECT_NEAR(term.sum_sq, 42.0, 1e-10);
  EXPECT_DOUBLE_EQ(term.df, 2.0);
  EXPECT_NEAR(table.residual_ss, 6.0, 1e-10);
  EXPECT_DOUBLE_EQ(table.residual_df, 6.0);
  EXPECT_NEAR(term.f, 21.0, 1e-10);
  EXPECT_GT(term.p_value, 0.0015);
  EXPECT_LT(term.p_value, 0.0025);
}

TEST(OneWay, IdenticalGroupsGiveHighP) {
  const std::vector<std::vector<double>> groups = {
      {1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}};
  const auto table = OneWay(groups);
  ASSERT_TRUE(table.ok);
  EXPECT_NEAR(table.terms.front().sum_sq, 0.0, 1e-12);
  EXPECT_GT(table.terms.front().p_value, 0.99);
}

TEST(OneWay, RejectsDegenerateInputs) {
  EXPECT_FALSE(OneWay({}).ok);
  const std::vector<std::vector<double>> one_group = {{1.0, 2.0}};
  EXPECT_FALSE(OneWay(one_group).ok);
  const std::vector<std::vector<double>> too_few = {{1.0}, {2.0}};
  EXPECT_FALSE(OneWay(too_few).ok);
}

TEST(OneWay, IgnoresEmptyGroupGracefully) {
  const std::vector<std::vector<double>> groups = {
      {1.0, 2.0, 3.0}, {}, {4.0, 5.0, 6.0}};
  const auto table = OneWay(groups);
  ASSERT_TRUE(table.ok);
  EXPECT_GT(table.terms.front().f, 0.0);
}

std::vector<ModelTerm> OneColumnTerm(const std::string& name,
                                     const std::vector<double>& column) {
  std::vector<ModelTerm> terms(1);
  terms[0].name = name;
  terms[0].columns.push_back(column);
  return terms;
}

TEST(SequentialAnova, SignalFactorIsSignificant) {
  Rng rng{17};
  const std::size_t n = 60;
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.NextDouble() * 10.0;
    y[i] = 2.0 * x[i] + rng.NextGaussian() * 0.5;
  }
  const auto table = SequentialAnova(OneColumnTerm("x", x), y);
  ASSERT_TRUE(table.ok);
  EXPECT_LT(table.terms.front().p_value, 1e-10);
}

TEST(SequentialAnova, NoiseFactorIsNotSignificant) {
  Rng rng{23};
  const std::size_t n = 60;
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.NextDouble();
    y[i] = rng.NextGaussian();
  }
  const auto table = SequentialAnova(OneColumnTerm("noise", x), y);
  ASSERT_TRUE(table.ok);
  EXPECT_GT(table.terms.front().p_value, 0.01);
}

TEST(SequentialAnova, SumsOfSquaresDecompose) {
  Rng rng{31};
  const std::size_t n = 40;
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.NextDouble();
    x2[i] = rng.NextDouble();
    y[i] = x1[i] - 0.5 * x2[i] + 0.3 * rng.NextGaussian();
  }
  std::vector<ModelTerm> terms(2);
  terms[0].name = "x1";
  terms[0].columns.push_back(x1);
  terms[1].name = "x2";
  terms[1].columns.push_back(x2);
  const auto table = SequentialAnova(terms, y);
  ASSERT_TRUE(table.ok);
  ASSERT_EQ(table.terms.size(), 2u);

  // Type-I SS plus residual SS must equal the total SS around the mean.
  double total = 0.0;
  double mean = 0.0;
  for (const double v : y) mean += v;
  mean /= static_cast<double>(n);
  for (const double v : y) total += (v - mean) * (v - mean);
  const double decomposed = table.terms[0].sum_sq + table.terms[1].sum_sq +
                            table.residual_ss;
  EXPECT_NEAR(decomposed, total, 1e-8 * total);
  EXPECT_DOUBLE_EQ(table.residual_df, static_cast<double>(n - 3));
}

TEST(SequentialAnova, OrderMattersForCorrelatedPredictors) {
  // With collinear-ish predictors the first term absorbs shared variance:
  // that is the defining property of Type-I (sequential) SS.
  Rng rng{41};
  const std::size_t n = 80;
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.NextDouble();
    x2[i] = 0.9 * x1[i] + 0.1 * rng.NextDouble();
    y[i] = x1[i] + x2[i] + 0.1 * rng.NextGaussian();
  }
  std::vector<ModelTerm> forward(2);
  forward[0] = {"x1", {x1}};
  forward[1] = {"x2", {x2}};
  std::vector<ModelTerm> reverse(2);
  reverse[0] = {"x2", {x2}};
  reverse[1] = {"x1", {x1}};
  const auto t1 = SequentialAnova(forward, y);
  const auto t2 = SequentialAnova(reverse, y);
  ASSERT_TRUE(t1.ok);
  ASSERT_TRUE(t2.ok);
  EXPECT_GT(t1.terms[0].sum_sq, t1.terms[1].sum_sq);
  EXPECT_GT(t2.terms[0].sum_sq, t2.terms[1].sum_sq);
  // Residuals agree regardless of entry order.
  EXPECT_NEAR(t1.residual_ss, t2.residual_ss, 1e-8);
}

TEST(SingleFactorPValue, MatchesSequential) {
  Rng rng{55};
  const std::size_t n = 30;
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.NextDouble();
    y[i] = 3.0 * x[i] + rng.NextGaussian();
  }
  const double p = SingleFactorPValue(y, x);
  const auto table = SequentialAnova(OneColumnTerm("x", x), y);
  EXPECT_DOUBLE_EQ(p, table.terms.front().p_value);
}

TEST(PairInteractionPValue, DetectsPureInteraction) {
  Rng rng{67};
  const std::size_t n = 100;
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.NextDouble() * 2.0 - 1.0;
    x2[i] = rng.NextDouble() * 2.0 - 1.0;
    y[i] = 5.0 * x1[i] * x2[i] + 0.2 * rng.NextGaussian();
  }
  EXPECT_LT(PairInteractionPValue(y, x1, x2), 1e-10);
}

TEST(PairInteractionPValue, AdditiveModelHasNoInteraction) {
  Rng rng{71};
  const std::size_t n = 100;
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.NextDouble();
    x2[i] = rng.NextDouble();
    y[i] = 2.0 * x1[i] - x2[i] + 0.3 * rng.NextGaussian();
  }
  EXPECT_GT(PairInteractionPValue(y, x1, x2), 0.01);
}

TEST(PairInteractionPValue, SizeMismatchReturnsOne) {
  const std::vector<double> y = {1.0, 2.0, 3.0};
  const std::vector<double> x = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(PairInteractionPValue(y, x, x), 1.0);
}

}  // namespace
}  // namespace sleepwalk::stats
