#include "sleepwalk/stats/distributions.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sleepwalk::stats {
namespace {

TEST(IncompleteBeta, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, InvalidArguments) {
  EXPECT_TRUE(std::isnan(RegularizedIncompleteBeta(0.0, 1.0, 0.5)));
  EXPECT_TRUE(std::isnan(RegularizedIncompleteBeta(1.0, -1.0, 0.5)));
  EXPECT_TRUE(std::isnan(RegularizedIncompleteBeta(1.0, 1.0,
                                                   std::nan(""))));
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (const double x : {0.1, 0.25, 0.5, 0.77, 0.99}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-13);
  }
}

TEST(IncompleteBeta, ClosedFormA1) {
  // I_x(1, b) = 1 - (1-x)^b.
  for (const double b : {1.0, 2.5, 7.0}) {
    for (const double x : {0.1, 0.4, 0.9}) {
      EXPECT_NEAR(RegularizedIncompleteBeta(1.0, b, x),
                  1.0 - std::pow(1.0 - x, b), 1e-12);
    }
  }
}

TEST(IncompleteBeta, KnownPolynomialValues) {
  // I_x(2, 3) = 6x^2 - 8x^3 + 3x^4; at x=0.5 this is 11/16.
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 3.0, 0.5), 0.6875, 1e-12);
  // I_x(2, 2) = 3x^2 - 2x^3; at x=0.25 this is 0.15625.
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 2.0, 0.25), 0.15625, 1e-12);
}

TEST(IncompleteBeta, SymmetryRelation) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (const double x : {0.05, 0.3, 0.6, 0.95}) {
    const double lhs = RegularizedIncompleteBeta(3.5, 1.25, x);
    const double rhs = 1.0 - RegularizedIncompleteBeta(1.25, 3.5, 1.0 - x);
    EXPECT_NEAR(lhs, rhs, 1e-12);
  }
}

TEST(IncompleteBeta, Monotone) {
  double previous = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    const double value = RegularizedIncompleteBeta(2.7, 4.1, x);
    EXPECT_GE(value, previous);
    previous = value;
  }
}

TEST(FDistribution, CdfPlusSurvivalIsOne) {
  for (const double f : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(FCdf(f, 3.0, 12.0) + FSurvival(f, 3.0, 12.0), 1.0, 1e-12);
  }
}

TEST(FDistribution, F11ClosedForm) {
  // F(1,1): CDF(f) = (2/pi) * atan(sqrt(f)).
  for (const double f : {0.25, 1.0, 4.0, 100.0}) {
    EXPECT_NEAR(FCdf(f, 1.0, 1.0),
                2.0 / M_PI * std::atan(std::sqrt(f)), 1e-12);
  }
}

TEST(FDistribution, MedianOfF11IsOne) {
  EXPECT_NEAR(FCdf(1.0, 1.0, 1.0), 0.5, 1e-12);
}

TEST(FDistribution, ReciprocalSymmetry) {
  // P(F(d1,d2) <= f) = P(F(d2,d1) >= 1/f).
  for (const double f : {0.3, 1.7, 5.0}) {
    EXPECT_NEAR(FCdf(f, 4.0, 9.0), FSurvival(1.0 / f, 9.0, 4.0), 1e-12);
  }
}

TEST(FDistribution, KnownCriticalValue) {
  // R: qf(0.95, 2, 10) = 4.102821; so the survival there is 0.05.
  EXPECT_NEAR(FSurvival(4.102821, 2.0, 10.0), 0.05, 1e-6);
  // R: qf(0.99, 1, 30) = 7.562476.
  EXPECT_NEAR(FSurvival(7.562476, 1.0, 30.0), 0.01, 1e-6);
}

TEST(FDistribution, EdgeCases) {
  EXPECT_DOUBLE_EQ(FSurvival(0.0, 2.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(FSurvival(-3.0, 2.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(FCdf(0.0, 2.0, 5.0), 0.0);
  EXPECT_TRUE(std::isnan(FSurvival(1.0, 0.0, 5.0)));
  // Huge F: p-value must underflow toward 0 without cancellation noise.
  EXPECT_LT(FSurvival(1e6, 2.0, 50.0), 1e-10);
  EXPECT_GE(FSurvival(1e6, 2.0, 50.0), 0.0);
}

TEST(StudentT, MatchesFWithOneNumeratorDf) {
  // t^2(df) ~ F(1, df), so the two-sided t p-value equals the F survival.
  for (const double t : {0.5, 1.0, 2.0, 3.5}) {
    for (const double df : {3.0, 10.0, 30.0}) {
      EXPECT_NEAR(StudentTTwoSided(t, df), FSurvival(t * t, 1.0, df), 1e-12);
    }
  }
}

TEST(StudentT, KnownCriticalValue) {
  // R: qt(0.975, 10) = 2.228139; two-sided p there is 0.05.
  EXPECT_NEAR(StudentTTwoSided(2.228139, 10.0), 0.05, 1e-6);
}

TEST(StudentT, ZeroStatisticGivesPOne) {
  EXPECT_NEAR(StudentTTwoSided(0.0, 5.0), 1.0, 1e-12);
}

TEST(NormalCdf, StandardValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(NormalCdf(1.959964), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959964), 0.025, 1e-6);
  EXPECT_NEAR(NormalCdf(5.0), 1.0, 1e-6);
}

}  // namespace
}  // namespace sleepwalk::stats
