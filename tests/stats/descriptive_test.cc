#include "sleepwalk/stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sleepwalk::stats {
namespace {

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
}

TEST(Variance, KnownSample) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sum of squared deviations = 32; sample variance = 32/7.
  EXPECT_NEAR(Variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Variance, DegenerateCases) {
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  const std::vector<double> one = {5.0};
  EXPECT_DOUBLE_EQ(Variance(one), 0.0);
  const std::vector<double> constant = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(Variance(constant), 0.0);
}

TEST(Quantile, Type7Interpolation) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  // R: quantile(1:4, 0.25, type=7) == 1.75
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.75), 3.25);
}

TEST(Quantile, UnsortedInputHandled) {
  const std::vector<double> v = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(Median(v), 5.0);
}

TEST(Quantile, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(Quantile({}, 0.5)));
}

TEST(Quantile, ClampsP) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.5), 2.0);
}

TEST(ComputeQuartiles, MatchesQuantiles) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0};
  const auto q = ComputeQuartiles(v);
  EXPECT_DOUBLE_EQ(q.q1, Quantile(v, 0.25));
  EXPECT_DOUBLE_EQ(q.median, 4.5);
  EXPECT_DOUBLE_EQ(q.q3, Quantile(v, 0.75));
}

TEST(PearsonCorrelation, PerfectPositive) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {10.0, 20.0, 30.0, 40.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(PearsonCorrelation, PerfectNegative) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(PearsonCorrelation, KnownValue) {
  // Hand-checked: r of these five pairs is ~0.7746.
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y = {2.0, 1.0, 4.0, 3.0, 5.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.8, 1e-12);
}

TEST(PearsonCorrelation, DegenerateCases) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> constant = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, constant), 0.0);
  const std::vector<double> short_x = {1.0};
  const std::vector<double> short_y = {2.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(short_x, short_y), 0.0);
  const std::vector<double> mismatched = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, mismatched), 0.0);
}

TEST(PearsonCorrelation, InvariantToAffineTransform) {
  const std::vector<double> x = {1.0, 4.0, 2.0, 8.0, 5.0};
  const std::vector<double> y = {2.0, 3.0, 7.0, 1.0, 9.0};
  std::vector<double> scaled(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) scaled[i] = 3.0 * x[i] - 7.0;
  EXPECT_NEAR(PearsonCorrelation(x, y), PearsonCorrelation(scaled, y), 1e-12);
}

}  // namespace
}  // namespace sleepwalk::stats
