#include "sleepwalk/stats/histogram.h"

#include <gtest/gtest.h>

namespace sleepwalk::stats {
namespace {

TEST(Histogram, BasicBinning) {
  Histogram h{0.0, 1.0, 10};
  h.Add(0.05);
  h.Add(0.15);
  h.Add(0.151);
  h.Add(0.95);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h{0.0, 1.0, 4};
  h.Add(-5.0);
  h.Add(2.0);
  h.Add(1.0);  // exactly hi lands in the top bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 2u);
}

TEST(Histogram, Weights) {
  Histogram h{0.0, 10.0, 5};
  h.Add(1.0, 7);
  EXPECT_EQ(h.count(0), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, BinGeometry) {
  Histogram h{2.0, 4.0, 4};
  EXPECT_DOUBLE_EQ(h.BinWidth(), 0.5);
  EXPECT_DOUBLE_EQ(h.BinLow(0), 2.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(0), 2.25);
  EXPECT_DOUBLE_EQ(h.BinLow(3), 3.5);
}

TEST(Histogram, CdfIsMonotoneAndEndsAtOne) {
  Histogram h{0.0, 1.0, 8};
  for (int i = 0; i < 100; ++i) h.Add(static_cast<double>(i) / 100.0);
  const auto cdf = h.Cdf();
  double previous = 0.0;
  for (const double value : cdf) {
    EXPECT_GE(value, previous);
    previous = value;
  }
  EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
}

TEST(Histogram, EmptyCdfIsZero) {
  Histogram h{0.0, 1.0, 4};
  for (const double value : h.Cdf()) EXPECT_DOUBLE_EQ(value, 0.0);
}

TEST(Histogram, DensitySumsToOne) {
  Histogram h{0.0, 1.0, 5};
  h.Add(0.1);
  h.Add(0.3);
  h.Add(0.9);
  double sum = 0.0;
  for (const double d : h.Density()) sum += d;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, InvalidShapeThrows) {
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), std::invalid_argument);
  EXPECT_THROW((Histogram{1.0, 0.0, 4}), std::invalid_argument);
}

TEST(Histogram2d, BasicBinning) {
  Histogram2d h{0.0, 1.0, 4, 0.0, 1.0, 4};
  h.Add(0.1, 0.9);
  h.Add(0.1, 0.9);
  h.Add(0.6, 0.1);
  EXPECT_EQ(h.count(0, 3), 2u);
  EXPECT_EQ(h.count(2, 0), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.max_count(), 2u);
}

TEST(Histogram2d, CentersAreMidCell) {
  Histogram2d h{0.0, 4.0, 4, -2.0, 2.0, 2};
  EXPECT_DOUBLE_EQ(h.XCenter(0), 0.5);
  EXPECT_DOUBLE_EQ(h.XCenter(3), 3.5);
  EXPECT_DOUBLE_EQ(h.YCenter(0), -1.0);
  EXPECT_DOUBLE_EQ(h.YCenter(1), 1.0);
}

TEST(Histogram2d, ColumnMeans) {
  Histogram2d h{0.0, 1.0, 2, 0.0, 10.0, 10};
  h.Add(0.25, 2.0);
  h.Add(0.25, 4.0);
  h.Add(0.75, 9.0);
  EXPECT_DOUBLE_EQ(h.YMeanInColumn(0), 3.0);
  EXPECT_DOUBLE_EQ(h.YMeanInColumn(1), 9.0);
}

TEST(Histogram2d, EmptyColumnMeanIsZero) {
  Histogram2d h{0.0, 1.0, 2, 0.0, 1.0, 2};
  EXPECT_DOUBLE_EQ(h.YMeanInColumn(0), 0.0);
}

TEST(Histogram2d, InvalidShapeThrows) {
  EXPECT_THROW((Histogram2d{0.0, 1.0, 0, 0.0, 1.0, 2}),
               std::invalid_argument);
  EXPECT_THROW((Histogram2d{0.0, 1.0, 2, 1.0, 1.0, 2}),
               std::invalid_argument);
}

}  // namespace
}  // namespace sleepwalk::stats
