#include "sleepwalk/stats/regression.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sleepwalk/util/rng.h"

namespace sleepwalk::stats {
namespace {

TEST(FitSimple, ExactLine) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = 2.5 * x[i] - 1.0;
  const auto fit = FitSimple(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope_stderr, 0.0, 1e-9);
}

TEST(FitSimple, DegenerateInputs) {
  EXPECT_EQ(FitSimple({}, {}).n, 0u);
  const std::vector<double> one = {1.0};
  EXPECT_EQ(FitSimple(one, one).n, 0u);
  const std::vector<double> x = {2.0, 2.0, 2.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(FitSimple(x, y).slope, 0.0);  // constant x: no fit
  const std::vector<double> mismatched = {1.0, 2.0};
  EXPECT_EQ(FitSimple(x, mismatched).n, 0u);
}

TEST(FitSimple, RecoverSlopeUnderNoise) {
  Rng rng{7};
  std::vector<double> x(500);
  std::vector<double> y(500);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i) / 100.0;
    y[i] = 3.0 * x[i] + 5.0 + 0.1 * rng.NextGaussian();
  }
  const auto fit = FitSimple(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.02);
  EXPECT_NEAR(fit.intercept, 5.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
  // The true slope should be within a few standard errors.
  EXPECT_LT(std::fabs(fit.slope - 3.0), 4.0 * fit.slope_stderr);
}

TEST(FitSimple, NegativeCorrelation) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y = {10.0, 8.5, 6.0, 4.5, 2.0};
  const auto fit = FitSimple(x, y);
  EXPECT_LT(fit.slope, 0.0);
  EXPECT_LT(fit.r, -0.99);
}

std::vector<std::vector<double>> DesignWithIntercept(
    const std::vector<std::vector<double>>& predictors, std::size_t n) {
  std::vector<std::vector<double>> columns;
  columns.emplace_back(n, 1.0);
  for (const auto& p : predictors) columns.push_back(p);
  return columns;
}

TEST(FitMultiple, ExactPlane) {
  const std::size_t n = 6;
  std::vector<double> x1 = {0, 1, 2, 0, 1, 2};
  std::vector<double> x2 = {0, 0, 0, 1, 1, 1};
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = 1.0 + 2.0 * x1[i] - 3.0 * x2[i];
  const auto fit = FitMultiple(DesignWithIntercept({x1, x2}, n), y);
  ASSERT_TRUE(fit.ok);
  EXPECT_EQ(fit.rank, 3u);
  EXPECT_NEAR(fit.coefficients[0], 1.0, 1e-10);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-10);
  EXPECT_NEAR(fit.coefficients[2], -3.0, 1e-10);
  EXPECT_NEAR(fit.residual_ss, 0.0, 1e-10);
}

TEST(FitMultiple, MatchesSimpleRegression) {
  Rng rng{11};
  const std::size_t n = 50;
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.NextDouble() * 10.0;
    y[i] = 4.0 - 0.7 * x[i] + rng.NextGaussian();
  }
  const auto simple = FitSimple(x, y);
  const auto multiple = FitMultiple(DesignWithIntercept({x}, n), y);
  ASSERT_TRUE(multiple.ok);
  EXPECT_NEAR(multiple.coefficients[0], simple.intercept, 1e-9);
  EXPECT_NEAR(multiple.coefficients[1], simple.slope, 1e-9);
}

TEST(FitMultiple, AliasedColumnGetsZero) {
  const std::size_t n = 8;
  Rng rng{3};
  std::vector<double> x(n);
  for (auto& v : x) v = rng.NextDouble();
  std::vector<double> duplicate = x;  // perfectly collinear
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = 2.0 * x[i] + 1.0;
  const auto fit = FitMultiple(DesignWithIntercept({x, duplicate}, n), y);
  ASSERT_TRUE(fit.ok);
  EXPECT_EQ(fit.rank, 2u);  // intercept + one of the twins
  EXPECT_NEAR(fit.residual_ss, 0.0, 1e-9);
}

TEST(FitMultiple, TotalSsIsAroundMean) {
  const std::vector<double> y = {1.0, 2.0, 3.0};
  std::vector<std::vector<double>> columns;
  columns.emplace_back(3, 1.0);
  const auto fit = FitMultiple(columns, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.total_ss, 2.0, 1e-12);
  EXPECT_NEAR(fit.residual_ss, 2.0, 1e-12);  // intercept-only model
}

TEST(FitMultiple, RejectsShapeMismatch) {
  std::vector<std::vector<double>> columns;
  columns.emplace_back(3, 1.0);
  columns.emplace_back(2, 1.0);  // wrong length
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_FALSE(FitMultiple(columns, y).ok);
}

TEST(FitMultiple, EmptyInputsRejected) {
  EXPECT_FALSE(FitMultiple({}, {}).ok);
}

}  // namespace
}  // namespace sleepwalk::stats
