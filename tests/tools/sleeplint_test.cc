// sleeplint's own tests: every rule must fire on its known-bad fixture
// at the exact line, path scoping must exempt the sanctioned
// directories, and the allow/baseline escapes must suppress precisely
// what they name. The fixture tree under SLEEPLINT_FIXTURE_DIR mirrors
// the real src/sleepwalk/ layout because rules scope by path substring.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sleeplint.h"

namespace {

const std::string kFixtures = SLEEPLINT_FIXTURE_DIR;

std::string Fixture(const std::string& relative) {
  return kFixtures + "/" + relative;
}

/// All diagnostics for one fixture file, via the public Run() API.
sleeplint::Result RunOn(const std::string& relative,
                        std::vector<std::string> only_rules = {}) {
  sleeplint::Options options;
  options.roots = {Fixture(relative)};
  options.only_rules = std::move(only_rules);
  return sleeplint::Run(options);
}

bool HasDiagnostic(const sleeplint::Result& result, const std::string& rule,
                   int line) {
  return std::any_of(result.diagnostics.begin(), result.diagnostics.end(),
                     [&](const sleeplint::Diagnostic& d) {
                       return d.rule == rule && d.line == line;
                     });
}

TEST(Sleeplint, RuleCatalogue) {
  const auto& rules = sleeplint::AllRules();
  const std::vector<std::string> expected = {
      "no-wallclock", "no-ambient-rng", "no-raw-io", "no-raw-fs",
      "no-raw-socket", "no-unchecked-narrowing", "header-hygiene"};
  EXPECT_EQ(rules, expected);
}

TEST(Sleeplint, NoWallclockFlagsEverySpelling) {
  const auto result = RunOn("src/sleepwalk/core/wallclock_bad.cc");
  EXPECT_TRUE(HasDiagnostic(result, "no-wallclock", 8));   // system_clock
  EXPECT_TRUE(HasDiagnostic(result, "no-wallclock", 9));   // steady_clock
  EXPECT_TRUE(HasDiagnostic(result, "no-wallclock", 10));  // high_resolution
  EXPECT_TRUE(HasDiagnostic(result, "no-wallclock", 11));  // std::time(
  // Comment and string-literal mentions are stripped before matching.
  EXPECT_FALSE(HasDiagnostic(result, "no-wallclock", 12));
  EXPECT_FALSE(HasDiagnostic(result, "no-wallclock", 13));
  EXPECT_EQ(result.diagnostics.size(), 4u);
}

TEST(Sleeplint, NoAmbientRngFlagsDeviceEngineAndRand) {
  const auto result = RunOn("src/sleepwalk/core/rng_bad.cc");
  EXPECT_TRUE(HasDiagnostic(result, "no-ambient-rng", 8));   // random_device
  EXPECT_TRUE(HasDiagnostic(result, "no-ambient-rng", 9));   // mt19937
  EXPECT_TRUE(HasDiagnostic(result, "no-ambient-rng", 10));  // rand(
  EXPECT_EQ(result.diagnostics.size(), 3u);
}

TEST(Sleeplint, NoRawIoFlagsConsoleButNotSnprintf) {
  const auto result = RunOn("src/sleepwalk/core/raw_io_bad.cc");
  EXPECT_TRUE(HasDiagnostic(result, "no-raw-io", 8));   // std::cout
  EXPECT_TRUE(HasDiagnostic(result, "no-raw-io", 9));   // std::cerr
  EXPECT_TRUE(HasDiagnostic(result, "no-raw-io", 10));  // printf(
  EXPECT_FALSE(HasDiagnostic(result, "no-raw-io", 12));  // snprintf is fine
  EXPECT_EQ(result.diagnostics.size(), 3u);
}

TEST(Sleeplint, NoRawFsFlagsFilesystemAccessOutsideStorage) {
  const auto result = RunOn("src/sleepwalk/core/raw_fs_bad.cc");
  EXPECT_TRUE(HasDiagnostic(result, "no-raw-fs", 8));   // std::ofstream
  EXPECT_TRUE(HasDiagnostic(result, "no-raw-fs", 9));   // fopen(
  EXPECT_TRUE(HasDiagnostic(result, "no-raw-fs", 10));  // std::rename
  // env.fsync() is a member of ours, not the libc call.
  EXPECT_FALSE(HasDiagnostic(result, "no-raw-fs", 12));
  EXPECT_EQ(result.diagnostics.size(), 3u);
}

TEST(Sleeplint, StorageLayerExemptFromRawFsRule) {
  // storage/ is the one sanctioned filesystem layer (it implements the
  // Env seam everything else must go through).
  const auto result = RunOn("src/sleepwalk/storage/storage_exempt.cc");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(Sleeplint, NoUncheckedNarrowingInSerializationFiles) {
  const auto result = RunOn("src/sleepwalk/core/checkpoint_bad.cc");
  EXPECT_TRUE(HasDiagnostic(result, "no-unchecked-narrowing", 8));
  EXPECT_TRUE(HasDiagnostic(result, "no-unchecked-narrowing", 9));
  EXPECT_TRUE(HasDiagnostic(result, "no-unchecked-narrowing", 10));
  // Widening to uint64 is not narrowing.
  EXPECT_FALSE(HasDiagnostic(result, "no-unchecked-narrowing", 11));
  EXPECT_EQ(result.diagnostics.size(), 3u);
}

TEST(Sleeplint, NarrowingRuleOnlyAppliesToSerializationPaths) {
  // Same casts in a non-serialization file: out of scope by design —
  // the rule guards bytes that land in checkpoint/dataset files.
  const std::string content =
      "auto a = static_cast<std::uint8_t>(1000);\n";
  int allows = 0;
  const auto diagnostics = sleeplint::LintFile(
      "src/sleepwalk/core/pipeline.cc", content, {}, &allows);
  EXPECT_TRUE(diagnostics.empty());
  const auto flagged = sleeplint::LintFile(
      "src/sleepwalk/core/dataset.cc", content, {}, &allows);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].rule, "no-unchecked-narrowing");
  EXPECT_EQ(flagged[0].line, 1);
}

TEST(Sleeplint, NoRawSocketFlagsSyscallsOutsideSanctionedLayers) {
  const auto result = RunOn("src/sleepwalk/core/raw_socket_bad.cc");
  EXPECT_TRUE(HasDiagnostic(result, "no-raw-socket", 8));   // socket(
  EXPECT_TRUE(HasDiagnostic(result, "no-raw-socket", 9));   // listen(
  EXPECT_TRUE(HasDiagnostic(result, "no-raw-socket", 10));  // epoll_create
  // transport.sendto() is a member of ours, not the libc syscall.
  EXPECT_FALSE(HasDiagnostic(result, "no-raw-socket", 11));
  EXPECT_EQ(result.diagnostics.size(), 3u);
  // Line 13's setsockopt is escaped by the preceding-line allow.
  EXPECT_EQ(result.suppressed_by_allow, 1);
}

TEST(Sleeplint, ServePathExemptFromSocketAndWallclockRules) {
  // serve/ is the admin plane: raw sockets, epoll, and clocks are its
  // job, so neither no-raw-socket nor no-wallclock fires there.
  const auto result = RunOn("src/sleepwalk/serve/serve_exempt.cc");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(Sleeplint, HeaderHygieneRequiresGuardOrPragmaOnce) {
  const auto result = RunOn("src/sleepwalk/core/hygiene_bad.h");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "header-hygiene");

  int allows = 0;
  EXPECT_TRUE(sleeplint::LintFile("src/sleepwalk/core/ok.h",
                                  "#pragma once\nint x;\n", {}, &allows)
                  .empty());
  EXPECT_TRUE(sleeplint::LintFile("src/sleepwalk/core/ok2.h",
                                  "#ifndef OK2_H_\n#define OK2_H_\n"
                                  "int x;\n#endif\n",
                                  {}, &allows)
                  .empty());
}

TEST(Sleeplint, AllowCommentSuppressesOnlyItsRule) {
  const auto result = RunOn("src/sleepwalk/core/allow_escape.cc");
  // Lines 8 (same-line allow) and 10 (preceding-line allow) suppressed;
  // line 12's allow names a different rule so the diagnostic stands.
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "no-wallclock");
  EXPECT_EQ(result.diagnostics[0].line, 12);
  EXPECT_EQ(result.suppressed_by_allow, 2);
}

TEST(Sleeplint, NetSocketPathsExemptFromWallclockOnly) {
  const auto result = RunOn("src/sleepwalk/net/socket_fixture.cc");
  // steady_clock on line 9 is sanctioned by the path; random_device on
  // line 10 is still ambient RNG.
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "no-ambient-rng");
  EXPECT_EQ(result.diagnostics[0].line, 10);
}

TEST(Sleeplint, OnlyRulesFilterRestrictsScan) {
  const auto result =
      RunOn("src/sleepwalk/net/socket_fixture.cc", {"no-wallclock"});
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(Sleeplint, DirectoryWalkFindsEveryFixture) {
  sleeplint::Options options;
  options.roots = {kFixtures};
  const auto result = sleeplint::Run(options);
  // 11 fixture files; per-file counts asserted above sum to 22.
  EXPECT_EQ(result.files_scanned, 11);
  EXPECT_EQ(result.diagnostics.size(), 22u);
  // Diagnostics are sorted by path then line for stable output.
  for (std::size_t i = 1; i < result.diagnostics.size(); ++i) {
    const auto& a = result.diagnostics[i - 1];
    const auto& b = result.diagnostics[i];
    EXPECT_TRUE(a.path < b.path || (a.path == b.path && a.line <= b.line));
  }
}

TEST(Sleeplint, BaselineSuppressesListedViolations) {
  const std::string baseline_path =
      testing::TempDir() + "/sleeplint_baseline_test.txt";
  {
    std::ofstream out{baseline_path};
    out << "# comment\n";
    // Whole-file suppression for one rule, line-exact for another.
    out << Fixture("src/sleepwalk/core/rng_bad.cc") << ":no-ambient-rng\n";
    out << Fixture("src/sleepwalk/core/wallclock_bad.cc")
        << ":8:no-wallclock\n";
  }
  sleeplint::Options options;
  options.roots = {Fixture("src/sleepwalk/core/rng_bad.cc"),
                   Fixture("src/sleepwalk/core/wallclock_bad.cc")};
  options.baseline_path = baseline_path;
  const auto result = sleeplint::Run(options);
  EXPECT_EQ(result.suppressed_by_baseline, 4);  // 3 rng + 1 wallclock
  EXPECT_EQ(result.diagnostics.size(), 3u);     // wallclock lines 9-11
  EXPECT_FALSE(HasDiagnostic(result, "no-wallclock", 8));
  std::remove(baseline_path.c_str());
}

TEST(Sleeplint, MissingBaselineIsAnError) {
  sleeplint::Options options;
  options.roots = {Fixture("src/sleepwalk/core/rng_bad.cc")};
  options.baseline_path = kFixtures + "/does_not_exist.txt";
  EXPECT_TRUE(sleeplint::Run(options).baseline_error);
}

}  // namespace
