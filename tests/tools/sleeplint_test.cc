// sleeplint's own tests: every rule must fire on its known-bad fixture
// at the exact line, path scoping must exempt the sanctioned
// directories, and the allow/baseline escapes must suppress precisely
// what they name. The fixture tree under SLEEPLINT_FIXTURE_DIR mirrors
// the real src/sleepwalk/ layout because rules scope by path substring.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "jsonl.h"
#include "sleeplint.h"

namespace {

const std::string kFixtures = SLEEPLINT_FIXTURE_DIR;

std::string Fixture(const std::string& relative) {
  return kFixtures + "/" + relative;
}

/// All diagnostics for one fixture file, via the public Run() API.
sleeplint::Result RunOn(const std::string& relative,
                        std::vector<std::string> only_rules = {}) {
  sleeplint::Options options;
  options.roots = {Fixture(relative)};
  options.only_rules = std::move(only_rules);
  return sleeplint::Run(options);
}

bool HasDiagnostic(const sleeplint::Result& result, const std::string& rule,
                   int line) {
  return std::any_of(result.diagnostics.begin(), result.diagnostics.end(),
                     [&](const sleeplint::Diagnostic& d) {
                       return d.rule == rule && d.line == line;
                     });
}

TEST(Sleeplint, RuleCatalogue) {
  const auto& rules = sleeplint::AllRules();
  const std::vector<std::string> expected = {
      "no-wallclock", "no-ambient-rng", "no-raw-io", "no-raw-fs",
      "no-raw-socket", "no-unchecked-narrowing", "header-hygiene",
      "bad-allow", "layering", "include-cycle", "lock-order",
      "throwing-destructor", "throw-in-noexcept", "crash-containment"};
  EXPECT_EQ(rules, expected);
}

TEST(Sleeplint, NoWallclockFlagsEverySpelling) {
  const auto result = RunOn("src/sleepwalk/core/wallclock_bad.cc");
  EXPECT_TRUE(HasDiagnostic(result, "no-wallclock", 8));   // system_clock
  EXPECT_TRUE(HasDiagnostic(result, "no-wallclock", 9));   // steady_clock
  EXPECT_TRUE(HasDiagnostic(result, "no-wallclock", 10));  // high_resolution
  EXPECT_TRUE(HasDiagnostic(result, "no-wallclock", 11));  // std::time(
  // Comment and string-literal mentions are stripped before matching.
  EXPECT_FALSE(HasDiagnostic(result, "no-wallclock", 12));
  EXPECT_FALSE(HasDiagnostic(result, "no-wallclock", 13));
  EXPECT_EQ(result.diagnostics.size(), 4u);
}

TEST(Sleeplint, NoAmbientRngFlagsDeviceEngineAndRand) {
  const auto result = RunOn("src/sleepwalk/core/rng_bad.cc");
  EXPECT_TRUE(HasDiagnostic(result, "no-ambient-rng", 8));   // random_device
  EXPECT_TRUE(HasDiagnostic(result, "no-ambient-rng", 9));   // mt19937
  EXPECT_TRUE(HasDiagnostic(result, "no-ambient-rng", 10));  // rand(
  EXPECT_EQ(result.diagnostics.size(), 3u);
}

TEST(Sleeplint, NoRawIoFlagsConsoleButNotSnprintf) {
  const auto result = RunOn("src/sleepwalk/core/raw_io_bad.cc");
  EXPECT_TRUE(HasDiagnostic(result, "no-raw-io", 8));   // std::cout
  EXPECT_TRUE(HasDiagnostic(result, "no-raw-io", 9));   // std::cerr
  EXPECT_TRUE(HasDiagnostic(result, "no-raw-io", 10));  // printf(
  EXPECT_FALSE(HasDiagnostic(result, "no-raw-io", 12));  // snprintf is fine
  EXPECT_EQ(result.diagnostics.size(), 3u);
}

TEST(Sleeplint, NoRawFsFlagsFilesystemAccessOutsideStorage) {
  const auto result = RunOn("src/sleepwalk/core/raw_fs_bad.cc");
  EXPECT_TRUE(HasDiagnostic(result, "no-raw-fs", 8));   // std::ofstream
  EXPECT_TRUE(HasDiagnostic(result, "no-raw-fs", 9));   // fopen(
  EXPECT_TRUE(HasDiagnostic(result, "no-raw-fs", 10));  // std::rename
  // env.fsync() is a member of ours, not the libc call.
  EXPECT_FALSE(HasDiagnostic(result, "no-raw-fs", 12));
  EXPECT_EQ(result.diagnostics.size(), 3u);
}

TEST(Sleeplint, StorageLayerExemptFromRawFsRule) {
  // storage/ is the one sanctioned filesystem layer (it implements the
  // Env seam everything else must go through).
  const auto result = RunOn("src/sleepwalk/storage/storage_exempt.cc");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(Sleeplint, NoUncheckedNarrowingInSerializationFiles) {
  const auto result = RunOn("src/sleepwalk/core/checkpoint_bad.cc");
  EXPECT_TRUE(HasDiagnostic(result, "no-unchecked-narrowing", 8));
  EXPECT_TRUE(HasDiagnostic(result, "no-unchecked-narrowing", 9));
  EXPECT_TRUE(HasDiagnostic(result, "no-unchecked-narrowing", 10));
  // Widening to uint64 is not narrowing.
  EXPECT_FALSE(HasDiagnostic(result, "no-unchecked-narrowing", 11));
  EXPECT_EQ(result.diagnostics.size(), 3u);
}

TEST(Sleeplint, NarrowingRuleOnlyAppliesToSerializationPaths) {
  // Same casts in a non-serialization file: out of scope by design —
  // the rule guards bytes that land in checkpoint/dataset files.
  const std::string content =
      "auto a = static_cast<std::uint8_t>(1000);\n";
  int allows = 0;
  const auto diagnostics = sleeplint::LintFile(
      "src/sleepwalk/core/pipeline.cc", content, {}, &allows);
  EXPECT_TRUE(diagnostics.empty());
  const auto flagged = sleeplint::LintFile(
      "src/sleepwalk/core/dataset.cc", content, {}, &allows);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].rule, "no-unchecked-narrowing");
  EXPECT_EQ(flagged[0].line, 1);
}

TEST(Sleeplint, NoRawSocketFlagsSyscallsOutsideSanctionedLayers) {
  const auto result = RunOn("src/sleepwalk/core/raw_socket_bad.cc");
  EXPECT_TRUE(HasDiagnostic(result, "no-raw-socket", 8));   // socket(
  EXPECT_TRUE(HasDiagnostic(result, "no-raw-socket", 9));   // listen(
  EXPECT_TRUE(HasDiagnostic(result, "no-raw-socket", 10));  // epoll_create
  // transport.sendto() is a member of ours, not the libc syscall.
  EXPECT_FALSE(HasDiagnostic(result, "no-raw-socket", 11));
  EXPECT_EQ(result.diagnostics.size(), 3u);
  // Line 13's setsockopt is escaped by the preceding-line allow.
  EXPECT_EQ(result.suppressed_by_allow, 1);
}

TEST(Sleeplint, ServePathExemptFromSocketAndWallclockRules) {
  // serve/ is the admin plane: raw sockets, epoll, and clocks are its
  // job, so neither no-raw-socket nor no-wallclock fires there.
  const auto result = RunOn("src/sleepwalk/serve/serve_exempt.cc");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(Sleeplint, HeaderHygieneRequiresGuardOrPragmaOnce) {
  const auto result = RunOn("src/sleepwalk/core/hygiene_bad.h");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "header-hygiene");

  int allows = 0;
  EXPECT_TRUE(sleeplint::LintFile("src/sleepwalk/core/ok.h",
                                  "#pragma once\nint x;\n", {}, &allows)
                  .empty());
  EXPECT_TRUE(sleeplint::LintFile("src/sleepwalk/core/ok2.h",
                                  "#ifndef OK2_H_\n#define OK2_H_\n"
                                  "int x;\n#endif\n",
                                  {}, &allows)
                  .empty());
}

TEST(Sleeplint, AllowCommentSuppressesOnlyItsRule) {
  const auto result = RunOn("src/sleepwalk/core/allow_escape.cc");
  // Lines 8 (same-line allow) and 10 (preceding-line allow) suppressed;
  // line 12's allow names a different rule so the diagnostic stands.
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "no-wallclock");
  EXPECT_EQ(result.diagnostics[0].line, 12);
  EXPECT_EQ(result.suppressed_by_allow, 2);
}

TEST(Sleeplint, NetSocketPathsExemptFromWallclockOnly) {
  const auto result = RunOn("src/sleepwalk/net/socket_fixture.cc");
  // steady_clock on line 9 is sanctioned by the path; random_device on
  // line 10 is still ambient RNG.
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "no-ambient-rng");
  EXPECT_EQ(result.diagnostics[0].line, 10);
}

TEST(Sleeplint, OnlyRulesFilterRestrictsScan) {
  const auto result =
      RunOn("src/sleepwalk/net/socket_fixture.cc", {"no-wallclock"});
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(Sleeplint, DirectoryWalkFindsEveryFixture) {
  sleeplint::Options options;
  // The per-line fixture tree; the whole-program fixtures live under
  // fixtures/wp and are covered by the WholeProgram tests below.
  options.roots = {kFixtures + "/src"};
  const auto result = sleeplint::Run(options);
  // 11 fixture files; per-file counts asserted above sum to 22.
  EXPECT_EQ(result.files_scanned, 11);
  EXPECT_EQ(result.diagnostics.size(), 22u);
  // Diagnostics are sorted by path then line for stable output.
  for (std::size_t i = 1; i < result.diagnostics.size(); ++i) {
    const auto& a = result.diagnostics[i - 1];
    const auto& b = result.diagnostics[i];
    EXPECT_TRUE(a.path < b.path || (a.path == b.path && a.line <= b.line));
  }
}

TEST(Sleeplint, BaselineSuppressesListedViolations) {
  const std::string baseline_path =
      testing::TempDir() + "/sleeplint_baseline_test.txt";
  {
    std::ofstream out{baseline_path};
    out << "# comment\n";
    // Whole-file suppression for one rule, line-exact for another.
    out << Fixture("src/sleepwalk/core/rng_bad.cc") << ":no-ambient-rng\n";
    out << Fixture("src/sleepwalk/core/wallclock_bad.cc")
        << ":8:no-wallclock\n";
  }
  sleeplint::Options options;
  options.roots = {Fixture("src/sleepwalk/core/rng_bad.cc"),
                   Fixture("src/sleepwalk/core/wallclock_bad.cc")};
  options.baseline_path = baseline_path;
  const auto result = sleeplint::Run(options);
  EXPECT_EQ(result.suppressed_by_baseline, 4);  // 3 rng + 1 wallclock
  EXPECT_EQ(result.diagnostics.size(), 3u);     // wallclock lines 9-11
  EXPECT_FALSE(HasDiagnostic(result, "no-wallclock", 8));
  std::remove(baseline_path.c_str());
}

TEST(Sleeplint, MissingBaselineIsAnError) {
  sleeplint::Options options;
  options.roots = {Fixture("src/sleepwalk/core/rng_bad.cc")};
  options.baseline_path = kFixtures + "/does_not_exist.txt";
  EXPECT_TRUE(sleeplint::Run(options).baseline_error);
}

// ---------------------------------------------------------------------------
// Whole-program analyses (fixtures/wp mirrors the real layout)
// ---------------------------------------------------------------------------

sleeplint::Result RunWholeProgram() {
  sleeplint::Options options;
  options.roots = {kFixtures + "/wp"};
  options.whole_program = true;
  return sleeplint::Run(options);
}

const sleeplint::Diagnostic* Find(const sleeplint::Result& result,
                                  const std::string& rule) {
  for (const auto& diagnostic : result.diagnostics) {
    if (diagnostic.rule == rule) return &diagnostic;
  }
  return nullptr;
}

TEST(SleeplintWp, LayeringViolationNamesBothRanks) {
  const auto result = RunWholeProgram();
  const auto* diagnostic = Find(result, "layering");
  ASSERT_NE(diagnostic, nullptr);
  EXPECT_NE(diagnostic->path.find("ts/layer_bad.h"), std::string::npos);
  EXPECT_EQ(diagnostic->line, 6);
  EXPECT_NE(diagnostic->message.find("sleepwalk/core/engine.h"),
            std::string::npos);
  EXPECT_NE(diagnostic->message.find("ts rank 1"), std::string::npos);
  EXPECT_NE(diagnostic->message.find("core rank 5"), std::string::npos);
  // Downward includes (core/engine.h -> util/base.h) never fire.
  int layering_count = 0;
  for (const auto& d : result.diagnostics) {
    if (d.rule == "layering") ++layering_count;
  }
  EXPECT_EQ(layering_count, 1);
}

TEST(SleeplintWp, IncludeCycleReportedOnceWithChain) {
  const auto result = RunWholeProgram();
  int cycles = 0;
  for (const auto& diagnostic : result.diagnostics) {
    if (diagnostic.rule != "include-cycle") continue;
    ++cycles;
    EXPECT_NE(diagnostic.message.find("cycle_a.h:5"), std::string::npos);
    EXPECT_NE(diagnostic.message.find("cycle_b.h:5"), std::string::npos);
  }
  EXPECT_EQ(cycles, 1);  // one cycle, reported once, not once per entry
}

TEST(SleeplintWp, CrossTuLockCycleIsDetected) {
  // lock_one.cc acquires Alpha then Beta; lock_two.cc acquires Beta
  // then Alpha. Each TU alone is fine; the merged graph has the cycle.
  const auto result = RunWholeProgram();
  const auto* diagnostic = Find(result, "lock-order");
  ASSERT_NE(diagnostic, nullptr);
  EXPECT_NE(diagnostic->message.find("Alpha::mu_alpha -> Beta::mu_beta"),
            std::string::npos);
  EXPECT_NE(diagnostic->message.find("Beta::mu_beta -> Alpha::mu_alpha"),
            std::string::npos);
  EXPECT_NE(diagnostic->message.find("lock_one.cc:8"), std::string::npos);
  EXPECT_NE(diagnostic->message.find("lock_two.cc:9"), std::string::npos);
}

TEST(SleeplintWp, LockGraphRendersAsDeterministicDot) {
  const auto first = RunWholeProgram();
  const auto second = RunWholeProgram();
  EXPECT_EQ(first.lock_dot, second.lock_dot);
  EXPECT_NE(first.lock_dot.find("digraph lock_order"), std::string::npos);
  EXPECT_NE(first.lock_dot.find(
                "\"Alpha::mu_alpha\" -> \"Beta::mu_beta\""),
            std::string::npos);
  EXPECT_NE(first.lock_dot.find(
                "\"Beta::mu_beta\" -> \"Alpha::mu_alpha\""),
            std::string::npos);
}

TEST(SleeplintWp, ExceptionSafetyRules) {
  const auto result = RunWholeProgram();
  EXPECT_TRUE(HasDiagnostic(result, "throwing-destructor", 8));
  EXPECT_TRUE(HasDiagnostic(result, "throw-in-noexcept", 13));
  EXPECT_TRUE(HasDiagnostic(result, "crash-containment", 18));
  // noexcept(false) opts out; the throw on line 22 is legal.
  EXPECT_FALSE(HasDiagnostic(result, "throw-in-noexcept", 22));
}

TEST(SleeplintWp, RawStringContentsAreBlanked) {
  // R"(...)" and R"doc(...)doc" bodies mention half the banned tokens;
  // none may fire (the old per-line scanner could not blank these).
  const auto result = RunWholeProgram();
  for (const auto& diagnostic : result.diagnostics) {
    EXPECT_EQ(diagnostic.path.find("raw_string_ok.cc"), std::string::npos)
        << diagnostic.rule << " fired inside a raw string at line "
        << diagnostic.line;
  }
}

TEST(SleeplintWp, AllowFileWaivesOneRuleForTheWholeFile) {
  const auto result = RunWholeProgram();
  for (const auto& diagnostic : result.diagnostics) {
    if (diagnostic.path.find("allow_file.cc") == std::string::npos) continue;
    // Both wallclock hits are waived; the rng hit still stands.
    EXPECT_EQ(diagnostic.rule, "no-ambient-rng");
    EXPECT_EQ(diagnostic.line, 10);
  }
  EXPECT_TRUE(HasDiagnostic(result, "no-ambient-rng", 10));
}

TEST(SleeplintWp, UnknownRuleInAllowMarkerIsAnError) {
  const auto result = RunWholeProgram();
  EXPECT_TRUE(HasDiagnostic(result, "bad-allow", 6));   // allow(no-wallclok)
  EXPECT_TRUE(HasDiagnostic(result, "bad-allow", 8));   // allow-file typo
}

TEST(SleeplintWp, FixtureTreeTotals) {
  // The seeded defects, one finding each: layering, include-cycle,
  // lock-order, throwing-destructor, throw-in-noexcept,
  // crash-containment, 2x bad-allow, plus allow_file.cc's rng hit.
  const auto result = RunWholeProgram();
  EXPECT_EQ(result.diagnostics.size(), 9u);
  EXPECT_EQ(result.suppressed_by_allow, 2);  // allow-file(no-wallclock) x2
}

TEST(SleeplintWp, FactsRoundTripMatchesDirectAnalysis) {
  // Shard mode: dump facts for the wp tree, then analyze from the dump
  // alone. The merge run must reproduce the direct run exactly.
  const std::string facts_path =
      testing::TempDir() + "/sleeplint_facts_test.txt";
  {
    sleeplint::Options shard;
    shard.roots = {kFixtures + "/wp"};
    shard.facts_out = facts_path;
    const auto dumped = sleeplint::Run(shard);
    ASSERT_FALSE(dumped.facts_error) << dumped.facts_error_message;
    EXPECT_TRUE(dumped.diagnostics.empty());  // shard reports nothing
  }
  sleeplint::Options merge;
  merge.whole_program = true;
  merge.facts_in = {facts_path};
  const auto merged = sleeplint::Run(merge);
  ASSERT_FALSE(merged.facts_error) << merged.facts_error_message;

  const auto direct = RunWholeProgram();
  ASSERT_EQ(merged.diagnostics.size(), direct.diagnostics.size());
  for (std::size_t i = 0; i < merged.diagnostics.size(); ++i) {
    EXPECT_EQ(merged.diagnostics[i].path, direct.diagnostics[i].path);
    EXPECT_EQ(merged.diagnostics[i].line, direct.diagnostics[i].line);
    EXPECT_EQ(merged.diagnostics[i].rule, direct.diagnostics[i].rule);
    EXPECT_EQ(merged.diagnostics[i].message, direct.diagnostics[i].message);
  }
  EXPECT_EQ(merged.lock_dot, direct.lock_dot);
  std::remove(facts_path.c_str());
}

TEST(SleeplintWp, CorruptFactsFileIsAnError) {
  const std::string facts_path =
      testing::TempDir() + "/sleeplint_facts_corrupt.txt";
  {
    std::ofstream out{facts_path};
    out << "sleeplint-facts v1\n";
    out << "edge 0 1\n";  // record before any file
  }
  sleeplint::Options options;
  options.whole_program = true;
  options.facts_in = {facts_path};
  const auto result = sleeplint::Run(options);
  EXPECT_TRUE(result.facts_error);
  EXPECT_NE(result.facts_error_message.find("record before any file"),
            std::string::npos);
  std::remove(facts_path.c_str());
}

// ---------------------------------------------------------------------------
// Machine-readable output
// ---------------------------------------------------------------------------

TEST(SleeplintOutput, JsonIsOneWellFormedObject) {
  const auto result = RunWholeProgram();
  std::ostringstream out;
  sleeplint::RenderJson(out, result);
  std::string text = out.str();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  text.pop_back();
  EXPECT_TRUE(jsonl::IsJsonObjectLine(text)) << text;
  EXPECT_NE(text.find("\"tool\":\"sleeplint\""), std::string::npos);
  EXPECT_NE(text.find("\"rule\":\"lock-order\""), std::string::npos);
}

TEST(SleeplintOutput, SarifIsValidAndCarriesEveryFinding) {
  const auto result = RunWholeProgram();
  std::ostringstream out;
  sleeplint::RenderSarif(out, result);
  std::string text = out.str();
  ASSERT_FALSE(text.empty());
  text.pop_back();
  // Validated with the same strict parser jsonl_check --sarif uses.
  EXPECT_TRUE(jsonl::IsJsonObjectLine(text)) << text;
  EXPECT_NE(text.find("\"version\":\"2.1.0\""), std::string::npos);
  for (const auto& diagnostic : result.diagnostics) {
    EXPECT_NE(text.find("\"ruleId\":\"" + diagnostic.rule + "\""),
              std::string::npos);
  }
  // Every catalogued rule is declared in the driver block.
  for (const auto& rule : sleeplint::AllRules()) {
    EXPECT_NE(text.find("\"id\":\"" + rule + "\""), std::string::npos);
  }
}

TEST(SleeplintOutput, SarifEscapesMessageText) {
  sleeplint::Result result;
  result.diagnostics.push_back(sleeplint::Diagnostic{
      "src/a \"b\".cc", 3, "layering", "quote \" backslash \\ tab \t"});
  std::ostringstream out;
  sleeplint::RenderSarif(out, result);
  std::string text = out.str();
  text.pop_back();
  EXPECT_TRUE(jsonl::IsJsonObjectLine(text)) << text;
}

}  // namespace
