// Fixture: ambient randomness outside util/rng.
#include <cstdlib>
#include <random>

namespace fixture {

int Roll() {
  std::random_device device;                              // line 8
  std::mt19937 engine{device()};                          // line 9
  return rand() + static_cast<int>(engine());             // line 10
}

}  // namespace fixture
