// Fixture: direct console I/O inside library code.
#include <cstdio>
#include <iostream>

namespace fixture {

void Report() {
  std::cout << "progress\n";                              // line 8
  std::cerr << "warning\n";                               // line 9
  printf("done\n");                                       // line 10
  char buffer[8];
  std::snprintf(buffer, sizeof(buffer), "ok");            // not flagged
  (void)buffer;
}

}  // namespace fixture
