// Fixture: raw filesystem access outside the storage/ layer.
#include <cstdio>
#include <fstream>

namespace fixture {

void Persist(const char* path, Env& env) {
  std::ofstream out{path};                                // line 8
  std::FILE* file = fopen(path, "rb");                    // line 9
  std::rename(path, "old");                               // line 10
  if (file != nullptr) std::fclose(file);
  env.fsync(0);                                           // member call: ours
  (void)out;
}

}  // namespace fixture
