// Fixture: every banned clock spelling, at known line numbers.
#include <chrono>
#include <ctime>

namespace fixture {

long Now() {
  auto a = std::chrono::system_clock::now();              // line 8
  auto b = std::chrono::steady_clock::now();              // line 9
  auto c = std::chrono::high_resolution_clock::now();     // line 10
  std::time_t d = std::time(nullptr);                     // line 11
  // A comment mentioning system_clock::now() must NOT be flagged.
  const char* e = "system_clock::now() in a string";      // not flagged
  (void)a; (void)b; (void)c; (void)d; (void)e;
  return 0;
}

}  // namespace fixture
