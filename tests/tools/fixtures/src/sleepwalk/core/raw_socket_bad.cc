// Fixture: raw socket/epoll syscalls outside the sanctioned layers
// (net/socket*, net/icmp*, rdns/dns_resolver, serve/) are a
// determinism leak. Member calls on our own types stay exempt, and
// the allow escape works per-rule as usual.
namespace fixture {

int Listen(auto& transport) {
  int fd = socket(2, 1, 0);
  listen(fd, 16);
  int ep = epoll_create1(0);
  transport.sendto(fd);
  // sleeplint: allow(no-raw-socket)
  setsockopt(fd, 0, 0, nullptr, 0);
  return ep;
}

}  // namespace fixture
