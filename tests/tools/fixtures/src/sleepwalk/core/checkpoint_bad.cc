// Fixture: raw narrowing casts in a serialization file. The path
// contains core/checkpoint, so the no-unchecked-narrowing scope applies.
#include <cstdint>

namespace fixture {

void Serialize(long value) {
  auto a = static_cast<std::uint8_t>(value);              // line 8
  auto b = static_cast<std::int32_t>(value);              // line 9
  auto c = static_cast<unsigned short>(value);            // line 10
  auto wide = static_cast<std::uint64_t>(value);          // not flagged
  (void)a; (void)b; (void)c; (void)wide;
}

}  // namespace fixture
