// Fixture: the `// sleeplint: allow(<rule>)` escape hatch on both the
// same line and the immediately preceding line.
#include <chrono>

namespace fixture {

long Sanctioned() {
  auto a = std::chrono::steady_clock::now();  // sleeplint: allow(no-wallclock)
  // sleeplint: allow(no-wallclock)
  auto b = std::chrono::system_clock::now();
  // An allow for a DIFFERENT rule must not suppress this:
  auto c = std::chrono::steady_clock::now();  // sleeplint: allow(no-ambient-rng)
  (void)a; (void)b; (void)c;
  return 0;
}

}  // namespace fixture
