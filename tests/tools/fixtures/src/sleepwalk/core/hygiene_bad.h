// Fixture: a header with no include guard and no #pragma once.

namespace fixture {

inline int Answer() { return 42; }

}  // namespace fixture
