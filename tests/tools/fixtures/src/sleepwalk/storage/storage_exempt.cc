// Fixture: storage/ is the single layer sanctioned to touch the
// filesystem directly; no-raw-fs must stay silent on this whole file.
#include <cstdio>
#include <fstream>

namespace fixture {

void RawWrite(const char* path) {
  std::ofstream out{path};
  std::FILE* file = fopen(path, "wb");
  std::rename(path, "rotated");
  if (file != nullptr) std::fclose(file);
  (void)out;
}

}  // namespace fixture
