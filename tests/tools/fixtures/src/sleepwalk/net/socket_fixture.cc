// Fixture: net/socket* is exempt from no-wallclock — live probe code
// times real sockets. The RNG ban still applies here.
#include <chrono>
#include <random>

namespace fixture {

long SocketDeadline() {
  auto now = std::chrono::steady_clock::now();            // exempt path
  std::random_device device;                              // line 10: still banned
  (void)now;
  return static_cast<long>(device());
}

}  // namespace fixture
