// Fixture: serve/ is the admin plane — sanctioned for raw sockets,
// epoll, and wall clocks (a serving loop is a wall phenomenon). The
// ambient-RNG ban still applies everywhere.
#include <chrono>

namespace fixture {

int Serve() {
  int fd = socket(2, 1, 0);
  auto deadline = std::chrono::steady_clock::now();
  (void)deadline;
  return epoll_create1(0) + fd;
}

}  // namespace fixture
