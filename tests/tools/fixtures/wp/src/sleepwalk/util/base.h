// Rank-0 foundation header for the whole-program fixtures.
#ifndef WP_UTIL_BASE_H_
#define WP_UTIL_BASE_H_

namespace sleepwalk::util {

inline int Base() { return 0; }

}  // namespace sleepwalk::util

#endif  // WP_UTIL_BASE_H_
