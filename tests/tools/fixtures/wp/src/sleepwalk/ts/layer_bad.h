// A rank-1 math layer reaching up into rank-5 orchestration: the
// seeded layering violation (line 6).
#ifndef WP_TS_LAYER_BAD_H_
#define WP_TS_LAYER_BAD_H_

#include "sleepwalk/core/engine.h"

namespace sleepwalk::ts {

inline int Bad() { return core::Engine(); }

}  // namespace sleepwalk::ts

#endif  // WP_TS_LAYER_BAD_H_
