// File-scoped escape: the allow-file marker below waives no-wallclock
// for the entire file; the no-ambient-rng violation on line 10 still
// stands.
// sleeplint: allow-file(no-wallclock)
namespace sleepwalk::core {

inline long Now() { return std::chrono::system_clock::now().time_since_epoch().count(); }
inline long Later() { return std::chrono::steady_clock::now().time_since_epoch().count(); }

inline int Roll() { return std::mt19937{}() % 6; }

}  // namespace sleepwalk::core
