// Raw-string literals whose contents mention banned tokens: the lexer
// must blank them (including the custom-delimiter form), so none of
// these lines may produce a diagnostic.
namespace sleepwalk::core {

inline const char* Doc() {
  return R"(call system_clock::now() and std::cout << "hi")";
}

inline const char* DocDelim() {
  return R"doc(std::random_device inside, socket( too, "quoted)doc";
}

inline const char* DocMultiline() {
  return R"(first line with fopen(
second line with epoll_create and rand()
third line)";
}

}  // namespace sleepwalk::core
