// Half of the seeded include cycle (with cycle_b.h).
#ifndef WP_CORE_CYCLE_A_H_
#define WP_CORE_CYCLE_A_H_

#include "sleepwalk/core/cycle_b.h"

#endif  // WP_CORE_CYCLE_A_H_
