// Exception-safety fixtures: a throwing destructor (line 8), a throw
// escaping a noexcept function (line 13), a CrashInjected raised
// outside the failpoint/storage layers (line 18), and a noexcept(false)
// opt-out that must stay clean (line 22).
namespace sleepwalk::core {

struct Widget {
  ~Widget() { throw 42; }
};

struct Engine {
  void Step() noexcept {
    if (true) throw 7;
  }
};

inline void Crashy() {
  throw util::CrashInjected{"seeded"};
}

inline void OptedOut() noexcept(false) {
  throw 3;
}

}  // namespace sleepwalk::core
