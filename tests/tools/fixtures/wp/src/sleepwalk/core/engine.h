// Rank-5 orchestration header; including downward is fine.
#ifndef WP_CORE_ENGINE_H_
#define WP_CORE_ENGINE_H_

#include "sleepwalk/util/base.h"

namespace sleepwalk::core {

inline int Engine() { return util::Base(); }

}  // namespace sleepwalk::core

#endif  // WP_CORE_ENGINE_H_
