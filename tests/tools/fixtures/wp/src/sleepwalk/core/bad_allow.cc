// A typoed escape must be an error, not a silent no-op: line 6 names a
// rule that does not exist, line 8 typos a file-scoped one.
namespace sleepwalk::core {

inline int Stable() {
  return 1;  // sleeplint: allow(no-wallclok)
}
// sleeplint: allow-file(no-raw-oi)

}  // namespace sleepwalk::core
