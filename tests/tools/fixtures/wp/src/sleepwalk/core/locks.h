// Two mutex owners for the cross-TU lock-order cycle: lock_one.cc
// acquires Alpha then Beta, lock_two.cc acquires Beta then Alpha.
#ifndef WP_CORE_LOCKS_H_
#define WP_CORE_LOCKS_H_

namespace sleepwalk::core {

struct Alpha {
  util::Mutex mu_alpha;
  int value = 0;
};

struct Beta {
  util::Mutex mu_beta;
  int value = 0;
};

}  // namespace sleepwalk::core

#endif  // WP_CORE_LOCKS_H_
