// Other half of the seeded deadlock: Beta held, then Alpha acquired —
// the opposite order from lock_one.cc, closing the cycle.
#include "sleepwalk/core/locks.h"

namespace sleepwalk::core {

int TransferBackward(Alpha& alpha, Beta& beta) {
  util::MutexLock hold_beta(beta.mu_beta);
  util::MutexLock hold_alpha(alpha.mu_alpha);
  return alpha.value - beta.value;
}

}  // namespace sleepwalk::core
