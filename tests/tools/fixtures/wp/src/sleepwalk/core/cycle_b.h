// Other half of the seeded include cycle (with cycle_a.h).
#ifndef WP_CORE_CYCLE_B_H_
#define WP_CORE_CYCLE_B_H_

#include "sleepwalk/core/cycle_a.h"

#endif  // WP_CORE_CYCLE_B_H_
