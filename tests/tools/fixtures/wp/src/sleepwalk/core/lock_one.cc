// One half of the seeded deadlock: Alpha held, then Beta acquired.
#include "sleepwalk/core/locks.h"

namespace sleepwalk::core {

int TransferForward(Alpha& alpha, Beta& beta) {
  util::MutexLock hold_alpha(alpha.mu_alpha);
  util::MutexLock hold_beta(beta.mu_beta);
  return alpha.value + beta.value;
}

}  // namespace sleepwalk::core
