// FaultPlan primitives: windows, Gilbert-Elliott chains, schedules.
#include <gtest/gtest.h>

#include "sleepwalk/faults/plan.h"

namespace sleepwalk::faults {
namespace {

TEST(FaultWindow, ContainsIsHalfOpen) {
  const FaultWindow window{100, 200};
  EXPECT_FALSE(window.Contains(99));
  EXPECT_TRUE(window.Contains(100));
  EXPECT_TRUE(window.Contains(199));
  EXPECT_FALSE(window.Contains(200));
}

TEST(FaultWindow, InAnyWindowScansAll) {
  const std::vector<FaultWindow> windows{{0, 10}, {50, 60}};
  EXPECT_TRUE(InAnyWindow(windows, 5));
  EXPECT_TRUE(InAnyWindow(windows, 55));
  EXPECT_FALSE(InAnyWindow(windows, 30));
  EXPECT_FALSE(InAnyWindow({}, 30));
}

TEST(GilbertElliott, StationaryBadMatchesTransitionRates) {
  GilbertElliott model;
  model.p_good_to_bad = 0.05;
  model.p_bad_to_good = 0.3;
  EXPECT_NEAR(model.StationaryBad(), 0.05 / 0.35, 1e-12);
  model.loss_bad = 0.8;
  model.loss_good = 0.0;
  EXPECT_NEAR(model.ExpectedLoss(), (0.05 / 0.35) * 0.8, 1e-12);
}

TEST(GilbertElliott, ChainStateIsPureFunctionOfInputs) {
  GilbertElliott model;
  model.enabled = true;
  for (std::int64_t window = 0; window < 200; ++window) {
    EXPECT_EQ(GilbertElliottStateAt(model, 42, 7, window),
              GilbertElliottStateAt(model, 42, 7, window))
        << window;
  }
  // Different block or seed gives a different (well, almost surely
  // different somewhere) trajectory.
  bool any_block_difference = false;
  bool any_seed_difference = false;
  for (std::int64_t window = 0; window < 200; ++window) {
    if (GilbertElliottStateAt(model, 42, 7, window) !=
        GilbertElliottStateAt(model, 42, 8, window)) {
      any_block_difference = true;
    }
    if (GilbertElliottStateAt(model, 42, 7, window) !=
        GilbertElliottStateAt(model, 43, 7, window)) {
      any_seed_difference = true;
    }
  }
  EXPECT_TRUE(any_block_difference);
  EXPECT_TRUE(any_seed_difference);
}

TEST(GilbertElliott, CachedCursorMatchesFromScratch) {
  GilbertElliott model;
  model.enabled = true;
  std::int64_t cached_window = -1;
  bool cached_state = false;
  for (std::int64_t window = 0; window < 300; ++window) {
    const bool scratch = GilbertElliottStateAt(model, 9, 3, window);
    const bool cached = GilbertElliottStateAt(model, 9, 3, window,
                                              cached_window, cached_state);
    EXPECT_EQ(scratch, cached) << window;
    cached_window = window;
    cached_state = cached;
  }
}

TEST(GilbertElliott, LongRunBadFractionNearStationary) {
  GilbertElliott model;
  model.enabled = true;
  model.p_good_to_bad = 0.05;
  model.p_bad_to_good = 0.3;
  const int n = 20000;
  int bad = 0;
  std::int64_t cached_window = -1;
  bool cached_state = false;
  for (std::int64_t window = 0; window < n; ++window) {
    cached_state = GilbertElliottStateAt(model, 0xbeef, 1, window,
                                         cached_window, cached_state);
    cached_window = window;
    if (cached_state) ++bad;
  }
  EXPECT_NEAR(static_cast<double>(bad) / n, model.StationaryBad(), 0.02);
}

TEST(FaultPlan, PeriodicRestartsSkipRoundZero) {
  const auto rounds = PeriodicRestarts(30, 100);
  ASSERT_EQ(rounds.size(), 3u);
  EXPECT_EQ(rounds[0], 30);
  EXPECT_EQ(rounds[1], 60);
  EXPECT_EQ(rounds[2], 90);
  EXPECT_TRUE(PeriodicRestarts(0, 100).empty());
  EXPECT_TRUE(PeriodicRestarts(200, 100).empty());
}

TEST(FaultPlan, RandomWindowsDeterministicAndInRange) {
  const std::int64_t campaign = 86400;
  const auto a = RandomWindows(7, 5, campaign, 600);
  const auto b = RandomWindows(7, 5, campaign, 600);
  ASSERT_EQ(a.size(), 5u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start_sec, b[i].start_sec);
    EXPECT_EQ(a[i].end_sec, b[i].end_sec);
    EXPECT_GE(a[i].start_sec, 0);
    EXPECT_LT(a[i].start_sec, campaign);
    EXPECT_GT(a[i].end_sec, a[i].start_sec);
  }
  const auto c = RandomWindows(8, 5, campaign, 600);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].start_sec != c[i].start_sec) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlan, HashUnitIsUniformish) {
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double u = HashUnit(1, 2, static_cast<std::uint64_t>(i));
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(FaultPlan, DeadBlockLookup) {
  FaultPlan plan;
  plan.dead_blocks = {17u, 99u};
  EXPECT_TRUE(plan.IsDead(17));
  EXPECT_TRUE(plan.IsDead(99));
  EXPECT_FALSE(plan.IsDead(18));
}

}  // namespace
}  // namespace sleepwalk::faults
