// FaultyTransport: every probe lands in one accounting bucket, faults
// fire deterministically, and moderate injected loss does not flip a
// clean diurnal block's classification.
#include <gtest/gtest.h>

#include <cstdint>

#include "sleepwalk/core/block_analyzer.h"
#include "sleepwalk/faults/faulty_transport.h"
#include "sleepwalk/faults/plan.h"
#include "sleepwalk/probing/scheduler.h"
#include "sleepwalk/sim/block.h"

namespace sleepwalk::faults {
namespace {

/// An inner transport that always answers — isolates the fault layer.
class AlwaysUpTransport final : public net::Transport {
 public:
  net::ProbeStatus Probe(net::Ipv4Addr, std::int64_t) override {
    ++probes;
    return net::ProbeStatus::kEchoReply;
  }
  std::int64_t probes = 0;
};

net::Ipv4Addr AddressIn(std::uint32_t prefix_index, std::uint8_t octet) {
  return net::Prefix24::FromIndex(prefix_index).Address(octet);
}

TEST(FaultyTransport, NoFaultsPassesThroughAndBalances) {
  AlwaysUpTransport inner;
  FaultyTransport transport{inner, FaultPlan{}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(transport.Probe(AddressIn(1, static_cast<std::uint8_t>(i)), 0),
              net::ProbeStatus::kEchoReply);
  }
  const auto& accounting = transport.accounting();
  EXPECT_EQ(accounting.attempts, 100u);
  EXPECT_EQ(accounting.answered, 100u);
  EXPECT_EQ(accounting.errors, 0u);
  EXPECT_TRUE(accounting.Balanced());
  EXPECT_EQ(inner.probes, 100);
}

TEST(FaultyTransport, IidLossNearConfiguredRate) {
  AlwaysUpTransport inner;
  FaultPlan plan;
  plan.iid_loss = 0.3;
  FaultyTransport transport{inner, plan};
  const int n = 20000;
  int lost = 0;
  for (int i = 0; i < n; ++i) {
    // Distinct instants so per-window attempt counters keep resetting.
    if (transport.Probe(AddressIn(1, static_cast<std::uint8_t>(i % 200)),
                        i / 200) == net::ProbeStatus::kTimeout) {
      ++lost;
    }
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.3, 0.02);
  EXPECT_TRUE(transport.accounting().Balanced());
}

TEST(FaultyTransport, RetriedProbeDrawsFreshLoss) {
  // The same (target, instant) probed twice must not share its loss draw:
  // the attempt counter feeds the hash, so a retry can succeed.
  AlwaysUpTransport inner;
  FaultPlan plan;
  plan.iid_loss = 0.5;
  FaultyTransport transport{inner, plan};
  const auto target = AddressIn(3, 7);
  bool saw_both = false;
  for (int instant = 0; instant < 200 && !saw_both; ++instant) {
    const auto first = transport.Probe(target, instant);
    const auto second = transport.Probe(target, instant);
    if (first != second) saw_both = true;
  }
  EXPECT_TRUE(saw_both);
}

TEST(FaultyTransport, RateLimitDropsExcessProbesPerWindow) {
  AlwaysUpTransport inner;
  FaultPlan plan;
  plan.rate_limit_per_window = 5;
  FaultyTransport transport{inner, plan};
  int answered = 0;
  for (int i = 0; i < 20; ++i) {
    if (transport.Probe(AddressIn(1, static_cast<std::uint8_t>(i)), 1000) ==
        net::ProbeStatus::kEchoReply) {
      ++answered;
    }
  }
  EXPECT_EQ(answered, 5);
  EXPECT_EQ(transport.accounting().rate_limited, 15u);
  // A new round instant resets the limiter.
  EXPECT_EQ(transport.Probe(AddressIn(1, 0), 2000),
            net::ProbeStatus::kEchoReply);
  EXPECT_TRUE(transport.accounting().Balanced());
}

TEST(FaultyTransport, ScheduledWindowsFire) {
  AlwaysUpTransport inner;
  FaultPlan plan;
  plan.timeout_windows = {{100, 200}};
  plan.unreachable_windows = {{300, 400}};
  FaultyTransport transport{inner, plan};
  EXPECT_EQ(transport.Probe(AddressIn(1, 1), 150),
            net::ProbeStatus::kTimeout);
  EXPECT_EQ(transport.Probe(AddressIn(1, 1), 350),
            net::ProbeStatus::kUnreachable);
  EXPECT_EQ(transport.Probe(AddressIn(1, 1), 500),
            net::ProbeStatus::kEchoReply);
  EXPECT_TRUE(transport.accounting().Balanced());
}

TEST(FaultyTransport, DeadBlocksAndErrorWindowsThrow) {
  AlwaysUpTransport inner;
  FaultPlan plan;
  plan.dead_blocks = {7u};
  plan.error_windows = {{1000, 1100}};
  FaultyTransport transport{inner, plan};
  EXPECT_THROW(transport.Probe(AddressIn(7, 1), 0), net::TransportError);
  EXPECT_THROW(transport.Probe(AddressIn(1, 1), 1050), net::TransportError);
  EXPECT_EQ(transport.Probe(AddressIn(1, 1), 0),
            net::ProbeStatus::kEchoReply);
  const auto& accounting = transport.accounting();
  EXPECT_EQ(accounting.errors, 2u);
  EXPECT_EQ(accounting.sent(), 1u);
  EXPECT_TRUE(accounting.Balanced());
  EXPECT_EQ(inner.probes, 1);  // faulted probes never reach the inner
}

TEST(FaultyTransport, BurstyLossNearExpectedLongRunRate) {
  AlwaysUpTransport inner;
  FaultPlan plan;
  plan.window_seconds = 1;
  plan.burst.enabled = true;
  plan.burst.p_good_to_bad = 0.05;
  plan.burst.p_bad_to_good = 0.3;
  plan.burst.loss_bad = 0.8;
  FaultyTransport transport{inner, plan};
  const int n = 40000;
  int lost = 0;
  for (int i = 0; i < n; ++i) {
    if (transport.Probe(AddressIn(2, static_cast<std::uint8_t>(i % 100)),
                        i / 4) == net::ProbeStatus::kTimeout) {
      ++lost;
    }
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, plan.burst.ExpectedLoss(),
              0.03);
  EXPECT_TRUE(transport.accounting().Balanced());
}

TEST(FaultyTransport, DeterministicAcrossInstances) {
  FaultPlan plan;
  plan.iid_loss = 0.2;
  plan.burst.enabled = true;
  AlwaysUpTransport inner_a;
  AlwaysUpTransport inner_b;
  FaultyTransport a{inner_a, plan};
  FaultyTransport b{inner_b, plan};
  for (int i = 0; i < 2000; ++i) {
    const auto target = AddressIn(4, static_cast<std::uint8_t>(i % 64));
    ASSERT_EQ(a.Probe(target, i / 8), b.Probe(target, i / 8)) << i;
  }
}

TEST(FaultyTransport, SaveRestoreRoundTripsAccounting) {
  AlwaysUpTransport inner;
  FaultPlan plan;
  plan.iid_loss = 0.25;
  FaultyTransport transport{inner, plan};
  for (int i = 0; i < 500; ++i) {
    transport.Probe(AddressIn(1, static_cast<std::uint8_t>(i % 100)), i);
  }
  std::vector<std::uint8_t> bytes;
  transport.SaveState(bytes);

  AlwaysUpTransport inner_b;
  FaultyTransport restored{inner_b, plan};
  ASSERT_TRUE(restored.RestoreState(bytes));
  EXPECT_EQ(restored.accounting().attempts, transport.accounting().attempts);
  EXPECT_EQ(restored.accounting().lost, transport.accounting().lost);
  EXPECT_FALSE(restored.RestoreState(std::span<const std::uint8_t>{}));
}

// The ISSUE's controlled experiment: a clean strictly-diurnal block must
// keep its strict verdict under moderate bursty loss — the adaptive
// prober absorbs the drops (§2.1), it does not hallucinate outages.
core::BlockAnalysis AnalyzeControlledBlock(const FaultPlan& plan,
                                           bool with_faults) {
  sim::BlockSpec spec;
  spec.block = net::Prefix24::FromIndex(0x070000);
  spec.seed = 0xc1ea4;
  spec.n_always = 50;
  spec.n_diurnal = 100;
  spec.response_prob = 1.0F;

  core::AnalyzerConfig config;
  const probing::RoundScheduler scheduler{config.schedule};
  sim::SimTransport inner{0x7247};
  inner.AddBlock(&spec);
  FaultyTransport faulty{inner, plan};
  net::Transport& transport =
      with_faults ? static_cast<net::Transport&>(faulty) : inner;
  core::BlockAnalyzer analyzer{spec.block, sim::EverActiveOctets(spec),
                               sim::TrueAvailability(spec, 13 * 3600),
                               0x9e37, config};
  analyzer.RunCampaign(transport, scheduler.RoundsForDays(7));
  return analyzer.Finish();
}

TEST(FaultyTransport, ModerateBurstyLossKeepsCleanBlockStrict) {
  FaultPlan plan;
  plan.iid_loss = 0.05;
  plan.burst.enabled = true;  // defaults: ~11% extra loss, bursty
  const auto clean = AnalyzeControlledBlock(plan, /*with_faults=*/false);
  const auto faulted = AnalyzeControlledBlock(plan, /*with_faults=*/true);
  ASSERT_TRUE(clean.probed);
  ASSERT_TRUE(faulted.probed);
  EXPECT_TRUE(clean.diurnal.IsStrict());
  EXPECT_TRUE(faulted.diurnal.IsStrict())
      << "moderate loss flipped a clean block's strict verdict";
  EXPECT_EQ(clean.diurnal.classification, faulted.diurnal.classification);
}

}  // namespace
}  // namespace sleepwalk::faults
