// Resilient supervisor: retry/backoff, quarantine, gap windows, forced
// restarts, and the resilience report.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>

#include "sleepwalk/core/checkpoint.h"
#include "sleepwalk/core/supervisor.h"
#include "sleepwalk/faults/faulty_transport.h"
#include "sleepwalk/report/resilience.h"
#include "sleepwalk/sim/world.h"

namespace sleepwalk {
namespace {

std::vector<core::BlockTarget> TargetsOf(const sim::SimWorld& world) {
  std::vector<core::BlockTarget> targets;
  for (const auto& block : world.blocks()) {
    targets.push_back({block.spec.block, sim::EverActiveOctets(block.spec),
                       sim::TrueAvailability(block.spec, 13 * 3600)});
  }
  return targets;
}

sim::SimWorld SmallWorld(std::uint64_t seed = 0xfab1e) {
  sim::WorldConfig config;
  config.total_blocks = 12;
  config.seed = seed;
  return sim::SimWorld::Generate(config);
}

/// Throws on the first `failures_per_round` probes of every round instant,
/// then behaves; exercises the retry path without a FaultPlan.
class FlakyTransport final : public net::Transport {
 public:
  FlakyTransport(net::Transport& inner, int failures_per_instant)
      : inner_(inner), failures_per_instant_(failures_per_instant) {}

  net::ProbeStatus Probe(net::Ipv4Addr target,
                         std::int64_t when_sec) override {
    if (when_sec != current_when_) {
      current_when_ = when_sec;
      failures_so_far_ = 0;
    }
    if (failures_so_far_ < failures_per_instant_) {
      ++failures_so_far_;
      throw net::TransportError{"flaky"};
    }
    return inner_.Probe(target, when_sec);
  }

 private:
  net::Transport& inner_;
  int failures_per_instant_;
  std::int64_t current_when_ = -1;
  int failures_so_far_ = 0;
};

TEST(Supervisor, MatchesPlainCampaignOnCleanTransport) {
  const auto world = SmallWorld();
  core::SupervisorConfig config;
  auto transport_a = world.MakeTransport(3);
  const auto plain = core::RunCampaign(TargetsOf(world), *transport_a, 200,
                                       config.analyzer, config.seed);
  auto transport_b = world.MakeTransport(3);
  const auto outcome = core::RunResilientCampaign(TargetsOf(world),
                                                  *transport_b, 200, config);
  ASSERT_EQ(plain.analyses.size(), outcome.result.analyses.size());
  EXPECT_EQ(plain.counts.strict, outcome.result.counts.strict);
  EXPECT_EQ(plain.counts.skipped, outcome.result.counts.skipped);
  for (std::size_t i = 0; i < plain.analyses.size(); ++i) {
    EXPECT_EQ(plain.analyses[i].short_series.values,
              outcome.result.analyses[i].short_series.values);
  }
  EXPECT_EQ(outcome.stats.retries, 0u);
  EXPECT_EQ(outcome.stats.rounds_failed, 0u);
  EXPECT_TRUE(outcome.quarantined.empty());
  EXPECT_FALSE(outcome.resumed);
}

TEST(Supervisor, RetriesRecoverFromTransientErrors) {
  const auto world = SmallWorld();
  auto inner = world.MakeTransport(3);
  FlakyTransport flaky{*inner, 1};  // first probe of every round throws
  core::SupervisorConfig config;
  std::vector<double> delays;
  config.sleeper = [&delays](double d) { delays.push_back(d); };
  const auto outcome =
      core::RunResilientCampaign(TargetsOf(world), flaky, 50, config);
  EXPECT_GT(outcome.stats.retries, 0u);
  EXPECT_EQ(outcome.stats.rounds_failed, 0u);
  EXPECT_TRUE(outcome.quarantined.empty());
  EXPECT_EQ(delays.size(), outcome.stats.retries);
  double sum = 0.0;
  const double cap = config.retry.max_delay_sec * (1.0 + config.retry.jitter);
  for (const double delay : delays) {
    EXPECT_GE(delay, 0.0);
    EXPECT_LE(delay, cap);
    sum += delay;
  }
  EXPECT_DOUBLE_EQ(sum, outcome.stats.backoff_seconds);
}

TEST(Supervisor, QuarantinesPersistentlyFailingBlocksOnly) {
  const auto world = SmallWorld();
  auto targets = TargetsOf(world);
  const auto dead_block = targets[2].block;

  auto inner = world.MakeTransport(3);
  faults::FaultPlan plan;
  plan.dead_blocks = {dead_block.Index()};
  plan.burst.enabled = true;
  plan.burst.loss_bad = 0.9;  // >= 20% long-run loss, bursty
  plan.burst.p_good_to_bad = 0.1;
  plan.burst.p_bad_to_good = 0.25;
  faults::FaultyTransport transport{*inner, plan};

  core::SupervisorConfig config;
  config.forced_restart_rounds = {20, 40};  // two prober restarts
  const auto outcome =
      core::RunResilientCampaign(std::move(targets), transport, 60, config);

  // The campaign finished: one analysis per target, despite >=20% bursty
  // loss and two restarts; only the dead block was quarantined.
  ASSERT_EQ(outcome.result.analyses.size(), world.blocks().size());
  ASSERT_EQ(outcome.quarantined.size(), 1u);
  EXPECT_EQ(outcome.quarantined[0], dead_block);
  EXPECT_EQ(outcome.stats.quarantined_blocks, 1u);
  EXPECT_GT(outcome.result.counts.skipped, 0);
  EXPECT_GT(outcome.stats.rounds_failed, 0u);

  // Probe accounting balances: sent = answered + lost + rate-limited
  // + unreachable.
  auto stats = outcome.stats;
  stats.probes.Merge(transport.accounting());
  EXPECT_TRUE(stats.probes.Balanced());
  EXPECT_GT(stats.probes.lost, 0u);

  // Forced restarts fired once per surviving block per scheduled round.
  EXPECT_GT(outcome.stats.forced_restarts, 0u);
}

TEST(Supervisor, GapWindowsSkipRoundsButKeepAnalyses) {
  const auto world = SmallWorld();
  auto transport = world.MakeTransport(3);
  core::SupervisorConfig config;
  config.gap_round_windows = {{10, 20}};
  const auto outcome =
      core::RunResilientCampaign(TargetsOf(world), *transport, 400, config);
  // 10 gap rounds per block.
  EXPECT_EQ(outcome.stats.rounds_gapped, 10u * world.blocks().size());
  ASSERT_EQ(outcome.result.analyses.size(), world.blocks().size());
  for (const auto& analysis : outcome.result.analyses) {
    if (analysis.probed) {
      // Gapped rounds produced no raw samples, yet the series was
      // regularized over the hole.
      EXPECT_GT(analysis.short_series.values.size(), 0u);
    }
  }
}

TEST(Supervisor, CheckpointedCampaignIsIdempotentOnResume) {
  const auto world = SmallWorld();
  const std::string path =
      testing::TempDir() + "/sleepwalk_supervisor_stop.ck";
  std::remove(path.c_str());

  core::SupervisorConfig config;
  config.checkpoint_path = path;
  auto transport = world.MakeTransport(3);
  auto first = core::RunResilientCampaign(TargetsOf(world), *transport, 40,
                                          config);
  ASSERT_FALSE(first.stopped_early);
  ASSERT_GT(first.stats.checkpoints_written, 0u);

  // A finished campaign resumed from its own final checkpoint is
  // idempotent: nothing re-runs, the stored result comes back.
  auto transport_b = world.MakeTransport(3);
  auto resumed = core::RunResilientCampaign(TargetsOf(world), *transport_b,
                                            40, config);
  EXPECT_TRUE(resumed.resumed);
  ASSERT_EQ(resumed.result.analyses.size(), first.result.analyses.size());
  for (std::size_t i = 0; i < first.result.analyses.size(); ++i) {
    EXPECT_EQ(first.result.analyses[i].short_series.values,
              resumed.result.analyses[i].short_series.values);
  }
  std::remove(path.c_str());
}

TEST(Supervisor, MismatchedFingerprintRefusesResume) {
  const auto world = SmallWorld();
  const std::string path =
      testing::TempDir() + "/sleepwalk_supervisor_fp.ck";
  std::remove(path.c_str());

  core::SupervisorConfig config;
  config.checkpoint_path = path;
  auto transport = world.MakeTransport(3);
  const auto first =
      core::RunResilientCampaign(TargetsOf(world), *transport, 30, config);
  ASSERT_FALSE(first.resumed);

  // Different round count => different campaign => fresh start.
  auto transport_b = world.MakeTransport(3);
  const auto second = core::RunResilientCampaign(TargetsOf(world),
                                                 *transport_b, 31, config);
  EXPECT_FALSE(second.resumed);
  std::remove(path.c_str());
}

TEST(ResilienceReport, PrintsBalancedTableAndCsv) {
  report::ResilienceStats stats;
  stats.probes.attempts = 100;
  stats.probes.errors = 4;
  stats.probes.answered = 70;
  stats.probes.lost = 20;
  stats.probes.rate_limited = 5;
  stats.probes.unreachable = 1;
  stats.rounds_attempted = 50;
  stats.retries = 3;
  stats.backoff_seconds = 1.5;
  ASSERT_TRUE(stats.probes.Balanced());

  std::ostringstream out;
  report::PrintResilienceReport(out, stats);
  EXPECT_NE(out.str().find("probe attempts"), std::string::npos);
  EXPECT_NE(out.str().find("quarantined blocks"), std::string::npos);
  EXPECT_EQ(out.str().find("WARNING"), std::string::npos);

  stats.probes.lost = 19;  // unbalance it
  std::ostringstream warn;
  report::PrintResilienceReport(warn, stats);
  EXPECT_NE(warn.str().find("WARNING"), std::string::npos);

  const auto header = report::ResilienceCsvHeader();
  const auto row = report::ResilienceCsvRow(stats);
  EXPECT_EQ(std::count(header.begin(), header.end(), ','),
            std::count(row.begin(), row.end(), ','));
}

TEST(ResilienceReport, MergeAccumulates) {
  report::ResilienceStats a;
  a.retries = 2;
  a.probes.attempts = 10;
  report::ResilienceStats b;
  b.retries = 3;
  b.probes.attempts = 5;
  b.resumed_from_checkpoint = true;
  a.Merge(b);
  EXPECT_EQ(a.retries, 5u);
  EXPECT_EQ(a.probes.attempts, 15u);
  EXPECT_TRUE(a.resumed_from_checkpoint);
}

}  // namespace
}  // namespace sleepwalk
