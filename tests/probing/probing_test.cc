#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sleepwalk/probing/belief.h"
#include "sleepwalk/probing/prober.h"
#include "sleepwalk/probing/scheduler.h"
#include "sleepwalk/probing/walker.h"

namespace sleepwalk::probing {
namespace {

TEST(BeliefModel, StartsAtPrior) {
  BeliefModel model;
  EXPECT_DOUBLE_EQ(model.belief(), 0.9);
  EXPECT_TRUE(model.ConclusiveUp());
}

TEST(BeliefModel, PositiveDrivesBeliefUp) {
  BeliefParams params;
  params.prior_up = 0.5;
  BeliefModel model{params};
  model.ObservePositive(0.3);
  EXPECT_GE(model.belief(), 0.99);
  EXPECT_TRUE(model.ConclusiveUp());
}

TEST(BeliefModel, NegativesDriveBeliefDown) {
  BeliefModel model;
  // With high availability, a few negatives are conclusive evidence of
  // an outage.
  int probes = 0;
  while (!model.ConclusiveDown() && probes < 20) {
    model.ObserveNegative(0.9);
    ++probes;
  }
  EXPECT_TRUE(model.ConclusiveDown());
  EXPECT_LE(probes, 4) << "high-A blocks should conclude down quickly";
}

TEST(BeliefModel, LowAvailabilityNeedsMoreNegatives) {
  BeliefModel high;
  BeliefModel low;
  int high_probes = 0;
  int low_probes = 0;
  while (!high.ConclusiveDown() && high_probes < 50) {
    high.ObserveNegative(0.9);
    ++high_probes;
  }
  while (!low.ConclusiveDown() && low_probes < 50) {
    low.ObserveNegative(0.2);
    ++low_probes;
  }
  EXPECT_LT(high_probes, low_probes)
      << "this asymmetry is why A-hat_o must not overestimate (§2.1.1)";
}

TEST(BeliefModel, PositiveRecoversFromDown) {
  BeliefModel model;
  for (int i = 0; i < 10; ++i) model.ObserveNegative(0.8);
  EXPECT_TRUE(model.ConclusiveDown());
  model.ObservePositive(0.8);
  EXPECT_TRUE(model.ConclusiveUp());
}

TEST(BeliefModel, StartRoundDecaysTowardPrior) {
  BeliefModel model;
  for (int i = 0; i < 10; ++i) model.ObserveNegative(0.8);
  const double before = model.belief();
  model.StartRound();
  EXPECT_GT(model.belief(), before);
  EXPECT_LT(model.belief(), 0.9);
}

TEST(BeliefModel, ResetRestoresPrior) {
  BeliefModel model;
  for (int i = 0; i < 5; ++i) model.ObserveNegative(0.8);
  model.Reset();
  EXPECT_DOUBLE_EQ(model.belief(), 0.9);
}

TEST(BeliefModel, BeliefStaysInOpenUnitInterval) {
  BeliefModel model;
  for (int i = 0; i < 1000; ++i) model.ObserveNegative(0.99);
  EXPECT_GT(model.belief(), 0.0);
  for (int i = 0; i < 1000; ++i) model.ObservePositive(0.99);
  EXPECT_LT(model.belief(), 1.0);
}

std::vector<std::uint8_t> Octets(int count, int first = 1) {
  std::vector<std::uint8_t> octets;
  for (int i = 0; i < count; ++i) {
    octets.push_back(static_cast<std::uint8_t>(first + i));
  }
  return octets;
}

TEST(AddressWalker, VisitsEveryAddressOncePerCycle) {
  AddressWalker walker{Octets(50), 7};
  std::set<std::uint8_t> seen;
  for (int i = 0; i < 50; ++i) seen.insert(walker.Next());
  EXPECT_EQ(seen.size(), 50u) << "one cycle must be a permutation";
}

TEST(AddressWalker, OrderIsShuffled) {
  AddressWalker walker{Octets(100), 7};
  int in_place = 0;
  const auto& order = walker.order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == static_cast<std::uint8_t>(1 + i)) ++in_place;
  }
  EXPECT_LT(in_place, 20) << "shuffle left too many fixed points";
}

TEST(AddressWalker, DifferentSeedsDifferentOrders) {
  AddressWalker a{Octets(64), 1};
  AddressWalker b{Octets(64), 2};
  EXPECT_NE(a.order(), b.order());
}

TEST(AddressWalker, CursorPersistsAcrossCycles) {
  AddressWalker walker{Octets(10), 3};
  std::vector<std::uint8_t> first_cycle;
  for (int i = 0; i < 10; ++i) first_cycle.push_back(walker.Next());
  std::vector<std::uint8_t> second_cycle;
  for (int i = 0; i < 10; ++i) second_cycle.push_back(walker.Next());
  EXPECT_EQ(first_cycle, second_cycle) << "the permutation is fixed";
}

TEST(AddressWalker, RestartRewindsToStart) {
  AddressWalker walker{Octets(10), 3};
  const auto first = walker.Next();
  walker.Next();
  walker.Next();
  walker.Restart();
  EXPECT_EQ(walker.Next(), first);
}

TEST(AddressWalker, EmptySetThrows) {
  EXPECT_THROW((AddressWalker{{}, 1}), std::invalid_argument);
}

TEST(AddressWalker, CursorSaveRestoreResumesSequence) {
  AddressWalker a{{1, 2, 3, 4, 5}, 99};
  for (int i = 0; i < 3; ++i) a.Next();
  const auto cursor = a.cursor();
  AddressWalker b{{1, 2, 3, 4, 5}, 99};
  b.set_cursor(cursor);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next()) << i;
}

TEST(AdaptiveProber, EmptyEverActiveThrows) {
  // The prober must reject an empty E(b) with a clear message instead of
  // letting the walker throw from deep inside.
  EXPECT_THROW((AdaptiveProber{net::Prefix24::FromIndex(1), {}, 1}),
               std::invalid_argument);
}

TEST(AdaptiveProber, StateExportRestoreRoundTrips) {
  AdaptiveProber prober{net::Prefix24::FromIndex(9), Octets(40), 7};
  const auto state = prober.ExportState();
  AdaptiveProber other{net::Prefix24::FromIndex(9), Octets(40), 7};
  other.RestoreState(state);
  EXPECT_EQ(other.ExportState().cursor, state.cursor);
  EXPECT_DOUBLE_EQ(other.ExportState().belief, state.belief);
}

TEST(RoundScheduler, TimeOfRound) {
  ScheduleConfig config;
  config.round_seconds = 660;
  config.epoch_sec = 1000;
  RoundScheduler scheduler{config};
  EXPECT_EQ(scheduler.TimeOf(0), 1000);
  EXPECT_EQ(scheduler.TimeOf(10), 1000 + 6600);
}

TEST(RoundScheduler, RestartEvery30Rounds) {
  RoundScheduler scheduler{ScheduleConfig{}};
  EXPECT_FALSE(scheduler.IsRestartRound(0));
  EXPECT_FALSE(scheduler.IsRestartRound(29));
  EXPECT_TRUE(scheduler.IsRestartRound(30));
  EXPECT_TRUE(scheduler.IsRestartRound(60));
  EXPECT_FALSE(scheduler.IsRestartRound(31));
}

TEST(RoundScheduler, RestartsDisabled) {
  ScheduleConfig config;
  config.restart_every_rounds = 0;
  RoundScheduler scheduler{config};
  for (int round = 0; round < 100; ++round) {
    EXPECT_FALSE(scheduler.IsRestartRound(round));
  }
}

TEST(RoundScheduler, RoundCounts) {
  RoundScheduler scheduler{ScheduleConfig{}};
  EXPECT_EQ(scheduler.RoundsPerDay(), 130);  // floor(86400/660)
  EXPECT_EQ(scheduler.RoundsForDays(14), 1833);  // ceil(14*86400/660)
  EXPECT_EQ(scheduler.RoundsForDays(35), 4582);  // ceil(35*86400/660)
}

// A deterministic scripted transport for prober tests.
class ScriptedTransport final : public net::Transport {
 public:
  /// Probes answer positively when `up` is true, with address
  /// `always_dead` never answering.
  explicit ScriptedTransport(bool up, int always_dead = -1)
      : up_(up), always_dead_(always_dead) {}

  net::ProbeStatus Probe(net::Ipv4Addr target,
                         std::int64_t /*when*/) override {
    ++probes_;
    const int octet = target.Octets()[3];
    if (!up_ || octet == always_dead_) return net::ProbeStatus::kTimeout;
    return net::ProbeStatus::kEchoReply;
  }

  void set_up(bool up) { up_ = up; }
  int probes() const { return probes_; }

 private:
  bool up_;
  int always_dead_;
  int probes_ = 0;
};

TEST(AdaptiveProber, StopsOnFirstPositive) {
  ScriptedTransport transport{/*up=*/true};
  AdaptiveProber prober{net::Prefix24::FromIndex(1), Octets(100), 1};
  const auto record = prober.RunRound(transport, 0, 0, 0.9);
  EXPECT_EQ(record.probes, 1);
  EXPECT_EQ(record.positives, 1);
  EXPECT_TRUE(record.concluded_up);
  EXPECT_FALSE(record.concluded_down);
}

TEST(AdaptiveProber, ConcludesDownWithinBudget) {
  ScriptedTransport transport{/*up=*/false};
  AdaptiveProber prober{net::Prefix24::FromIndex(2), Octets(100), 1};
  const auto record = prober.RunRound(transport, 0, 0, 0.9);
  EXPECT_TRUE(record.concluded_down);
  EXPECT_EQ(record.positives, 0);
  EXPECT_LE(record.probes, 15);
  EXPECT_GE(record.probes, 2);
}

TEST(AdaptiveProber, NeverExceedsProbeBudget) {
  ScriptedTransport transport{/*up=*/false};
  ProberConfig config;
  config.max_probes_per_round = 15;
  AdaptiveProber prober{net::Prefix24::FromIndex(3), Octets(200), 1, config};
  for (std::int64_t round = 0; round < 50; ++round) {
    const auto record = prober.RunRound(transport, round, round * 660, 0.15);
    EXPECT_LE(record.probes, 15);
    EXPECT_GE(record.probes, 1);
  }
}

TEST(AdaptiveProber, LowOperationalAvailabilityProbesMore) {
  // With a low A-hat_o, each negative is weak evidence, so probing per
  // round increases (paper Fig 2: mean 5.08 probes/round at A=0.19).
  ScriptedTransport down_transport{/*up=*/false};
  AdaptiveProber prober_high{net::Prefix24::FromIndex(4), Octets(100), 1};
  AdaptiveProber prober_low{net::Prefix24::FromIndex(5), Octets(100), 1};
  const auto high = prober_high.RunRound(down_transport, 0, 0, 0.9);
  const auto low = prober_low.RunRound(down_transport, 0, 0, 0.2);
  EXPECT_GT(low.probes, high.probes);
}

TEST(AdaptiveProber, DetectsOutageAndRecovery) {
  ScriptedTransport transport{/*up=*/true};
  AdaptiveProber prober{net::Prefix24::FromIndex(6), Octets(50), 1};
  auto record = prober.RunRound(transport, 0, 0, 0.8);
  EXPECT_TRUE(record.concluded_up);

  transport.set_up(false);
  bool saw_down = false;
  for (std::int64_t round = 1; round < 5; ++round) {
    record = prober.RunRound(transport, round, round * 660, 0.8);
    if (record.concluded_down) saw_down = true;
  }
  EXPECT_TRUE(saw_down);

  transport.set_up(true);
  record = prober.RunRound(transport, 10, 6600, 0.8);
  EXPECT_TRUE(record.concluded_up);
}

TEST(AdaptiveProber, RestartResetsWalkAndBelief) {
  ScriptedTransport transport{/*up=*/false};
  AdaptiveProber prober{net::Prefix24::FromIndex(7), Octets(30), 1};
  prober.RunRound(transport, 0, 0, 0.9);
  EXPECT_TRUE(prober.belief().ConclusiveDown());
  prober.Restart();
  EXPECT_DOUBLE_EQ(prober.belief().belief(), 0.9);
}

TEST(AdaptiveProber, EverActiveCount) {
  AdaptiveProber prober{net::Prefix24::FromIndex(8), Octets(42), 1};
  EXPECT_EQ(prober.ever_active_count(), 42u);
}

}  // namespace
}  // namespace sleepwalk::probing
