#include "sleepwalk/geo/phase_geolocator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sleepwalk/util/rng.h"

namespace sleepwalk::geo {
namespace {

// The linear phase/longitude law the paper measures: phase grows with
// longitude (eastern blocks wake earlier in UTC).
double PhaseFor(double longitude) {
  return longitude / 180.0 * std::numbers::pi;
}

TEST(PhaseGeolocator, EmptyPredictsNothing) {
  PhaseGeolocator geolocator;
  EXPECT_FALSE(geolocator.Predict(0.0).has_value());
  EXPECT_EQ(geolocator.calibration_size(), 0u);
}

TEST(PhaseGeolocator, RecoversCalibrationLongitudes) {
  PhaseGeolocator geolocator{36};
  Rng rng{1};
  for (int i = 0; i < 2000; ++i) {
    const double lon = rng.NextDouble() * 360.0 - 180.0;
    geolocator.AddCalibration(PhaseFor(lon) + 0.02 * rng.NextGaussian(),
                              lon);
  }
  for (const double lon : {-150.0, -60.0, 0.0, 45.0, 120.0, 170.0}) {
    const auto prediction = geolocator.Predict(PhaseFor(lon));
    ASSERT_TRUE(prediction.has_value()) << lon;
    EXPECT_NEAR(prediction->longitude_degrees, lon, 12.0) << lon;
    EXPECT_LT(prediction->stddev_degrees, 15.0);
    EXPECT_GT(prediction->calibration_samples, 10u);
  }
}

TEST(PhaseGeolocator, AntimeridianMeanIsCircular) {
  // Samples straddling +/-180: a naive arithmetic mean would report ~0.
  PhaseGeolocator geolocator{8};
  for (int i = 0; i < 50; ++i) {
    geolocator.AddCalibration(3.0, 175.0);
    geolocator.AddCalibration(3.0, -175.0);
  }
  const auto prediction = geolocator.Predict(3.0);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_GT(std::fabs(prediction->longitude_degrees), 170.0);
}

TEST(PhaseGeolocator, FallsBackToNeighbourBin) {
  PhaseGeolocator geolocator{24};
  geolocator.AddCalibration(0.0, 10.0);
  // A phase one bin away still gets a prediction from the neighbour.
  const double one_bin = 2.0 * std::numbers::pi / 24.0;
  const auto prediction = geolocator.Predict(one_bin * 0.9);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_NEAR(prediction->longitude_degrees, 10.0, 1e-9);
}

TEST(PhaseGeolocator, SpreadReportedHonestly) {
  // A phase bin fed from two distant longitudes must report a large
  // stddev — the paper's "some phases only identify the hemisphere".
  PhaseGeolocator geolocator{12};
  for (int i = 0; i < 30; ++i) {
    geolocator.AddCalibration(1.0, -60.0);
    geolocator.AddCalibration(1.0, 20.0);
  }
  const auto prediction = geolocator.Predict(1.0);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_GT(prediction->stddev_degrees, 30.0);
}

TEST(PhaseGeolocator, SingleSampleHasMaxUncertainty) {
  PhaseGeolocator geolocator;
  geolocator.AddCalibration(0.5, 42.0);
  const auto prediction = geolocator.Predict(0.5);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_DOUBLE_EQ(prediction->stddev_degrees, 180.0);
}

TEST(PhaseGeolocator, WrappedPhasesShareBins) {
  PhaseGeolocator geolocator{16};
  geolocator.AddCalibration(0.1, 30.0);
  const auto wrapped = geolocator.Predict(0.1 + 2.0 * std::numbers::pi);
  ASSERT_TRUE(wrapped.has_value());
  EXPECT_NEAR(wrapped->longitude_degrees, 30.0, 1e-9);
}

}  // namespace
}  // namespace sleepwalk::geo
