#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sleepwalk/geo/geodb.h"
#include "sleepwalk/geo/grid.h"
#include "sleepwalk/geo/region.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::geo {
namespace {

TEST(Region, DegRadRoundTrip) {
  EXPECT_NEAR(RadToDeg(DegToRad(123.4)), 123.4, 1e-12);
  EXPECT_NEAR(DegToRad(180.0), std::numbers::pi, 1e-15);
}

TEST(Region, WrapLongitude) {
  EXPECT_NEAR(WrapLongitude(0.0), 0.0, 1e-12);
  EXPECT_NEAR(WrapLongitude(190.0), -170.0, 1e-12);
  EXPECT_NEAR(WrapLongitude(-190.0), 170.0, 1e-12);
  EXPECT_NEAR(WrapLongitude(360.0), 0.0, 1e-12);
  EXPECT_NEAR(WrapLongitude(540.0), 180.0 - 360.0, 1e-12);
  EXPECT_NEAR(WrapLongitude(179.9), 179.9, 1e-12);
}

TEST(Region, WrapAngle) {
  EXPECT_NEAR(WrapAngle(0.0), 0.0, 1e-12);
  EXPECT_NEAR(WrapAngle(3.0 * std::numbers::pi), -std::numbers::pi, 1e-12);
  EXPECT_NEAR(WrapAngle(-3.0 * std::numbers::pi), -std::numbers::pi, 1e-12);
  EXPECT_NEAR(WrapAngle(1.0), 1.0, 1e-12);
}

TEST(Region, UnrollPhaseCentersOnLongitude) {
  // Phase -3 at longitude +170 deg (2.967 rad) should unroll to +3.28.
  const double unrolled = UnrollPhase(-3.0, 170.0);
  const double center = DegToRad(170.0);
  EXPECT_GE(unrolled, center - std::numbers::pi);
  EXPECT_LT(unrolled, center + std::numbers::pi);
  EXPECT_NEAR(unrolled, -3.0 + 2.0 * std::numbers::pi, 1e-12);
}

TEST(Region, UnrollPhaseIdentityWhenClose) {
  EXPECT_NEAR(UnrollPhase(0.1, 0.0), 0.1, 1e-12);
  EXPECT_NEAR(UnrollPhase(-0.5, -20.0), -0.5, 1e-12);
}

TEST(Region, KmToDegreesLon) {
  // At the equator ~111.32 km per degree.
  EXPECT_NEAR(KmToDegreesLon(111.32, 0.0), 1.0, 1e-9);
  // At 60N a degree of longitude is half as long.
  EXPECT_NEAR(KmToDegreesLon(111.32, 60.0), 2.0, 1e-9);
  // Near the pole, avoid division blowup.
  EXPECT_DOUBLE_EQ(KmToDegreesLon(10.0, 90.0), 0.0);
}

std::vector<TrueLocation> MakeTruth(std::size_t n) {
  std::vector<TrueLocation> truth;
  truth.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TrueLocation loc;
    loc.block = net::Prefix24::FromIndex(static_cast<std::uint32_t>(
        (100u << 16) + i));
    loc.latitude = 35.0;
    loc.longitude = 104.0;
    loc.country_code = "CN";
    truth.push_back(loc);
  }
  return truth;
}

TEST(GeoDatabase, CoverageApproximatelyHonored) {
  const auto truth = MakeTruth(5000);
  GeoDatabase::Options options;
  options.coverage = 0.93;
  const auto db = GeoDatabase::FromTruth(truth, options);
  const double fraction =
      static_cast<double>(db.size()) / static_cast<double>(truth.size());
  EXPECT_NEAR(fraction, 0.93, 0.02);
}

TEST(GeoDatabase, LookupMissForUncoveredBlock) {
  const auto truth = MakeTruth(10);
  GeoDatabase::Options options;
  options.coverage = 1.0;
  options.centroid_fraction = 0.0;
  const auto db = GeoDatabase::FromTruth(truth, options);
  EXPECT_EQ(db.size(), truth.size());
  EXPECT_EQ(db.Lookup(net::Prefix24::FromIndex(999)), nullptr);
}

TEST(GeoDatabase, JitterIsCityScale) {
  const auto truth = MakeTruth(2000);
  GeoDatabase::Options options;
  options.coverage = 1.0;
  options.centroid_fraction = 0.0;
  options.jitter_km = 40.0;
  const auto db = GeoDatabase::FromTruth(truth, options);
  double sum_lat_err_km = 0.0;
  std::size_t found = 0;
  for (const auto& loc : truth) {
    const auto* record = db.Lookup(loc.block);
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->country_code, "CN");
    sum_lat_err_km +=
        std::fabs(record->latitude - loc.latitude) * kKmPerDegreeLat;
    ++found;
  }
  const double mean_err = sum_lat_err_km / static_cast<double>(found);
  // |N(0, 40km)| has mean ~32 km.
  EXPECT_GT(mean_err, 15.0);
  EXPECT_LT(mean_err, 50.0);
}

TEST(GeoDatabase, CentroidFallbackUsesCountryCentroid) {
  const auto truth = MakeTruth(500);
  GeoDatabase::Options options;
  options.coverage = 1.0;
  options.centroid_fraction = 1.0;  // force every entry to centroid
  const auto db = GeoDatabase::FromTruth(truth, options);
  const auto* record = db.Lookup(truth.front().block);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->centroid_only);
  // China's centroid from the worlddata table.
  EXPECT_NEAR(record->latitude, 35.9, 1e-9);
  EXPECT_NEAR(record->longitude, 104.2, 1e-9);
}

TEST(GeoDatabase, DeterministicForSameSeed) {
  const auto truth = MakeTruth(200);
  GeoDatabase::Options options;
  const auto db1 = GeoDatabase::FromTruth(truth, options);
  const auto db2 = GeoDatabase::FromTruth(truth, options);
  EXPECT_EQ(db1.size(), db2.size());
  for (const auto& loc : truth) {
    const auto* r1 = db1.Lookup(loc.block);
    const auto* r2 = db2.Lookup(loc.block);
    ASSERT_EQ(r1 == nullptr, r2 == nullptr);
    if (r1 != nullptr) {
      EXPECT_DOUBLE_EQ(r1->latitude, r2->latitude);
      EXPECT_DOUBLE_EQ(r1->longitude, r2->longitude);
    }
  }
}

TEST(GeoGrid, DefaultIs2By2Degrees) {
  GeoGrid grid;
  EXPECT_EQ(grid.rows(), 90u);
  EXPECT_EQ(grid.cols(), 180u);
}

TEST(GeoGrid, AddAndQuery) {
  GeoGrid grid{2.0};
  grid.Add(35.0, 104.0, true);
  grid.Add(35.5, 104.5, false);
  // (35, 104): row (35+90)/2 = 62, col (104+180)/2 = 142.
  EXPECT_EQ(grid.TotalAt(62, 142), 2u);
  EXPECT_EQ(grid.DiurnalAt(62, 142), 1u);
  EXPECT_DOUBLE_EQ(grid.DiurnalFractionAt(62, 142), 0.5);
  EXPECT_EQ(grid.total(), 2u);
}

TEST(GeoGrid, EmptyCellFractionIsZero) {
  GeoGrid grid{2.0};
  EXPECT_DOUBLE_EQ(grid.DiurnalFractionAt(0, 0), 0.0);
}

TEST(GeoGrid, EdgeCoordinatesClamp) {
  GeoGrid grid{2.0};
  grid.Add(90.0, 180.0, false);
  grid.Add(-90.0, -180.0, false);
  EXPECT_EQ(grid.total(), 2u);
  EXPECT_EQ(grid.TotalAt(89, 179), 1u);
  EXPECT_EQ(grid.TotalAt(0, 0), 1u);
}

TEST(GeoGrid, CoarsenPreservesCounts) {
  GeoGrid grid{2.0};
  for (int i = 0; i < 10; ++i) grid.Add(35.0, 104.0, i % 2 == 0);
  const auto counts = grid.Coarsen(18, 36, /*fractions=*/false);
  double total = 0.0;
  for (const auto& row : counts) {
    for (const double v : row) total += v;
  }
  EXPECT_DOUBLE_EQ(total, 10.0);
}

TEST(GeoGrid, CoarsenFractions) {
  GeoGrid grid{2.0};
  for (int i = 0; i < 4; ++i) grid.Add(10.0, 10.0, i < 1);  // 25% diurnal
  const auto fractions = grid.Coarsen(18, 36, /*fractions=*/true);
  double max_fraction = 0.0;
  for (const auto& row : fractions) {
    for (const double v : row) max_fraction = std::max(max_fraction, v);
  }
  EXPECT_NEAR(max_fraction, 0.25, 1e-12);
}

}  // namespace
}  // namespace sleepwalk::geo
