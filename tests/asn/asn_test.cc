#include <gtest/gtest.h>

#include <vector>

#include "sleepwalk/asn/asmap.h"
#include "sleepwalk/asn/orgs.h"

namespace sleepwalk::asn {
namespace {

net::Prefix24 Block(std::uint32_t index) {
  return net::Prefix24::FromIndex(index);
}

TEST(IpToAsnMap, AssignAndLookup) {
  IpToAsnMap map;
  map.RegisterAs({7018, "ATT-INTERNET4", "US"});
  map.Assign(Block(1), 7018);
  const auto asn = map.AsnFor(Block(1));
  ASSERT_TRUE(asn.has_value());
  EXPECT_EQ(*asn, 7018u);
  const auto* info = map.InfoFor(7018);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->name, "ATT-INTERNET4");
  EXPECT_EQ(info->country_code, "US");
}

TEST(IpToAsnMap, MissingBlockAndAs) {
  IpToAsnMap map;
  EXPECT_FALSE(map.AsnFor(Block(42)).has_value());
  EXPECT_EQ(map.InfoFor(1), nullptr);
}

TEST(IpToAsnMap, ReassignmentOverwrites) {
  IpToAsnMap map;
  map.Assign(Block(5), 100);
  map.Assign(Block(5), 200);
  EXPECT_EQ(*map.AsnFor(Block(5)), 200u);
}

TEST(IpToAsnMap, Counts) {
  IpToAsnMap map;
  map.RegisterAs({1, "A", "US"});
  map.RegisterAs({2, "B", "DE"});
  map.Assign(Block(1), 1);
  map.Assign(Block(2), 1);
  map.Assign(Block(3), 2);
  EXPECT_EQ(map.mapped_blocks(), 3u);
  EXPECT_EQ(map.as_count(), 2u);
}

TEST(NormalizeName, LowercasesAndStripsPunctuation) {
  EXPECT_EQ(NormalizeName("Time-Warner Cable, Inc."), "time warner cable");
  EXPECT_EQ(NormalizeName("CHINANET backbone"), "chinanet backbone");
}

TEST(NormalizeName, DropsBoilerplate) {
  EXPECT_EQ(NormalizeName("Example LLC"), "example");
  EXPECT_EQ(NormalizeName("The Example Corporation"), "example");
  EXPECT_EQ(NormalizeName("EXAMPLE-AS"), "example");
}

TEST(NormalizeName, EmptyAndAllBoilerplate) {
  EXPECT_EQ(NormalizeName(""), "");
  EXPECT_EQ(NormalizeName("Inc. LLC Ltd"), "");
}

std::vector<AsInfo> SampleRegistry() {
  return {
      {100, "Time Warner Cable Texas LLC", "US"},
      {101, "Time Warner Cable Ohio", "US"},
      {102, "Time Warner Cable-2", "US"},
      {200, "Comcast Cable Communications", "US"},
      {201, "Comcast Cable Communications-2", "US"},
      {300, "China Telecom Backbone", "CN"},
      {301, "China Telecom-2", "CN"},
      {400, "Deutsche Telekom AG", "DE"},
  };
}

TEST(OrgClusterer, ClustersBySharedLeadingTokens) {
  const auto registry = SampleRegistry();
  OrgClusterer clusterer{registry};
  // time warner (x3), comcast cable (x2), china telecom (x2),
  // deutsche telekom (x1) -> 4 clusters.
  EXPECT_EQ(clusterer.cluster_count(), 4u);
  EXPECT_EQ(clusterer.OrganizationOf(100), clusterer.OrganizationOf(101));
  EXPECT_EQ(clusterer.OrganizationOf(100), clusterer.OrganizationOf(102));
  EXPECT_NE(clusterer.OrganizationOf(100), clusterer.OrganizationOf(200));
}

TEST(OrgClusterer, KeywordFindsWholeOrganization) {
  const auto registry = SampleRegistry();
  OrgClusterer clusterer{registry};
  const auto ases = clusterer.AsesForKeyword("Time Warner");
  EXPECT_EQ(ases, (std::vector<std::uint32_t>{100, 101, 102}));
}

TEST(OrgClusterer, KeywordIsCaseAndPunctuationInsensitive) {
  const auto registry = SampleRegistry();
  OrgClusterer clusterer{registry};
  EXPECT_EQ(clusterer.AsesForKeyword("TIME-WARNER").size(), 3u);
  EXPECT_EQ(clusterer.AsesForKeyword("comcast").size(), 2u);
}

TEST(OrgClusterer, PartialTokenMatches) {
  const auto registry = SampleRegistry();
  OrgClusterer clusterer{registry};
  // "telecom" matches china telecom but not deutsche telekom.
  const auto ases = clusterer.AsesForKeyword("telecom");
  EXPECT_EQ(ases, (std::vector<std::uint32_t>{300, 301}));
}

TEST(OrgClusterer, UnknownKeywordAndAsn) {
  const auto registry = SampleRegistry();
  OrgClusterer clusterer{registry};
  EXPECT_TRUE(clusterer.AsesForKeyword("nonexistent isp").empty());
  EXPECT_TRUE(clusterer.AsesForKeyword("").empty());
  EXPECT_TRUE(clusterer.OrganizationOf(999).empty());
}

TEST(OrgClusterer, EmptyRegistry) {
  OrgClusterer clusterer{std::vector<AsInfo>{}};
  EXPECT_EQ(clusterer.cluster_count(), 0u);
}

}  // namespace
}  // namespace sleepwalk::asn
