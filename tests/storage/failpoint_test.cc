// Deterministic failpoints: spec grammar, count/probability arming,
// wildcard ordinals, and bit-for-bit replayability of seeded draws.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sleepwalk/util/failpoint.h"

namespace sleepwalk {
namespace {

using util::FailAction;
using util::FailpointSet;

TEST(FailpointParse, CountProbabilityAndBareForms) {
  FailpointSet set;
  ASSERT_TRUE(FailpointSet::Parse(
      "storage.append=eio@3,storage.sync=enospc%0.5,storage.rename=crash",
      set));
  // Bare form is @1: the very first rename hit fires.
  EXPECT_EQ(set.Hit("storage.rename"), FailAction::kCrash);
  // Count form fires on exactly the 3rd hit of its own site.
  EXPECT_EQ(set.Hit("storage.append"), FailAction::kNone);
  EXPECT_EQ(set.Hit("storage.append"), FailAction::kNone);
  EXPECT_EQ(set.Hit("storage.append"), FailAction::kEio);
  // ... and is one-shot.
  EXPECT_EQ(set.Hit("storage.append"), FailAction::kNone);
}

TEST(FailpointParse, RejectsMalformedSpecs) {
  const std::vector<std::string> bad = {
      "noequals",           // missing '='
      "=eio",               // empty site
      "site=explode",       // unknown action
      "site=eio@0",         // count must be >= 1
      "site=eio%0",         // probability must be > 0
      "site=eio%1.5",       // probability must be <= 1
  };
  for (const auto& text : bad) {
    FailpointSet set;
    std::string error;
    EXPECT_FALSE(FailpointSet::Parse(text, set, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
  // Empty string and stray commas arm nothing and succeed.
  FailpointSet inert;
  EXPECT_TRUE(FailpointSet::Parse("", inert));
  EXPECT_TRUE(FailpointSet::Parse("a=eio@2,,b=crash", inert));
}

TEST(Failpoint, NamedSitesCountIndependently) {
  FailpointSet set;
  ASSERT_TRUE(FailpointSet::Parse("b=eio@2", set));
  EXPECT_EQ(set.Hit("a"), FailAction::kNone);
  EXPECT_EQ(set.Hit("a"), FailAction::kNone);
  // Hits of `a` did not advance `b`'s ordinal.
  EXPECT_EQ(set.Hit("b"), FailAction::kNone);
  EXPECT_EQ(set.Hit("b"), FailAction::kEio);
  EXPECT_EQ(set.hits("a"), 2u);
  EXPECT_EQ(set.hits("b"), 2u);
  EXPECT_EQ(set.total_hits(), 4u);
}

TEST(Failpoint, WildcardMatchesGlobalOrdinal) {
  FailpointSet set;
  ASSERT_TRUE(FailpointSet::Parse("*=crash@3", set));
  EXPECT_EQ(set.Hit("a"), FailAction::kNone);
  EXPECT_EQ(set.Hit("b"), FailAction::kNone);
  // Third operation overall, regardless of site name.
  EXPECT_EQ(set.Hit("c"), FailAction::kCrash);
  EXPECT_EQ(set.Hit("a"), FailAction::kNone);  // one-shot
}

TEST(Failpoint, DefaultConstructedSetIsInertButCounts) {
  FailpointSet set;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(set.Hit("storage.append"), FailAction::kNone);
  }
  EXPECT_EQ(set.hits("storage.append"), 5u);
  EXPECT_EQ(set.total_hits(), 5u);
}

TEST(Failpoint, ProbabilityDrawsAreSeedDeterministic) {
  auto firing_pattern = [](std::uint64_t seed) {
    FailpointSet set{seed};
    FailpointSet::Parse("site=eio%0.5", set);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(set.Hit("site") == FailAction::kEio);
    }
    return fired;
  };
  const auto a = firing_pattern(42);
  const auto b = firing_pattern(42);
  EXPECT_EQ(a, b);  // replayable bit-for-bit
  // At p=0.5 over 64 draws, all-fired / none-fired would mean the draw
  // ignores its inputs (probability ~5e-20 each).
  int fired = 0;
  for (const bool f : a) fired += f ? 1 : 0;
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
  // A different seed produces a different pattern.
  EXPECT_NE(a, firing_pattern(43));
}

TEST(Failpoint, ProbabilityOneAlwaysFiresAndStaysArmed) {
  FailpointSet set{7};
  ASSERT_TRUE(FailpointSet::Parse("site=enospc%1", set));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(set.Hit("site"), FailAction::kEnospc);
  }
}

TEST(Failpoint, ResetDisarmsAndZeroesCounters) {
  FailpointSet set{7};
  ASSERT_TRUE(FailpointSet::Parse("site=eio@1", set));
  EXPECT_EQ(set.Hit("site"), FailAction::kEio);
  set.Reset();
  EXPECT_EQ(set.total_hits(), 0u);
  EXPECT_EQ(set.hits("site"), 0u);
  EXPECT_EQ(set.Hit("site"), FailAction::kNone);
}

TEST(Failpoint, ActionNamesRoundTripThroughTheParser) {
  for (const auto action :
       {FailAction::kShortWrite, FailAction::kEio, FailAction::kEnospc,
        FailAction::kCrash, FailAction::kCrashTorn}) {
    FailpointSet set;
    const std::string spec =
        std::string("site=") + util::FailActionName(action);
    ASSERT_TRUE(FailpointSet::Parse(spec, set)) << spec;
    EXPECT_EQ(set.Hit("site"), action) << spec;
  }
}

}  // namespace
}  // namespace sleepwalk
