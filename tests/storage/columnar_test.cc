// Hostile-input and round-trip coverage for the SLCK/SLPW v3 columnar
// container (storage/columnar.h): the mmap-facing reader must fail
// closed on truncations, misaligned offsets, CRC damage, version
// confusion, and padding tampering — and hand out aligned zero-copy
// typed spans when the file is intact.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "sleepwalk/net/checksum.h"
#include "sleepwalk/storage/columnar.h"

namespace sleepwalk {
namespace {

using storage::ColumnarReader;
using storage::ColumnarWriter;
using storage::kColumnarAlignBytes;
using storage::kColumnarPageBytes;

constexpr std::uint32_t kKind = 7;
constexpr std::uint64_t kFingerprint = 0xfeedface12345678ULL;
constexpr std::uint64_t kGeneration = 42;

std::vector<std::uint8_t> SampleImage() {
  ColumnarWriter writer{"SLCK", kKind, kFingerprint, kGeneration};
  std::vector<std::uint64_t> ids{10, 20, 30, 40, 50};
  std::vector<double> values{0.5, 0.25, 0.125, 1.0, 0.0};
  std::vector<std::uint8_t> blob{1, 2, 3};
  writer.AddTyped<std::uint64_t>(1, ids);
  writer.AddTyped<double>(2, values);
  writer.Add(3, 1, blob);
  return writer.Finish();
}

storage::Error Parse(ColumnarReader& reader,
                     const std::vector<std::uint8_t>& image) {
  return reader.Parse(image, "SLCK", "test.slck");
}

TEST(Columnar, RoundTripExposesHeaderAndTypedSpans) {
  const auto image = SampleImage();
  ASSERT_GT(image.size(), kColumnarPageBytes)
      << "payloads must live past the page-aligned data region start";

  ColumnarReader reader;
  ASSERT_TRUE(Parse(reader, image).ok());
  EXPECT_EQ(reader.kind(), kKind);
  EXPECT_EQ(reader.fingerprint(), kFingerprint);
  EXPECT_EQ(reader.generation(), kGeneration);
  ASSERT_EQ(reader.columns().size(), 3u);

  std::span<const std::uint64_t> ids;
  ASSERT_TRUE(reader.FetchTyped<std::uint64_t>(1, 5, ids));
  EXPECT_EQ(ids[0], 10u);
  EXPECT_EQ(ids[4], 50u);

  std::span<const double> values;
  ASSERT_TRUE(reader.FetchTyped<double>(2, 5, values));
  EXPECT_EQ(values[3], 1.0);

  // Zero-copy: the spans point into the caller's buffer, at an in-file
  // offset on the container's cache-line grid (the absolute address
  // alignment is the *mapping's* job — Env::Map returns page-aligned
  // regions; a heap vector only promises malloc alignment).
  const auto* base = image.data();
  const auto* ids_bytes = reinterpret_cast<const std::uint8_t*>(ids.data());
  EXPECT_GE(ids_bytes, base + kColumnarPageBytes);
  EXPECT_LT(ids_bytes, base + image.size());
  EXPECT_EQ(static_cast<std::size_t>(ids_bytes - base) % kColumnarAlignBytes,
            0u);

  // Fetch demands the exact row count and element width.
  EXPECT_FALSE(reader.FetchTyped<std::uint64_t>(1, 4, ids));
  std::span<const std::uint32_t> narrow;
  EXPECT_FALSE(reader.FetchTyped<std::uint32_t>(1, 5, narrow));
  EXPECT_EQ(reader.Find(99), nullptr);
}

TEST(Columnar, DeterministicEncode) {
  EXPECT_EQ(SampleImage(), SampleImage());
}

TEST(Columnar, EveryTruncationIsDetected) {
  const auto image = SampleImage();
  for (std::size_t keep = 0; keep < image.size(); ++keep) {
    std::vector<std::uint8_t> cut{image.begin(),
                                  image.begin() + static_cast<long>(keep)};
    ColumnarReader reader;
    EXPECT_FALSE(Parse(reader, cut).ok()) << "kept " << keep << " bytes";
  }
}

TEST(Columnar, EverySingleByteCorruptionIsDetected) {
  const auto image = SampleImage();
  for (std::size_t i = 0; i < image.size(); ++i) {
    auto bent = image;
    bent[i] ^= 0x01;
    ColumnarReader reader;
    EXPECT_FALSE(Parse(reader, bent).ok()) << "flipped byte " << i;
  }
}

TEST(Columnar, FlippedPaddingByteIsNamed) {
  // The CRCs only frame header, directory, and payloads; the padding in
  // between is guarded by the explicit zero-scan. Flip a byte in the
  // inter-region padding (just before the data page boundary) and
  // check the refusal names it.
  auto image = SampleImage();
  const std::size_t pad = kColumnarPageBytes - 1;
  ASSERT_EQ(image[pad], 0u);
  image[pad] = 0xa5;
  ColumnarReader reader;
  const auto error = Parse(reader, image);
  ASSERT_FALSE(error.ok());
  EXPECT_NE(error.detail.find("nonzero padding"), std::string::npos)
      << error.ToString();
}

TEST(Columnar, TrailingBytesAreRefused) {
  auto image = SampleImage();
  image.push_back(0x00);
  ColumnarReader reader;
  const auto error = Parse(reader, image);
  ASSERT_FALSE(error.ok());
  EXPECT_NE(error.detail.find("trailing"), std::string::npos)
      << error.ToString();
}

TEST(Columnar, V2HeaderIsRefusedWithRemediation) {
  // A v2 checkpoint must not be parsed as v3 garbage: craft the minimal
  // v2-looking prefix (magic + version 2) and expect a version refusal
  // that names v2, not a CRC or truncation complaint.
  std::vector<std::uint8_t> v2(64, 0);
  std::memcpy(v2.data(), "SLCK", 4);
  const std::uint32_t version = 2;
  std::memcpy(v2.data() + 4, &version, sizeof(version));
  ColumnarReader reader;
  const auto error = reader.Parse(v2, "SLCK", "old.slck");
  ASSERT_FALSE(error.ok());
  EXPECT_NE(error.detail.find("v2"), std::string::npos) << error.ToString();
}

TEST(Columnar, BadMagicIsRefused) {
  auto image = SampleImage();
  image[0] = 'X';
  ColumnarReader reader;
  const auto error = Parse(reader, image);
  ASSERT_FALSE(error.ok());
  EXPECT_NE(error.detail.find("magic"), std::string::npos);
}

// Forgery helper: rewrite a directory field and recompute both the
// directory CRC and (if asked) a column CRC, so the tamper survives the
// checksum gauntlet and the *structural* validation has to catch it.
struct Forger {
  std::vector<std::uint8_t> image;
  static constexpr std::size_t kHeaderBytes = 36;
  static constexpr std::size_t kEntryBytes = 36;

  std::uint32_t n_columns() const {
    std::uint32_t n = 0;
    std::memcpy(&n, image.data() + 28, sizeof(n));
    return n;
  }
  std::size_t EntryOffset(std::size_t index) const {
    return kHeaderBytes + index * kEntryBytes;
  }
  template <typename T>
  void SetEntryField(std::size_t index, std::size_t field_offset, T value) {
    std::memcpy(image.data() + EntryOffset(index) + field_offset, &value,
                sizeof(value));
  }
  void ResealDirectory() {
    const std::size_t dir_bytes = n_columns() * kEntryBytes;
    const std::uint32_t crc = net::Crc32cOf(
        {image.data() + kHeaderBytes, dir_bytes});
    std::memcpy(image.data() + kHeaderBytes + dir_bytes, &crc, sizeof(crc));
  }
};

TEST(Columnar, MisalignedColumnOffsetIsRefusedEvenWithValidCrcs) {
  Forger forger{SampleImage()};
  // Entry layout: u32 id | u32 elem_width | u64 rows | u64 offset
  // | u64 byte_len | u32 crc. Nudge column 0's offset off the 64-byte
  // grid and reseal the directory CRC; the payload CRC check would now
  // read shifted bytes, so also give the entry the CRC of those bytes.
  std::uint64_t offset = 0;
  std::memcpy(&offset, forger.image.data() + forger.EntryOffset(0) + 16,
              sizeof(offset));
  std::uint64_t byte_len = 0;
  std::memcpy(&byte_len, forger.image.data() + forger.EntryOffset(0) + 24,
              sizeof(byte_len));
  const std::uint64_t bent_offset = offset + 8;  // still 8-aligned, not 64
  forger.SetEntryField(0, 16, bent_offset);
  forger.SetEntryField(
      0, 32,
      net::Crc32cOf({forger.image.data() + bent_offset,
                     static_cast<std::size_t>(byte_len)}));
  forger.ResealDirectory();

  ColumnarReader reader;
  const auto error = Parse(reader, forger.image);
  ASSERT_FALSE(error.ok());
  EXPECT_NE(error.detail.find("misaligned"), std::string::npos)
      << error.ToString();
}

TEST(Columnar, RowWidthLengthMismatchIsRefusedEvenWithValidCrcs) {
  Forger forger{SampleImage()};
  forger.SetEntryField<std::uint64_t>(0, 8, 4);  // rows: 5 -> 4
  forger.ResealDirectory();
  ColumnarReader reader;
  const auto error = Parse(reader, forger.image);
  ASSERT_FALSE(error.ok());
  EXPECT_NE(error.detail.find("rows * width"), std::string::npos)
      << error.ToString();
}

TEST(Columnar, OverlappingPayloadsAreRefusedEvenWithValidCrcs) {
  Forger forger{SampleImage()};
  // Point column 1 (the doubles) at column 0's extent. Same byte_len
  // (both 40 bytes), so rows*width still checks out; reseal both CRCs.
  std::uint64_t offset0 = 0;
  std::memcpy(&offset0, forger.image.data() + forger.EntryOffset(0) + 16,
              sizeof(offset0));
  std::uint64_t byte_len = 0;
  std::memcpy(&byte_len, forger.image.data() + forger.EntryOffset(1) + 24,
              sizeof(byte_len));
  forger.SetEntryField(1, 16, offset0);
  forger.SetEntryField(
      1, 32,
      net::Crc32cOf({forger.image.data() + offset0,
                     static_cast<std::size_t>(byte_len)}));
  forger.ResealDirectory();

  ColumnarReader reader;
  const auto error = Parse(reader, forger.image);
  ASSERT_FALSE(error.ok());
  // The duplicate extent leaves either an overlap or orphaned nonzero
  // bytes where column 1 used to live; both are structural refusals.
  EXPECT_TRUE(error.detail.find("overlap") != std::string::npos ||
              error.detail.find("nonzero padding") != std::string::npos)
      << error.ToString();
}

TEST(Columnar, PeekContainerVersionSniffsWithoutValidation) {
  const auto image = SampleImage();
  EXPECT_EQ(storage::PeekContainerVersion(image, "SLCK"),
            storage::kColumnarVersion);
  EXPECT_EQ(storage::PeekContainerVersion(image, "SLPW"), std::nullopt);
  const std::vector<std::uint8_t> tiny{'S', 'L', 'C', 'K'};
  EXPECT_EQ(storage::PeekContainerVersion(tiny, "SLCK"), std::nullopt);
}

TEST(Columnar, EmptyContainerRoundTrips) {
  ColumnarWriter writer{"SLPW", 1, 1, 1};
  const auto image = writer.Finish();
  ColumnarReader reader;
  ASSERT_TRUE(reader.Parse(image, "SLPW").ok());
  EXPECT_TRUE(reader.columns().empty());
}

}  // namespace
}  // namespace sleepwalk
