// The storage seam: MemEnv/RealEnv contract, AtomicWrite durability
// discipline (tmp unlinked on every error path, previous content
// untouched), and the FaultyEnv action mapping.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <string>
#include <vector>

#include "sleepwalk/storage/faulty_env.h"
#include "sleepwalk/storage/file.h"
#include "sleepwalk/util/failpoint.h"

namespace sleepwalk {
namespace {

using storage::AtomicWrite;
using storage::MemEnv;
using util::FailpointSet;

std::vector<std::uint8_t> Bytes(const std::string& text) {
  return {text.begin(), text.end()};
}

std::string ReadString(storage::Env& env, const std::string& path) {
  std::vector<std::uint8_t> out;
  const auto error = env.ReadAll(path, out);
  if (!error.ok()) {
    ADD_FAILURE() << "ReadAll " << path << ": " << error.ToString();
    return {};
  }
  return {out.begin(), out.end()};
}

TEST(MemEnv, CreateAppendCloseRoundTrips) {
  MemEnv env;
  storage::Error error;
  auto file = env.Create("/d/a", error);
  ASSERT_TRUE(error.ok()) << error.ToString();
  ASSERT_NE(file, nullptr);
  const auto payload = Bytes("hello");
  ASSERT_TRUE(file->Append(payload).ok());
  ASSERT_TRUE(file->Close().ok());
  EXPECT_TRUE(env.Exists("/d/a"));
  EXPECT_EQ(ReadString(env, "/d/a"), "hello");
}

TEST(MemEnv, RenameReplacesAndLinkRefusesExistingTarget) {
  MemEnv env;
  ASSERT_TRUE(AtomicWrite(env, "/d/a", Bytes("new")).ok());
  ASSERT_TRUE(AtomicWrite(env, "/d/b", Bytes("old")).ok());
  ASSERT_TRUE(env.Rename("/d/a", "/d/b").ok());
  EXPECT_FALSE(env.Exists("/d/a"));
  EXPECT_EQ(ReadString(env, "/d/b"), "new");

  ASSERT_TRUE(env.Link("/d/b", "/d/c").ok());
  EXPECT_EQ(ReadString(env, "/d/c"), "new");
  EXPECT_FALSE(env.Link("/d/b", "/d/c").ok());  // target exists

  EXPECT_FALSE(env.Rename("/d/missing", "/d/x").ok());
  EXPECT_FALSE(env.Remove("/d/missing").ok());
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(env.ReadAll("/d/missing", out).ok());
}

TEST(MemEnv, ListReturnsSortedNamesOfOneDirectory) {
  MemEnv env;
  ASSERT_TRUE(AtomicWrite(env, "/d/b", Bytes("1")).ok());
  ASSERT_TRUE(AtomicWrite(env, "/d/a", Bytes("2")).ok());
  ASSERT_TRUE(AtomicWrite(env, "/other/c", Bytes("3")).ok());
  const auto names = env.List("/d");
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
}

TEST(DirName, SplitsAtLastSlash) {
  EXPECT_EQ(storage::DirName("/a/b/c.slck"), "/a/b");
  EXPECT_EQ(storage::DirName("c.slck"), ".");
  EXPECT_EQ(storage::DirName("/c.slck"), "/");
}

TEST(RealEnv, AtomicWriteRoundTripsOnDisk) {
  auto& env = storage::RealEnvInstance();
  const std::string path = testing::TempDir() + "/storage_test_real.bin";
  ASSERT_TRUE(AtomicWrite(env, path, Bytes("payload-1")).ok());
  EXPECT_EQ(ReadString(env, path), "payload-1");
  // Replacement is atomic: the new content fully supersedes the old.
  ASSERT_TRUE(AtomicWrite(env, path, Bytes("p2")).ok());
  EXPECT_EQ(ReadString(env, path), "p2");
  EXPECT_FALSE(env.Exists(path + ".tmp"));
  ASSERT_TRUE(env.Remove(path).ok());
  EXPECT_FALSE(env.Exists(path));
}

// --- AtomicWrite failure paths --------------------------------------------
//
// One test per failing step; all must (a) report the failing op with its
// errno, (b) leave no .tmp file behind, and (c) leave the file content
// in a defined state: the previous content for every step up to the
// rename, the new content when only the final directory sync failed
// (the rename already published it; the error still surfaces because
// durability across a power cut is now uncertain).

struct AtomicWriteFailCase {
  const char* spec;     // failpoint armed
  const char* op;       // expected Error.op
  int err;              // expected Error.err
  const char* content;  // expected file content after the failure
};

class AtomicWriteFailure
    : public testing::TestWithParam<AtomicWriteFailCase> {};

TEST_P(AtomicWriteFailure, RemovesTmpAndPreservesPrevious) {
  const auto& param = GetParam();
  MemEnv mem;
  ASSERT_TRUE(AtomicWrite(mem, "/d/f", Bytes("previous")).ok());

  FailpointSet failpoints;
  ASSERT_TRUE(FailpointSet::Parse(param.spec, failpoints));
  storage::FaultyEnv env{mem, failpoints};

  const auto error = AtomicWrite(env, "/d/f", Bytes("replacement"));
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.op, param.op);
  EXPECT_EQ(error.err, param.err);
  EXPECT_FALSE(mem.Exists("/d/f.tmp")) << "leaked temp file";
  EXPECT_EQ(ReadString(mem, "/d/f"), param.content);
}

INSTANTIATE_TEST_SUITE_P(
    EveryStep, AtomicWriteFailure,
    testing::Values(
        AtomicWriteFailCase{"storage.create=eio", "create", EIO, "previous"},
        AtomicWriteFailCase{"storage.append=eio", "append", EIO, "previous"},
        AtomicWriteFailCase{"storage.append=enospc", "append", ENOSPC,
                            "previous"},
        AtomicWriteFailCase{"storage.append=short", "append", ENOSPC,
                            "previous"},
        AtomicWriteFailCase{"storage.sync=eio", "sync", EIO, "previous"},
        AtomicWriteFailCase{"storage.close=eio", "close", EIO, "previous"},
        AtomicWriteFailCase{"storage.rename=eio", "rename", EIO, "previous"},
        AtomicWriteFailCase{"storage.syncdir=eio", "syncdir", EIO,
                            "replacement"}));

TEST(AtomicWrite, ShortWriteReportsByteCounts) {
  MemEnv mem;
  FailpointSet failpoints;
  ASSERT_TRUE(FailpointSet::Parse("storage.append=short", failpoints));
  storage::FaultyEnv env{mem, failpoints};
  const auto error = AtomicWrite(env, "/d/f", Bytes("123456"));
  ASSERT_FALSE(error.ok());
  EXPECT_NE(error.detail.find("short write"), std::string::npos);
  EXPECT_NE(error.ToString().find("short write"), std::string::npos);
}

TEST(AtomicWrite, CrashPropagatesAndLeavesTmpLikeAPowerCut) {
  MemEnv mem;
  ASSERT_TRUE(AtomicWrite(mem, "/d/f", Bytes("previous")).ok());
  FailpointSet failpoints;
  ASSERT_TRUE(FailpointSet::Parse("storage.sync=crash", failpoints));
  storage::FaultyEnv env{mem, failpoints};
  bool crashed = false;
  try {
    AtomicWrite(env, "/d/f", Bytes("replacement"));
  } catch (const util::CrashInjected& crash) {
    crashed = true;
    EXPECT_EQ(crash.site, "storage.sync");
  }
  ASSERT_TRUE(crashed);
  // The "process died" mid-write: the temp file stays exactly as a real
  // crash would leave it, and the published content is untouched.
  EXPECT_EQ(ReadString(mem, "/d/f"), "previous");
}

TEST(AtomicWrite, TornCrashLeavesHalfWrittenTmpOnly) {
  MemEnv mem;
  ASSERT_TRUE(AtomicWrite(mem, "/d/f", Bytes("previous")).ok());
  FailpointSet failpoints;
  ASSERT_TRUE(FailpointSet::Parse("storage.append=torn", failpoints));
  storage::FaultyEnv env{mem, failpoints};
  EXPECT_THROW(AtomicWrite(env, "/d/f", Bytes("123456")),
               util::CrashInjected);
  EXPECT_EQ(ReadString(mem, "/d/f"), "previous");
}

TEST(FaultyEnv, NonAppendSitesCoverEveryOperation) {
  MemEnv mem;
  ASSERT_TRUE(AtomicWrite(mem, "/d/f", Bytes("x")).ok());
  FailpointSet failpoints;
  ASSERT_TRUE(FailpointSet::Parse(
      "storage.read=eio,storage.link=enospc,storage.remove=eio", failpoints));
  storage::FaultyEnv env{mem, failpoints};
  std::vector<std::uint8_t> out;
  EXPECT_EQ(env.ReadAll("/d/f", out).err, EIO);
  EXPECT_EQ(env.Link("/d/f", "/d/g").err, ENOSPC);
  EXPECT_EQ(env.Remove("/d/f").err, EIO);
  // The one-shot specs disarmed; everything works again.
  EXPECT_TRUE(env.ReadAll("/d/f", out).ok());
  EXPECT_TRUE(env.Link("/d/f", "/d/g").ok());
  EXPECT_TRUE(env.Remove("/d/g").ok());
}

}  // namespace
}  // namespace sleepwalk
