// Multi-threaded PlanCache stress, built as its own binary so the CI
// `tsan` job can run exactly this under -fsanitize=thread: 8 threads
// hammer one cache for the same mix of sizes (racing to build plans)
// and every thread's spectra must be bitwise identical to a
// single-threaded reference — the determinism invariant that lets the
// parallel executor share one global cache (DESIGN.md §9, §10).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "sleepwalk/fft/fft.h"
#include "sleepwalk/fft/plan.h"
#include "sleepwalk/fft/spectrum.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::fft {
namespace {

constexpr std::size_t kThreads = 8;
constexpr int kRounds = 25;
// Campaign-realistic mix: even (real-packed), odd/prime (Bluestein),
// power of two — every plan flavour races through the cache.
constexpr std::size_t kSizes[] = {1833, 1834, 2048, 919, 4583};

std::vector<double> MakeSeries(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> series(n);
  for (std::size_t i = 0; i < n; ++i) {
    series[i] = 0.5 + 0.3 * ((i % 131) < 50 ? 1.0 : -1.0) +
                0.05 * rng.NextGaussian();
  }
  return series;
}

template <typename T>
bool BitwiseEqual(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
}

TEST(PlanCacheStress, EightThreadsGetBitwiseIdenticalSpectra) {
  PlanCache cache;

  // Single-threaded reference spectra, one per size, computed through
  // a *separate* cache so the shared cache starts cold and the worker
  // threads genuinely race to build every plan.
  std::vector<std::vector<Complex>> reference;
  {
    PlanCache reference_cache;
    FftScratch scratch;
    for (const std::size_t n : kSizes) {
      const auto series = MakeSeries(n, 0xACE0 + n);
      std::vector<Complex> out;
      reference_cache.Get(n)->ForwardReal(series, scratch, out);
      reference.push_back(std::move(out));
    }
  }

  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      FftScratch scratch;
      std::vector<Complex> out;
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t s = 0; s < std::size(kSizes); ++s) {
          // Stagger the starting size per thread so first-build races
          // hit every size, not just the first.
          const std::size_t pick = (s + t) % std::size(kSizes);
          const std::size_t n = kSizes[pick];
          const auto series = MakeSeries(n, 0xACE0 + n);
          cache.Get(n)->ForwardReal(series, scratch, out);
          if (!BitwiseEqual(out, reference[pick])) ++mismatches[t];
        }
      }
    });
  }
  for (auto& thread : pool) thread.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
  EXPECT_EQ(cache.cached_plans(), std::size(kSizes));
}

TEST(PlanCacheStress, GlobalCacheUnderConcurrentSpectrumCalls) {
  // The production entry point: ComputeSpectrum via the global cache
  // and thread-local scratch, hammered from 8 threads.
  const auto series = MakeSeries(1834, 0xACE0 + 1834);
  const SpectrumOptions options;
  const Spectrum reference = ComputeSpectrum(series, options);

  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      FftScratch scratch;
      Spectrum spectrum;
      for (int round = 0; round < kRounds; ++round) {
        ComputeSpectrum(series, options, scratch, spectrum);
        if (!BitwiseEqual(spectrum.amplitude, reference.amplitude) ||
            !BitwiseEqual(spectrum.phase, reference.phase)) {
          ++mismatches[t];
        }
      }
    });
  }
  for (auto& thread : pool) thread.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace sleepwalk::fft
