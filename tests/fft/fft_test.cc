#include "sleepwalk/fft/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sleepwalk/util/rng.h"

namespace sleepwalk::fft {
namespace {

constexpr double kTolerance = 1e-9;

std::vector<Complex> RandomSignal(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<Complex> signal(n);
  for (auto& value : signal) {
    value = Complex{rng.NextDouble() * 2.0 - 1.0,
                    rng.NextDouble() * 2.0 - 1.0};
  }
  return signal;
}

double MaxError(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  EXPECT_EQ(a.size(), b.size());
  double max_error = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_error = std::max(max_error, std::abs(a[i] - b[i]));
  }
  return max_error;
}

TEST(IsPowerOfTwo, Basics) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(1000));
}

TEST(Forward, EmptyInput) { EXPECT_TRUE(Forward({}).empty()); }

TEST(Forward, SingleSampleIsIdentity) {
  const std::vector<Complex> input = {Complex{3.5, -1.25}};
  const auto output = Forward(input);
  ASSERT_EQ(output.size(), 1u);
  EXPECT_NEAR(std::abs(output[0] - input[0]), 0.0, kTolerance);
}

TEST(Forward, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> input(16, Complex{});
  input[0] = Complex{1.0, 0.0};
  const auto output = Forward(input);
  for (const auto& bin : output) {
    EXPECT_NEAR(bin.real(), 1.0, kTolerance);
    EXPECT_NEAR(bin.imag(), 0.0, kTolerance);
  }
}

TEST(Forward, ConstantGivesDcOnly) {
  const std::vector<Complex> input(32, Complex{2.0, 0.0});
  const auto output = Forward(input);
  EXPECT_NEAR(output[0].real(), 64.0, kTolerance);
  for (std::size_t k = 1; k < output.size(); ++k) {
    EXPECT_NEAR(std::abs(output[k]), 0.0, 1e-8) << "bin " << k;
  }
}

TEST(Forward, PureSinusoidPeaksAtItsBin) {
  const std::size_t n = 64;
  const std::size_t k0 = 5;
  std::vector<Complex> input(n);
  for (std::size_t m = 0; m < n; ++m) {
    const double angle = 2.0 * std::numbers::pi *
                         static_cast<double>(k0 * m) /
                         static_cast<double>(n);
    input[m] = Complex{std::cos(angle), 0.0};
  }
  const auto output = Forward(input);
  // cos splits between bins k0 and n - k0, each with amplitude n/2.
  EXPECT_NEAR(std::abs(output[k0]), static_cast<double>(n) / 2.0, 1e-8);
  EXPECT_NEAR(std::abs(output[n - k0]), static_cast<double>(n) / 2.0, 1e-8);
  for (std::size_t k = 1; k < n / 2; ++k) {
    if (k == k0) continue;
    EXPECT_NEAR(std::abs(output[k]), 0.0, 1e-8) << "bin " << k;
  }
}

TEST(Forward, PhaseOfShiftedCosine) {
  // cos(2*pi*k0*m/n - phi) has coefficient with arg = -phi at bin k0.
  const std::size_t n = 128;
  const std::size_t k0 = 3;
  const double phi = 0.7;
  std::vector<Complex> input(n);
  for (std::size_t m = 0; m < n; ++m) {
    const double angle = 2.0 * std::numbers::pi *
                             static_cast<double>(k0 * m) /
                             static_cast<double>(n) -
                         phi;
    input[m] = Complex{std::cos(angle), 0.0};
  }
  const auto output = Forward(input);
  EXPECT_NEAR(std::arg(output[k0]), -phi, 1e-9);
}

// Property suite: FFT must agree with the naive DFT oracle for both
// power-of-two (radix-2 path) and arbitrary (Bluestein path) sizes.
class FftMatchesNaive : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftMatchesNaive, OnRandomSignal) {
  const std::size_t n = GetParam();
  const auto signal = RandomSignal(n, 0x1000 + n);
  const auto expected = DftNaive(signal);
  const auto actual = Forward(signal);
  EXPECT_LT(MaxError(actual, expected), 1e-7 * static_cast<double>(n))
      << "size " << n;
}

TEST_P(FftMatchesNaive, InverseRoundTrips) {
  const std::size_t n = GetParam();
  const auto signal = RandomSignal(n, 0x2000 + n);
  const auto round_trip = Inverse(Forward(signal));
  EXPECT_LT(MaxError(round_trip, signal), 1e-9 * static_cast<double>(n));
}

TEST_P(FftMatchesNaive, ParsevalHolds) {
  const std::size_t n = GetParam();
  const auto signal = RandomSignal(n, 0x3000 + n);
  const auto spectrum = Forward(signal);
  double time_energy = 0.0;
  for (const auto& v : signal) time_energy += std::norm(v);
  double freq_energy = 0.0;
  for (const auto& v : spectrum) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-8 * time_energy);
}

TEST_P(FftMatchesNaive, Linearity) {
  const std::size_t n = GetParam();
  const auto a = RandomSignal(n, 0x4000 + n);
  const auto b = RandomSignal(n, 0x5000 + n);
  std::vector<Complex> combined(n);
  const Complex alpha{2.0, -0.5};
  for (std::size_t i = 0; i < n; ++i) combined[i] = alpha * a[i] + b[i];
  const auto fa = Forward(a);
  const auto fb = Forward(b);
  const auto fc = Forward(combined);
  double max_error = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    max_error = std::max(max_error, std::abs(fc[k] - (alpha * fa[k] + fb[k])));
  }
  EXPECT_LT(max_error, 1e-7 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FftMatchesNaive,
    ::testing::Values<std::size_t>(2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 45,
                                   64, 97, 100, 128, 183, 256, 360, 512),
    [](const auto& info) { return "n" + std::to_string(info.param); });

TEST(Bluestein, PrimeSizeMatchesNaive) {
  // 4581 = 3 * 1527: the realistic 35-day 11-minute series length.
  const std::size_t n = 4581;
  const auto signal = RandomSignal(n, 99);
  const auto fast = Forward(signal);
  // Spot-check a handful of bins against direct evaluation.
  for (const std::size_t k : {0u, 1u, 35u, 36u, 70u, 2290u}) {
    Complex direct{};
    for (std::size_t m = 0; m < n; ++m) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k * m) /
                           static_cast<double>(n);
      direct += signal[m] * Complex{std::cos(angle), std::sin(angle)};
    }
    EXPECT_LT(std::abs(fast[k] - direct), 1e-6) << "bin " << k;
  }
}

TEST(FftRadix2InPlace, ForwardThenInverseScalesByN) {
  auto signal = RandomSignal(64, 7);
  const auto original = signal;
  FftRadix2InPlace(signal, /*inverse=*/false);
  FftRadix2InPlace(signal, /*inverse=*/true);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    EXPECT_LT(std::abs(signal[i] / 64.0 - original[i]), 1e-10);
  }
}

TEST(ForwardReal, MatchesComplexTransform) {
  Rng rng{11};
  std::vector<double> real(37);
  for (auto& v : real) v = rng.NextDouble();
  std::vector<Complex> as_complex(real.size());
  for (std::size_t i = 0; i < real.size(); ++i) {
    as_complex[i] = Complex{real[i], 0.0};
  }
  EXPECT_LT(MaxError(ForwardReal(real), Forward(as_complex)), 1e-12);
}

TEST(ForwardReal, ConjugateSymmetry) {
  Rng rng{13};
  std::vector<double> real(24);
  for (auto& v : real) v = rng.NextDouble();
  const auto spectrum = ForwardReal(real);
  for (std::size_t k = 1; k < real.size() / 2; ++k) {
    EXPECT_LT(std::abs(spectrum[k] - std::conj(spectrum[real.size() - k])),
              1e-10)
        << "bin " << k;
  }
}

}  // namespace
}  // namespace sleepwalk::fft
