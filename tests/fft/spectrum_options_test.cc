#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "sleepwalk/fft/spectrum.h"

namespace sleepwalk::fft {
namespace {

std::vector<double> Tone(std::size_t n, std::size_t k0, double amplitude) {
  std::vector<double> signal(n);
  for (std::size_t m = 0; m < n; ++m) {
    signal[m] = amplitude * std::cos(2.0 * std::numbers::pi *
                                     static_cast<double>(k0 * m) /
                                     static_cast<double>(n));
  }
  return signal;
}

TEST(SpectrumOptions, DetrendRemovesLinearRamp) {
  // Tone + strong linear trend: without detrending the low bins swamp
  // the tone; with it the tone wins.
  const std::size_t n = 512;
  auto signal = Tone(n, 20, 0.2);
  for (std::size_t i = 0; i < n; ++i) {
    signal[i] += 3.0 * static_cast<double>(i) / static_cast<double>(n);
  }
  SpectrumOptions plain;
  const auto without = ComputeSpectrum(signal, plain);
  SpectrumOptions detrended;
  detrended.detrend = true;
  const auto with = ComputeSpectrum(signal, detrended);

  EXPECT_NE(StrongestBin(without), 20u) << "trend leakage should win";
  EXPECT_EQ(StrongestBin(with), 20u);
}

TEST(SpectrumOptions, DetrendPreservesToneAmplitude) {
  const std::size_t n = 256;
  auto signal = Tone(n, 10, 1.0);
  for (std::size_t i = 0; i < n; ++i) signal[i] += 0.01 * i;
  SpectrumOptions options;
  options.detrend = true;
  const auto spectrum = ComputeSpectrum(signal, options);
  EXPECT_NEAR(spectrum.amplitude[10], static_cast<double>(n) / 2.0,
              static_cast<double>(n) * 0.02);
}

TEST(SpectrumOptions, HannHalvesCoherentGain) {
  const std::size_t n = 1024;
  const auto signal = Tone(n, 16, 1.0);
  SpectrumOptions rectangular;
  const auto plain = ComputeSpectrum(signal, rectangular);
  SpectrumOptions windowed;
  windowed.hann_window = true;
  const auto hann = ComputeSpectrum(signal, windowed);
  // Hann coherent gain is 0.5.
  EXPECT_NEAR(hann.amplitude[16] / plain.amplitude[16], 0.5, 0.02);
}

TEST(SpectrumOptions, HannSuppressesLeakageOfOffGridTone) {
  // A tone between bins leaks broadly with a rectangular window; Hann
  // confines it. Compare energy far from the peak.
  const std::size_t n = 1024;
  std::vector<double> signal(n);
  for (std::size_t m = 0; m < n; ++m) {
    signal[m] = std::cos(2.0 * std::numbers::pi * 16.5 *
                         static_cast<double>(m) / static_cast<double>(n));
  }
  SpectrumOptions rectangular;
  const auto plain = ComputeSpectrum(signal, rectangular);
  SpectrumOptions windowed;
  windowed.hann_window = true;
  const auto hann = ComputeSpectrum(signal, windowed);

  double far_plain = 0.0;
  double far_hann = 0.0;
  for (std::size_t k = 60; k < plain.size(); ++k) {
    far_plain += plain.amplitude[k];
    far_hann += hann.amplitude[k];
  }
  EXPECT_LT(far_hann, far_plain / 10.0);
}

TEST(SpectrumOptions, BoolOverloadStillWorks) {
  const auto signal = Tone(128, 5, 1.0);
  const auto a = ComputeSpectrum(signal, true);
  SpectrumOptions options;
  const auto b = ComputeSpectrum(signal, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.amplitude[k], b.amplitude[k]);
  }
}

TEST(SpectrumOptions, EmptySeries) {
  SpectrumOptions options;
  options.detrend = true;
  options.hann_window = true;
  const auto spectrum = ComputeSpectrum({}, options);
  EXPECT_EQ(spectrum.size(), 0u);
}

}  // namespace
}  // namespace sleepwalk::fft
