#include "sleepwalk/fft/spectrum.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace sleepwalk::fft {
namespace {

std::vector<double> Cosine(std::size_t n, std::size_t k0, double amplitude,
                           double phase, double offset = 0.0) {
  std::vector<double> signal(n);
  for (std::size_t m = 0; m < n; ++m) {
    const double angle = 2.0 * std::numbers::pi *
                             static_cast<double>(k0 * m) /
                             static_cast<double>(n) +
                         phase;
    signal[m] = offset + amplitude * std::cos(angle);
  }
  return signal;
}

TEST(Spectrum, EmptyInput) {
  const auto spectrum = ComputeSpectrum({});
  EXPECT_EQ(spectrum.size(), 0u);
  EXPECT_EQ(spectrum.input_size, 0u);
}

TEST(Spectrum, SizeIsHalfPlusOne) {
  const std::vector<double> signal(100, 1.0);
  EXPECT_EQ(ComputeSpectrum(signal).size(), 51u);
  const std::vector<double> odd(101, 1.0);
  EXPECT_EQ(ComputeSpectrum(odd).size(), 51u);
}

TEST(Spectrum, CosineAmplitudeAndPhase) {
  const std::size_t n = 256;
  const std::size_t k0 = 7;
  const double phase = 0.9;
  const auto spectrum = ComputeSpectrum(Cosine(n, k0, 2.0, phase));
  // One-sided: cos with amplitude 2 puts n/2 * 2 = n into bin k0.
  EXPECT_NEAR(spectrum.amplitude[k0], static_cast<double>(n), 1e-8);
  EXPECT_NEAR(spectrum.phase[k0], phase, 1e-9);
  EXPECT_EQ(StrongestBin(spectrum), k0);
}

TEST(Spectrum, MeanRemovalKillsDc) {
  const auto signal = Cosine(128, 4, 1.0, 0.0, /*offset=*/5.0);
  const auto with_removal = ComputeSpectrum(signal, /*remove_mean=*/true);
  EXPECT_NEAR(with_removal.amplitude[0], 0.0, 1e-8);
  const auto without = ComputeSpectrum(signal, /*remove_mean=*/false);
  EXPECT_NEAR(without.amplitude[0], 5.0 * 128.0, 1e-7);
  // The signal bin is unaffected by mean removal.
  EXPECT_NEAR(with_removal.amplitude[4], without.amplitude[4], 1e-8);
}

TEST(Spectrum, FrequencyHzMatchesPaperFormula) {
  // Paper: bin k corresponds to k/(R*n) Hz with R = 660 s.
  const std::vector<double> signal(1834, 0.0);  // 14 days of 11-min rounds
  const auto spectrum = ComputeSpectrum(signal);
  const double f14 = spectrum.FrequencyHz(14, 660.0);
  // Bin N_d=14 over a 14-day window must be 1 cycle/day.
  EXPECT_NEAR(f14, 1.0 / 86400.0, 1e-9 / 86400.0 * 660.0 * 1834.0);
}

TEST(Spectrum, StrongestBinIgnoresDc) {
  // Large offset + small ripple: without DC exclusion bin 0 would win.
  const auto signal = Cosine(64, 3, 0.1, 0.0, /*offset=*/10.0);
  const auto spectrum = ComputeSpectrum(signal, /*remove_mean=*/false);
  EXPECT_EQ(StrongestBin(spectrum), 3u);
}

TEST(Spectrum, TwoTonesStrongestWins) {
  auto signal = Cosine(512, 5, 1.0, 0.0);
  const auto second = Cosine(512, 19, 2.5, 0.3);
  for (std::size_t i = 0; i < signal.size(); ++i) signal[i] += second[i];
  const auto spectrum = ComputeSpectrum(signal);
  EXPECT_EQ(StrongestBin(spectrum), 19u);
}

TEST(Spectrum, CyclesPerWindowIsBinIndex) {
  const std::vector<double> signal(200, 0.0);
  const auto spectrum = ComputeSpectrum(signal);
  EXPECT_DOUBLE_EQ(spectrum.CyclesPerWindow(14), 14.0);
}

}  // namespace
}  // namespace sleepwalk::fft
