#include "sleepwalk/fft/goertzel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "sleepwalk/fft/fft.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::fft {
namespace {

std::vector<double> RandomReal(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> signal(n);
  for (auto& v : signal) v = rng.NextDouble() * 2.0 - 1.0;
  return signal;
}

TEST(Goertzel, EmptyInputIsZero) {
  EXPECT_EQ(Goertzel({}, 3), Complex(0.0, 0.0));
}

TEST(Goertzel, DcBinIsSum) {
  const std::vector<double> signal = {1.0, 2.0, 3.0, 4.0};
  const auto bin = Goertzel(signal, 0);
  EXPECT_NEAR(bin.real(), 10.0, 1e-12);
  EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
}

TEST(Goertzel, SingleDelayedImpulse) {
  // x = [0, 1, 0, 0]: X(1) = e^{-j*pi/2} = -j.
  const std::vector<double> signal = {0.0, 1.0, 0.0, 0.0};
  const auto bin = Goertzel(signal, 1);
  EXPECT_NEAR(bin.real(), 0.0, 1e-12);
  EXPECT_NEAR(bin.imag(), -1.0, 1e-12);
}

// Property: Goertzel equals the FFT at every bin, for several sizes.
class GoertzelMatchesFft : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GoertzelMatchesFft, AllBins) {
  const std::size_t n = GetParam();
  const auto signal = RandomReal(n, 0x60e7 + n);
  const auto spectrum = ForwardReal(signal);
  for (std::size_t k = 0; k < n; ++k) {
    const auto bin = Goertzel(signal, k);
    EXPECT_LT(std::abs(bin - spectrum[k]), 1e-8 * static_cast<double>(n))
        << "size " << n << " bin " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GoertzelMatchesFft,
                         ::testing::Values<std::size_t>(2, 3, 8, 13, 32, 45,
                                                        100, 131),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(Goertzel, DailyBinOfSyntheticDiurnalSeries) {
  // 14 days, 131 samples/day square-ish wave: bin 14 dominates.
  const std::size_t per_day = 131;
  const std::size_t n = 14 * per_day;
  std::vector<double> series(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double hour = 24.0 * static_cast<double>(i % per_day) /
                        static_cast<double>(per_day);
    series[i] = (hour >= 8.0 && hour < 16.0) ? 0.9 : 0.2;
  }
  const double daily = std::abs(Goertzel(series, 14));
  const double off = std::abs(Goertzel(series, 10));
  EXPECT_GT(daily, 10.0 * off);
}

}  // namespace
}  // namespace sleepwalk::fft
