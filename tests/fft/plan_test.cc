// Property tests for the plan-based spectral kernels (plan.h): every
// plan path must agree with the O(n^2) DftNaive oracle to 1e-9 across
// prime, even, odd, and power-of-two sizes — including the real
// campaign lengths (14-day and 35-day series) — and scratch reuse must
// change nothing.
#include "sleepwalk/fft/plan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sleepwalk/fft/fft.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk::fft {
namespace {

constexpr double kTolerance = 1e-9;

// Prime 4583, even campaign sizes 1834 (14 days x 131 rounds/day) and
// 4582 (35 days), odd trimmed sizes 1833/4585, power of two 2048, plus
// small sizes that exercise every branch (n < 4 skips real packing).
constexpr std::size_t kSizes[] = {1,  2,    3,    4,    5,    6,   8,
                                  12, 1833, 1834, 2048, 4582, 4583, 4585};

std::vector<Complex> RandomSignal(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<Complex> signal(n);
  for (auto& value : signal) {
    value = Complex{rng.NextDouble() * 2.0 - 1.0,
                    rng.NextDouble() * 2.0 - 1.0};
  }
  return signal;
}

std::vector<double> RandomReal(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<double> signal(n);
  for (auto& value : signal) value = rng.NextDouble() * 2.0 - 1.0;
  return signal;
}

double MaxError(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  EXPECT_EQ(a.size(), b.size());
  double max_error = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    max_error = std::max(max_error, std::abs(a[i] - b[i]));
  }
  return max_error;
}

TEST(Plan, ForwardMatchesNaiveDftAcrossSizes) {
  for (const std::size_t n : kSizes) {
    const Plan plan{n};
    EXPECT_EQ(plan.size(), n);
    const auto input = RandomSignal(n, 0x5EED0000 + n);
    FftScratch scratch;
    std::vector<Complex> output;
    plan.Forward(input, scratch, output);
    EXPECT_LT(MaxError(output, DftNaive(input)), kTolerance) << "n=" << n;
  }
}

TEST(Plan, ForwardRealMatchesNaiveDftAcrossSizes) {
  for (const std::size_t n : kSizes) {
    const Plan plan{n};
    const auto input = RandomReal(n, 0x5EED1000 + n);
    std::vector<Complex> complexified(n);
    for (std::size_t i = 0; i < n; ++i) complexified[i] = Complex{input[i], 0};
    FftScratch scratch;
    std::vector<Complex> output;
    plan.ForwardReal(input, scratch, output);
    EXPECT_LT(MaxError(output, DftNaive(complexified)), kTolerance)
        << "n=" << n;
  }
}

TEST(Plan, ForwardRealOutputIsConjugateSymmetric) {
  for (const std::size_t n : {1834u, 2048u, 4583u}) {
    const Plan plan{n};
    const auto input = RandomReal(n, 0x5EED2000 + n);
    FftScratch scratch;
    std::vector<Complex> output;
    plan.ForwardReal(input, scratch, output);
    ASSERT_EQ(output.size(), n);
    for (std::size_t k = 1; k < n; ++k) {
      EXPECT_LT(std::abs(output[k] - std::conj(output[n - k])), kTolerance)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Plan, InverseRoundTripsAcrossSizes) {
  for (const std::size_t n : kSizes) {
    const Plan plan{n};
    const auto input = RandomSignal(n, 0x5EED3000 + n);
    FftScratch scratch;
    std::vector<Complex> spectrum;
    std::vector<Complex> recovered;
    plan.Forward(input, scratch, spectrum);
    plan.Inverse(spectrum, scratch, recovered);
    EXPECT_LT(MaxError(recovered, input), kTolerance) << "n=" << n;
  }
}

TEST(Plan, MatchesPlanlessKernelsAcrossSizes) {
  for (const std::size_t n : kSizes) {
    const Plan plan{n};
    const auto input = RandomSignal(n, 0x5EED4000 + n);
    const auto real_input = RandomReal(n, 0x5EED5000 + n);
    FftScratch scratch;
    std::vector<Complex> output;
    plan.Forward(input, scratch, output);
    EXPECT_LT(MaxError(output, ForwardPlanless(input)), kTolerance)
        << "n=" << n;
    plan.ForwardReal(real_input, scratch, output);
    EXPECT_LT(MaxError(output, ForwardRealPlanless(real_input)), kTolerance)
        << "n=" << n;
    const auto spectrum = ForwardPlanless(input);
    plan.Inverse(spectrum, scratch, output);
    EXPECT_LT(MaxError(output, InversePlanless(spectrum)), kTolerance)
        << "n=" << n;
  }
}

TEST(Plan, ScratchReuseAcrossSizesIsBitwiseStable) {
  // One scratch serving interleaved sizes (big Bluestein, power of two,
  // small odd) must give exactly the same bits as a fresh scratch per
  // call: buffers are fully overwritten, never accumulated into.
  FftScratch shared;
  for (int round = 0; round < 2; ++round) {
    for (const std::size_t n : {4583u, 2048u, 5u, 1834u}) {
      const Plan plan{n};
      const auto input = RandomSignal(n, 0x5EED6000 + n);
      std::vector<Complex> with_shared;
      plan.Forward(input, shared, with_shared);
      FftScratch fresh;
      std::vector<Complex> with_fresh;
      plan.Forward(input, fresh, with_fresh);
      ASSERT_EQ(with_shared.size(), with_fresh.size());
      EXPECT_EQ(0, std::memcmp(with_shared.data(), with_fresh.data(),
                               with_shared.size() * sizeof(Complex)))
          << "n=" << n << " round=" << round;
    }
  }
}

TEST(Plan, KernelSizeReportsBluesteinExtension) {
  EXPECT_TRUE(Plan{2048}.radix2());
  EXPECT_EQ(Plan{2048}.kernel_size(), 2048u);
  const Plan bluestein{1833};
  EXPECT_FALSE(bluestein.radix2());
  // m = NextPowerOfTwo(2 * 1833 - 1) = 4096.
  EXPECT_EQ(bluestein.kernel_size(), 4096u);
}

TEST(Plan, RejectsDegenerateAndOverflowingSizes) {
  EXPECT_THROW(Plan{0}, std::invalid_argument);
  // 2n - 1 (or its power-of-two ceiling) cannot fit in size_t.
  constexpr std::size_t kHuge = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_THROW(Plan{kHuge + 1}, std::length_error);
  EXPECT_THROW(Plan{std::numeric_limits<std::size_t>::max()},
               std::length_error);
}

TEST(NextPowerOfTwoChecked, GuardsAgainstOverflow) {
  EXPECT_EQ(detail::NextPowerOfTwoChecked(1), 1u);
  EXPECT_EQ(detail::NextPowerOfTwoChecked(3665), 4096u);
  constexpr std::size_t kHighBit =
      std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);
  EXPECT_EQ(detail::NextPowerOfTwoChecked(kHighBit), kHighBit);
  EXPECT_THROW(detail::NextPowerOfTwoChecked(kHighBit + 1), std::length_error);
}

TEST(ChirpIndex, MatchesWideArithmetic) {
  // Small cases against the direct formula...
  for (const std::size_t n : {3u, 5u, 1833u}) {
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(detail::ChirpIndex(k, n), (k * k) % (2 * n)) << "n=" << n;
    }
  }
  // ...and a k where k*k overflows 64 bits: (2^33 + 3)^2 =
  // 2^66 + 3*2^34 + 9, and with 2n = 2^34 both leading terms vanish
  // mod 2^34, leaving 9. The naive 64-bit product would wrap.
  const std::size_t k = (std::size_t{1} << 33) + 3;
  const std::size_t n = std::size_t{1} << 33;
  EXPECT_EQ(detail::ChirpIndex(k, n), 9u);
}

TEST(PlanCache, ReturnsSharedPlanPerSize) {
  PlanCache cache;
  const auto a = cache.Get(1834);
  const auto b = cache.Get(1834);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->size(), 1834u);
  const auto c = cache.Get(2048);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.cached_plans(), 2u);
}

TEST(PlanCache, GlobalServesConvenienceEntryPoints) {
  const auto input = RandomReal(1834, 0x5EED7000);
  const auto via_plan = [&] {
    FftScratch scratch;
    std::vector<Complex> out;
    GetPlan(input.size())->ForwardReal(input, scratch, out);
    return out;
  }();
  // fft::ForwardReal routes through the same global cache, so the two
  // spectra are the same bits.
  const auto via_entry = ForwardReal(input);
  ASSERT_EQ(via_plan.size(), via_entry.size());
  EXPECT_EQ(0, std::memcmp(via_plan.data(), via_entry.data(),
                           via_plan.size() * sizeof(Complex)));
  EXPECT_GE(PlanCache::Global().cached_plans(), 1u);
}

}  // namespace
}  // namespace sleepwalk::fft
