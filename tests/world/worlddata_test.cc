#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sleepwalk/world/economics.h"
#include "sleepwalk/world/iana.h"

namespace sleepwalk::world {
namespace {

TEST(Countries, TableIsNonTrivialAndSorted) {
  const auto countries = Countries();
  EXPECT_GE(countries.size(), 60u);
  for (std::size_t i = 1; i < countries.size(); ++i) {
    EXPECT_LT(countries[i - 1].code, countries[i].code);
  }
}

TEST(Countries, CodesAreUnique) {
  std::set<std::string_view> codes;
  for (const auto& c : Countries()) {
    EXPECT_TRUE(codes.insert(c.code).second) << c.code;
  }
}

TEST(Countries, PaperTable3ValuesAreVerbatim) {
  // Spot-check the paper's Table 3 rows.
  const auto* cn = FindCountry("CN");
  ASSERT_NE(cn, nullptr);
  EXPECT_EQ(cn->block_count, 394244);
  EXPECT_DOUBLE_EQ(cn->gdp_per_capita_usd, 9300);
  EXPECT_DOUBLE_EQ(cn->true_diurnal_fraction, 0.498);
  EXPECT_EQ(cn->region, Region::kEasternAsia);

  const auto* us = FindCountry("US");
  ASSERT_NE(us, nullptr);
  EXPECT_EQ(us->block_count, 672104);
  EXPECT_DOUBLE_EQ(us->gdp_per_capita_usd, 50700);
  EXPECT_DOUBLE_EQ(us->true_diurnal_fraction, 0.002);

  const auto* am = FindCountry("AM");
  ASSERT_NE(am, nullptr);
  EXPECT_DOUBLE_EQ(am->true_diurnal_fraction, 0.630);
  EXPECT_EQ(am->region, Region::kWesternAsia);
}

TEST(Countries, FindUnknownReturnsNull) {
  EXPECT_EQ(FindCountry("XX"), nullptr);
  EXPECT_EQ(FindCountry(""), nullptr);
  EXPECT_EQ(FindCountry("USA"), nullptr);
}

TEST(Countries, AllFieldsPlausible) {
  for (const auto& c : Countries()) {
    EXPECT_EQ(c.code.size(), 2u) << c.name;
    EXPECT_GE(c.latitude, -90.0);
    EXPECT_LE(c.latitude, 90.0);
    EXPECT_GE(c.longitude, -180.0);
    EXPECT_LE(c.longitude, 180.0);
    EXPECT_GE(c.tz_offset_hours, -12.0);
    EXPECT_LE(c.tz_offset_hours, 14.0);
    EXPECT_GT(c.gdp_per_capita_usd, 0.0);
    EXPECT_GT(c.electricity_kwh_per_capita, 0.0);
    EXPECT_GT(c.internet_users_per_host, 0.0);
    EXPECT_GT(c.block_count, 0);
    EXPECT_GE(c.true_diurnal_fraction, 0.0);
    EXPECT_LE(c.true_diurnal_fraction, 1.0);
  }
}

TEST(Countries, TimezoneRoughlyTracksLongitude) {
  // Civil timezones deviate from solar time, but rarely by more than a
  // few hours (China being the famous single-zone outlier).
  for (const auto& c : Countries()) {
    const double solar_offset = c.longitude / 15.0;
    EXPECT_LT(std::abs(c.tz_offset_hours - solar_offset), 4.0)
        << c.name << " tz " << c.tz_offset_hours << " lon " << c.longitude;
  }
}

TEST(Countries, TotalWeightMatchesPaperScale) {
  // The paper geolocates ~3.45M blocks; our table should be in that
  // ballpark (same order of magnitude).
  const auto total = TotalBlockWeight();
  EXPECT_GT(total, 2'500'000);
  EXPECT_LT(total, 4'500'000);
}

TEST(Regions, NamesMatchTable4) {
  EXPECT_EQ(RegionName(Region::kNorthernAmerica), "Northern America");
  EXPECT_EQ(RegionName(Region::kWesternEurope), "W. Europe");
  EXPECT_EQ(RegionName(Region::kCentralAsia), "Central Asia");
  EXPECT_EQ(RegionName(Region::kSouthEasternAsia), "South-Eastern Asia");
}

TEST(Regions, EveryRegionHasACountry) {
  std::set<Region> seen;
  for (const auto& c : Countries()) seen.insert(c.region);
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kRegionCount));
}

TEST(Iana, ReservedSpaceHasNoAllocation) {
  EXPECT_FALSE(AllocationFor(0).has_value());
  EXPECT_FALSE(AllocationFor(10).has_value());   // RFC 1918
  EXPECT_FALSE(AllocationFor(127).has_value());  // loopback
  EXPECT_FALSE(AllocationFor(224).has_value());  // multicast
  EXPECT_FALSE(AllocationFor(255).has_value());
}

TEST(Iana, KnownAllocations) {
  const auto one = AllocationFor(1);
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(one->registry, Registry::kApnic);
  EXPECT_EQ(one->year, 2010);

  const auto nine = AllocationFor(9);
  ASSERT_TRUE(nine.has_value());
  EXPECT_EQ(nine->registry, Registry::kLegacy);

  const auto ripe = AllocationFor(193);
  ASSERT_TRUE(ripe.has_value());
  EXPECT_EQ(ripe->registry, Registry::kRipe);
  EXPECT_EQ(ripe->year, 1993);
}

TEST(Iana, AllUnicastSlash8sCovered) {
  // Every /8 in 1..223 except the reserved trio must have a record.
  for (int s = 1; s <= 223; ++s) {
    if (s == 10 || s == 127) continue;
    EXPECT_TRUE(AllocationFor(static_cast<std::uint8_t>(s)).has_value())
        << "/8 " << s;
  }
}

TEST(Iana, MonthIndexIsMonotoneInDate) {
  // 61/8 (1997) allocated before 1/8 (2010).
  EXPECT_LT(AllocationMonthIndex(61), AllocationMonthIndex(1));
  EXPECT_EQ(AllocationMonthIndex(0), -1);
}

TEST(Iana, AgeYears) {
  const auto age = AllocationAgeYears(61, 2013.3);  // allocated 1997-04
  ASSERT_TRUE(age.has_value());
  EXPECT_NEAR(*age, 16.0, 0.5);
  EXPECT_FALSE(AllocationAgeYears(127, 2013.3).has_value());
}

TEST(Iana, RegistryNames) {
  EXPECT_EQ(RegistryName(Registry::kApnic), "APNIC");
  EXPECT_EQ(RegistryName(Registry::kRipe), "RIPE NCC");
}

TEST(Iana, RegionToRegistryMapping) {
  EXPECT_EQ(RegistryForRegionName("Northern America"), Registry::kArin);
  EXPECT_EQ(RegistryForRegionName("South America"), Registry::kLacnic);
  EXPECT_EQ(RegistryForRegionName("W. Europe"), Registry::kRipe);
  EXPECT_EQ(RegistryForRegionName("Eastern Asia"), Registry::kApnic);
  EXPECT_EQ(RegistryForRegionName("Northern Africa"), Registry::kAfrinic);
  EXPECT_EQ(RegistryForRegionName("Central Asia"), Registry::kRipe);
}

TEST(Iana, EveryRegistryHasAllocatedSpace) {
  std::set<Registry> seen;
  for (int s = 1; s <= 223; ++s) {
    const auto allocation = AllocationFor(static_cast<std::uint8_t>(s));
    if (allocation) seen.insert(allocation->registry);
  }
  EXPECT_TRUE(seen.contains(Registry::kArin));
  EXPECT_TRUE(seen.contains(Registry::kRipe));
  EXPECT_TRUE(seen.contains(Registry::kApnic));
  EXPECT_TRUE(seen.contains(Registry::kLacnic));
  EXPECT_TRUE(seen.contains(Registry::kAfrinic));
  EXPECT_TRUE(seen.contains(Registry::kLegacy));
}

}  // namespace
}  // namespace sleepwalk::world
