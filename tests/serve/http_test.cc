// The pure half of the admin plane: request parsing (completeness
// detection, query split, header lookup, malformed rejection) and
// response serialization, byte-exact — no sockets involved.
#include <gtest/gtest.h>

#include <string>

#include "sleepwalk/serve/http.h"

namespace sleepwalk::serve {
namespace {

TEST(ParseRequest, ParsesMethodPathAndHeaders) {
  HttpRequest request;
  const auto status = ParseRequest(
      "GET /statusz HTTP/1.1\r\n"
      "Host: 127.0.0.1\r\n"
      "Accept: */*\r\n"
      "\r\n",
      request);
  ASSERT_EQ(status, ParseStatus::kOk);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/statusz");
  EXPECT_EQ(request.query, "");
  ASSERT_EQ(request.headers.size(), 2u);
  EXPECT_EQ(request.Header("host"), "127.0.0.1");
  EXPECT_EQ(request.Header("ACCEPT"), "*/*");
  EXPECT_EQ(request.Header("missing"), "");
}

TEST(ParseRequest, SplitsQueryStringOffTheTarget) {
  HttpRequest request;
  ASSERT_EQ(ParseRequest("GET /tracez?limit=10 HTTP/1.1\r\n\r\n", request),
            ParseStatus::kOk);
  EXPECT_EQ(request.path, "/tracez");
  EXPECT_EQ(request.query, "limit=10");
}

TEST(ParseRequest, IncompleteUntilTheBlankLineArrives) {
  HttpRequest request;
  EXPECT_EQ(ParseRequest("", request), ParseStatus::kIncomplete);
  EXPECT_EQ(ParseRequest("GET /he", request), ParseStatus::kIncomplete);
  EXPECT_EQ(ParseRequest("GET /healthz HTTP/1.1\r\nHost: x\r\n", request),
            ParseStatus::kIncomplete);
  EXPECT_EQ(ParseRequest("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n", request),
            ParseStatus::kOk);
}

TEST(ParseRequest, ToleratesBareLfLineEndings) {
  HttpRequest request;
  ASSERT_EQ(ParseRequest("GET /metrics HTTP/1.1\nHost: x\n\n", request),
            ParseStatus::kOk);
  EXPECT_EQ(request.path, "/metrics");
  EXPECT_EQ(request.Header("host"), "x");
}

TEST(ParseRequest, RejectsMalformedRequestLines) {
  HttpRequest request;
  // Too few request-line tokens.
  EXPECT_EQ(ParseRequest("GET/healthz\r\n\r\n", request), ParseStatus::kBad);
  // Target must be origin-form (start with '/').
  EXPECT_EQ(ParseRequest("GET healthz HTTP/1.1\r\n\r\n", request),
            ParseStatus::kBad);
  // Only HTTP/1.x is spoken here.
  EXPECT_EQ(ParseRequest("GET /healthz SPDY/3\r\n\r\n", request),
            ParseStatus::kBad);
  // Headers need a colon.
  EXPECT_EQ(ParseRequest("GET / HTTP/1.1\r\nbroken header\r\n\r\n", request),
            ParseStatus::kBad);
}

TEST(SerializeResponse, EmitsStatusLineHeadersAndBody) {
  HttpResponse response;
  response.status = 200;
  response.content_type = "application/json; charset=utf-8";
  response.body = "{\"ok\":true}\n";
  EXPECT_EQ(SerializeResponse(response),
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/json; charset=utf-8\r\n"
            "Content-Length: 12\r\n"
            "Connection: close\r\n"
            "\r\n"
            "{\"ok\":true}\n");
}

TEST(SerializeResponse, KnowsTheAdminPlaneStatusSet) {
  EXPECT_EQ(ReasonPhrase(200), "OK");
  EXPECT_EQ(ReasonPhrase(400), "Bad Request");
  EXPECT_EQ(ReasonPhrase(404), "Not Found");
  EXPECT_EQ(ReasonPhrase(405), "Method Not Allowed");
  EXPECT_EQ(ReasonPhrase(431), "Request Header Fields Too Large");
  EXPECT_EQ(ReasonPhrase(500), "Internal Server Error");
  EXPECT_EQ(ReasonPhrase(999), "Unknown");
}

}  // namespace
}  // namespace sleepwalk::serve
