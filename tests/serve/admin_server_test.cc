// End-to-end AdminServer contract over real loopback sockets: route
// dispatch, 404/405 for unknown paths and non-GET methods, HEAD
// stripping, malformed-request and oversize rejection, and ephemeral
// port binding. The client below is a plain blocking socket — tests
// live outside the sleeplint library scope, so raw syscalls are fine
// here (and deliberately independent of the code under test).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "sleepwalk/serve/admin_server.h"

namespace sleepwalk::serve {
namespace {

/// Sends `request` verbatim to 127.0.0.1:`port`, returns the full
/// response (read to EOF — the server always closes). Empty on failure.
std::string RoundTrip(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const auto n = ::write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    const auto n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

class AdminServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_.Route("/ping", [](const HttpRequest& request) {
      HttpResponse response;
      response.body = "pong";
      if (!request.query.empty()) response.body += "?" + request.query;
      response.body += "\n";
      return response;
    });
    std::string error;
    ASSERT_TRUE(server_.Start(0, &error)) << error;
    ASSERT_NE(server_.port(), 0) << "ephemeral bind must report the port";
  }

  AdminServer server_;
};

TEST_F(AdminServerTest, ServesRegisteredRoutes) {
  const auto response = RoundTrip(
      server_.port(), "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_TRUE(response.starts_with("HTTP/1.1 200 OK\r\n")) << response;
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_TRUE(response.ends_with("\r\n\r\npong\n")) << response;
}

TEST_F(AdminServerTest, HandlersSeeTheQueryString) {
  const auto response = RoundTrip(
      server_.port(), "GET /ping?limit=3 HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(response.ends_with("pong?limit=3\n")) << response;
}

TEST_F(AdminServerTest, UnknownPathIs404) {
  const auto response =
      RoundTrip(server_.port(), "GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(response.starts_with("HTTP/1.1 404 ")) << response;
}

TEST_F(AdminServerTest, NonGetMethodIs405) {
  const auto response = RoundTrip(
      server_.port(), "POST /ping HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  EXPECT_TRUE(response.starts_with("HTTP/1.1 405 ")) << response;
}

TEST_F(AdminServerTest, HeadGetsHeadersWithoutBody) {
  const auto response =
      RoundTrip(server_.port(), "HEAD /ping HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(response.starts_with("HTTP/1.1 200 OK\r\n")) << response;
  // The body is stripped before serialization, so Content-Length is 0
  // (consistent rather than RFC-pedantic — curl -I stays happy).
  EXPECT_NE(response.find("Content-Length: 0\r\n"), std::string::npos);
  EXPECT_TRUE(response.ends_with("\r\n\r\n")) << response;
}

TEST_F(AdminServerTest, MalformedRequestIs400) {
  const auto response = RoundTrip(server_.port(), "BOGUS\r\n\r\n");
  EXPECT_TRUE(response.starts_with("HTTP/1.1 400 ")) << response;
}

TEST_F(AdminServerTest, OversizedRequestHeadIs431) {
  std::string request = "GET /ping HTTP/1.1\r\nX-Pad: ";
  // Over the 16 KiB cap, but small enough that the server's read loop
  // drains the whole request before tripping it — an unread tail would
  // turn the close into a RST and could destroy the in-flight response.
  request.append(17 * 1024, 'a');
  request += "\r\n\r\n";
  const auto response = RoundTrip(server_.port(), request);
  EXPECT_TRUE(response.starts_with("HTTP/1.1 431 ")) << response;
}

TEST_F(AdminServerTest, ServesManySequentialConnections) {
  for (int i = 0; i < 32; ++i) {
    const auto response =
        RoundTrip(server_.port(), "GET /ping HTTP/1.1\r\n\r\n");
    ASSERT_TRUE(response.starts_with("HTTP/1.1 200 ")) << "i=" << i;
  }
}

TEST_F(AdminServerTest, StopIsIdempotentAndRestartable) {
  const auto first_port = server_.port();
  server_.Stop();
  server_.Stop();
  EXPECT_FALSE(server_.running());
  EXPECT_TRUE(RoundTrip(first_port, "GET /ping HTTP/1.1\r\n\r\n").empty());

  std::string error;
  ASSERT_TRUE(server_.Start(0, &error)) << error;
  const auto response =
      RoundTrip(server_.port(), "GET /ping HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(response.starts_with("HTTP/1.1 200 ")) << response;
}

TEST(AdminServer, StartWhileRunningFails) {
  AdminServer server;
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;
  EXPECT_FALSE(server.Start(0, &error));
  EXPECT_EQ(error, "already running");
}

}  // namespace
}  // namespace sleepwalk::serve
