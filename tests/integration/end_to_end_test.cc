// Integration tests: the full measurement chain over a simulated world —
// world generation -> Trinocular probing -> availability estimation ->
// diurnal classification -> validation against the simulator's ground
// truth. These are scaled-down versions of the paper's §3 validations.
#include <gtest/gtest.h>

#include <cmath>

#include "sleepwalk/core/pipeline.h"
#include "sleepwalk/sim/survey.h"
#include "sleepwalk/sim/world.h"
#include "sleepwalk/stats/descriptive.h"

namespace sleepwalk {
namespace {

core::BlockTarget TargetFor(const sim::WorldBlock& block) {
  // "Historical" prior: daytime availability with some error, as the
  // paper's priors come from years-old data.
  const double prior = std::clamp(
      sim::TrueAvailability(block.spec, 13 * 3600) + 0.1, 0.1, 1.0);
  return {block.spec.block, sim::EverActiveOctets(block.spec), prior};
}

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::WorldConfig config;
    config.total_blocks = 400;
    config.seed = 2024;
    config.outage_fraction = 0.0;  // keep truth clean for correlation
    world_ = new sim::SimWorld{sim::SimWorld::Generate(config)};

    auto transport = world_->MakeTransport(0xca11);
    std::vector<core::BlockTarget> targets;
    for (const auto& block : world_->blocks()) {
      targets.push_back(TargetFor(block));
    }
    core::AnalyzerConfig analyzer_config;
    const probing::RoundScheduler scheduler{analyzer_config.schedule};
    result_ = new core::DatasetResult{core::RunCampaign(
        std::move(targets), *transport, scheduler.RoundsForDays(7),
        analyzer_config)};
  }

  static void TearDownTestSuite() {
    delete result_;
    delete world_;
    result_ = nullptr;
    world_ = nullptr;
  }

  static sim::SimWorld* world_;
  static core::DatasetResult* result_;
};

sim::SimWorld* EndToEnd::world_ = nullptr;
core::DatasetResult* EndToEnd::result_ = nullptr;

TEST_F(EndToEnd, EstimatesCorrelateWithTruth) {
  // §3.1.2 / Fig 4: mean A-hat_s vs mean true A across blocks, r > 0.9
  // (paper reports 0.957 per-round on the full survey).
  std::vector<double> truth;
  std::vector<double> estimated;
  const probing::RoundScheduler scheduler{probing::ScheduleConfig{}};
  for (std::size_t i = 0; i < world_->blocks().size(); ++i) {
    const auto& analysis = result_->analyses[i];
    if (!analysis.probed || analysis.short_series.values.empty()) continue;
    const auto& spec = world_->blocks()[i].spec;
    double sum = 0.0;
    const auto n = static_cast<std::int64_t>(scheduler.RoundsForDays(7));
    for (std::int64_t round = 0; round < n; ++round) {
      sum += sim::TrueAvailability(spec, scheduler.TimeOf(round));
    }
    truth.push_back(sum / static_cast<double>(n));
    estimated.push_back(analysis.mean_short);
  }
  ASSERT_GT(truth.size(), 200u);
  EXPECT_GT(stats::PearsonCorrelation(truth, estimated), 0.9);
}

TEST_F(EndToEnd, DiurnalDetectionAgainstGroundTruth) {
  // §3.2.3 / Table 1 shape: good precision, conservative recall.
  int true_positive = 0;
  int false_positive = 0;
  int false_negative = 0;
  int true_negative = 0;
  for (std::size_t i = 0; i < world_->blocks().size(); ++i) {
    const auto& analysis = result_->analyses[i];
    if (!analysis.probed || analysis.observed_days < 2) continue;
    // truly_diurnal marks blocks generated with strong diurnal usage;
    // compare against the strict test, as the paper's Table 1 does.
    const bool truth = world_->blocks()[i].truly_diurnal;
    const bool predicted = analysis.diurnal.IsStrict();
    if (truth && predicted) ++true_positive;
    else if (!truth && predicted) ++false_positive;
    else if (truth && !predicted) ++false_negative;
    else ++true_negative;
  }
  const int total =
      true_positive + false_positive + false_negative + true_negative;
  ASSERT_GT(total, 200);
  ASSERT_GT(true_positive + false_negative, 20)
      << "world must contain diurnal blocks";

  const double precision =
      true_positive > 0
          ? static_cast<double>(true_positive) /
                static_cast<double>(true_positive + false_positive)
          : 0.0;
  const double accuracy =
      static_cast<double>(true_positive + true_negative) /
      static_cast<double>(total);
  EXPECT_GT(precision, 0.7) << "paper: 82.48% precision";
  EXPECT_GT(accuracy, 0.8) << "paper: 90.99% accuracy";
}

TEST_F(EndToEnd, SparseBlocksAreSkippedNotMisclassified) {
  for (std::size_t i = 0; i < world_->blocks().size(); ++i) {
    const auto& block = world_->blocks()[i];
    if (block.spec.EverActiveCount() < 15) {
      EXPECT_FALSE(result_->analyses[i].probed);
    }
  }
}

TEST_F(EndToEnd, MostBlocksAreStationary) {
  // §2.2: ~80% of blocks pass the stationarity screen.
  int stationary = 0;
  int probed = 0;
  for (const auto& analysis : result_->analyses) {
    if (!analysis.probed || analysis.short_series.values.empty()) continue;
    ++probed;
    if (analysis.stationarity.stationary) ++stationary;
  }
  ASSERT_GT(probed, 200);
  EXPECT_GT(static_cast<double>(stationary) / probed, 0.6);
}

TEST_F(EndToEnd, ProbingStaysUnderTrinocularBudget) {
  // < 20 probes per hour per /24 on average (paper abstract).
  double total_rate = 0.0;
  int probed = 0;
  for (const auto& analysis : result_->analyses) {
    if (!analysis.probed) continue;
    ++probed;
    total_rate += analysis.mean_probes_per_round * 60.0 / 11.0;
  }
  ASSERT_GT(probed, 0);
  EXPECT_LT(total_rate / probed, 20.0);
}

TEST(CrossSite, TwoObserversAgree) {
  // §3.3 / Table 2: two sites measuring the same world must agree on
  // nearly all diurnal-vs-not calls.
  sim::WorldConfig config;
  config.total_blocks = 150;
  config.seed = 99;
  config.outage_fraction = 0.0;
  const auto world = sim::SimWorld::Generate(config);

  const auto run = [&world](std::uint64_t site_seed) {
    auto transport = world.MakeTransport(site_seed);
    std::vector<core::BlockTarget> targets;
    for (const auto& block : world.blocks()) {
      targets.push_back(TargetFor(block));
    }
    core::AnalyzerConfig analyzer_config;
    const probing::RoundScheduler scheduler{analyzer_config.schedule};
    return core::RunCampaign(std::move(targets), *transport,
                             scheduler.RoundsForDays(7), analyzer_config,
                             /*seed=*/site_seed);
  };
  const auto site_w = run(0x10ca1);
  const auto site_j = run(0x6a9a2);

  // The paper's Table 2 metric: of the blocks strictly diurnal at site
  // W, what does site J say? 85% strict again, 98.8% at least relaxed,
  // strong disagreement (strict vs N) ~1.2%.
  int both_probed = 0;
  int w_strict = 0;
  int j_agrees_either = 0;
  int j_agrees_strict = 0;
  for (std::size_t i = 0; i < site_w.analyses.size(); ++i) {
    const auto& w = site_w.analyses[i];
    const auto& j = site_j.analyses[i];
    if (!w.probed || !j.probed) continue;
    ++both_probed;
    if (!w.diurnal.IsStrict()) continue;
    ++w_strict;
    if (j.diurnal.IsDiurnal()) ++j_agrees_either;
    if (j.diurnal.IsStrict()) ++j_agrees_strict;
  }
  ASSERT_GT(both_probed, 80);
  ASSERT_GT(w_strict, 10) << "world must produce strict diurnal blocks";
  EXPECT_GT(static_cast<double>(j_agrees_either) / w_strict, 0.9)
      << "paper: 98.8% of LA's strict blocks at least relaxed at Keio";
  EXPECT_GT(static_cast<double>(j_agrees_strict) / w_strict, 0.7)
      << "paper: 85% strict at both sites";
}

}  // namespace
}  // namespace sleepwalk
