// The telemetry subsystem's two hard invariants, end to end:
//
//  1. Inertness — a campaign's DatasetResult and checkpoint bytes are
//     identical whether it runs with a null obs::Context or full sinks
//     (logger at trace, metrics registry, tracer). Telemetry only reads
//     campaign state.
//  2. Determinism — in deterministic mode every serialized telemetry
//     byte derives from campaign state, so two same-seed runs emit
//     identical JSONL logs, traces, and metric expositions.
//
// Plus the reconciliation check ISSUE acceptance demands: the probe
// counters in the registry must agree with report::ResilienceStats and
// satisfy sent = answered + lost + rate_limited + unreachable.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sleepwalk/core/status.h"
#include "sleepwalk/core/supervisor.h"
#include "sleepwalk/faults/faulty_transport.h"
#include "sleepwalk/net/instrumented_transport.h"
#include "sleepwalk/obs/context.h"
#include "sleepwalk/serve/admin_server.h"
#include "sleepwalk/serve/routes.h"
#include "sleepwalk/sim/world.h"

namespace sleepwalk {
namespace {

sim::SimWorld ObsWorld() {
  sim::WorldConfig config;
  config.total_blocks = 25;
  config.seed = 0x0b5;
  return sim::SimWorld::Generate(config);
}

std::vector<core::BlockTarget> TargetsOf(const sim::SimWorld& world) {
  std::vector<core::BlockTarget> targets;
  for (const auto& block : world.blocks()) {
    targets.push_back({block.spec.block, sim::EverActiveOctets(block.spec),
                       sim::TrueAvailability(block.spec, 13 * 3600)});
  }
  return targets;
}

faults::FaultPlan ObsFaults(const sim::SimWorld& world) {
  // Exercise every probe bucket and recovery path: loss, rate limiting,
  // an unreachable storm, transport breakage (-> retries), and a dead
  // block (-> quarantine).
  faults::FaultPlan plan;
  plan.iid_loss = 0.05;
  plan.rate_limit_per_window = 8;
  plan.unreachable_windows = {{5 * 660, 15 * 660}};
  plan.error_windows = {{40 * 660, 41 * 660}};
  plan.dead_blocks = {world.blocks()[3].spec.block.Index()};
  return plan;
}

core::SupervisorConfig ObsConfig(const std::string& checkpoint_path) {
  core::SupervisorConfig config;
  config.forced_restart_rounds = {60};
  config.gap_round_windows = {{100, 104}};
  config.checkpoint_path = checkpoint_path;
  config.checkpoint_every_rounds = 700;
  return config;
}

/// All sinks for one instrumented run, accumulated in memory.
struct Sinks {
  obs::Logger logger{obs::LogConfig{obs::Level::kTrace, true}};
  obs::Registry registry;
  obs::Tracer tracer;
  std::ostringstream text;
  std::ostringstream jsonl;

  Sinks() {
    logger.AddTextSink(&text);
    logger.AddJsonlSink(&jsonl);
  }

  obs::Context Context() { return {&logger, &registry, &tracer}; }

  std::string TraceJsonl() const {
    std::ostringstream out;
    tracer.WriteJsonl(out);
    return out.str();
  }
  std::string Prometheus() const {
    std::ostringstream out;
    registry.WritePrometheus(out);
    return out.str();
  }
};

core::CampaignOutcome RunObsCampaign(const std::string& checkpoint_path,
                                     const obs::Context& context,
                                     core::StatusHub* status = nullptr) {
  const auto world = ObsWorld();
  auto inner = world.MakeTransport(17);
  faults::FaultyTransport transport{*inner, ObsFaults(world)};
  transport.AttachObs(context);
  auto config = ObsConfig(checkpoint_path);
  config.obs = context;
  config.status = status;
  auto outcome =
      core::RunResilientCampaign(TargetsOf(world), transport, 180, config);
  outcome.stats.probes.Merge(transport.accounting());
  return outcome;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void ExpectSameResult(const core::DatasetResult& a,
                      const core::DatasetResult& b) {
  EXPECT_EQ(a.counts.strict, b.counts.strict);
  EXPECT_EQ(a.counts.relaxed, b.counts.relaxed);
  EXPECT_EQ(a.counts.non_diurnal, b.counts.non_diurnal);
  EXPECT_EQ(a.counts.skipped, b.counts.skipped);
  ASSERT_EQ(a.analyses.size(), b.analyses.size());
  for (std::size_t i = 0; i < a.analyses.size(); ++i) {
    const auto& x = a.analyses[i];
    const auto& y = b.analyses[i];
    ASSERT_EQ(x.block, y.block);
    EXPECT_EQ(x.diurnal.classification, y.diurnal.classification);
    EXPECT_EQ(x.down_rounds, y.down_rounds);
    ASSERT_EQ(x.short_series.values.size(), y.short_series.values.size());
    for (std::size_t s = 0; s < x.short_series.values.size(); ++s) {
      // Bitwise: telemetry must not perturb a single estimator draw.
      ASSERT_EQ(x.short_series.values[s], y.short_series.values[s])
          << "block " << i << " sample " << s;
    }
  }
}

TEST(ObsInertness, ResultAndCheckpointIdenticalWithAndWithoutSinks) {
  const std::string path_off = testing::TempDir() + "/obs_inert_off.ck";
  const std::string path_on = testing::TempDir() + "/obs_inert_on.ck";
  std::remove(path_off.c_str());
  std::remove(path_on.c_str());

  const auto off = RunObsCampaign(path_off, obs::Context{});
  Sinks sinks;
  const auto on = RunObsCampaign(path_on, sinks.Context());

  ExpectSameResult(off.result, on.result);
  EXPECT_EQ(off.stats.rounds_attempted, on.stats.rounds_attempted);
  EXPECT_EQ(off.stats.retries, on.stats.retries);
  EXPECT_EQ(off.stats.quarantined_blocks, on.stats.quarantined_blocks);
  EXPECT_EQ(off.stats.probes.attempts, on.stats.probes.attempts);
  EXPECT_EQ(off.stats.probes.answered, on.stats.probes.answered);

  const auto bytes_off = FileBytes(path_off);
  const auto bytes_on = FileBytes(path_on);
  ASSERT_FALSE(bytes_off.empty());
  EXPECT_EQ(bytes_off, bytes_on)
      << "telemetry changed the checkpoint bytes";

  // The instrumented run actually produced telemetry (the invariant is
  // not satisfied vacuously).
  EXPECT_FALSE(sinks.jsonl.str().empty());
  EXPECT_GT(sinks.tracer.spans().size(), 0u);
  EXPECT_GT(sinks.registry.size(), 0u);

  std::remove(path_off.c_str());
  std::remove(path_on.c_str());
}

TEST(ObsInertness, SameSeedRunsEmitIdenticalTelemetry) {
  const std::string path_a = testing::TempDir() + "/obs_det_a.ck";
  const std::string path_b = testing::TempDir() + "/obs_det_b.ck";
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());

  Sinks first;
  RunObsCampaign(path_a, first.Context());
  Sinks second;
  RunObsCampaign(path_b, second.Context());

  // The checkpoint path differs between the runs, so strip the one
  // path-carrying field; every other byte must match. Compare the JSONL
  // line counts first for a readable failure.
  EXPECT_EQ(first.text.str().size(), second.text.str().size());
  EXPECT_EQ(first.TraceJsonl(), second.TraceJsonl());
  EXPECT_EQ(first.Prometheus(), second.Prometheus());

  std::istringstream lines_a{first.jsonl.str()};
  std::istringstream lines_b{second.jsonl.str()};
  std::string line_a;
  std::string line_b;
  std::size_t n = 0;
  while (std::getline(lines_a, line_a)) {
    ASSERT_TRUE(static_cast<bool>(std::getline(lines_b, line_b)))
        << "run B ended early at line " << n;
    if (line_a != line_b) {
      // Only checkpoint.write/resume events may differ, and only in the
      // path field.
      EXPECT_NE(line_a.find("checkpoint."), std::string::npos)
          << "line " << n << " differs: " << line_a << " vs " << line_b;
    }
    ++n;
  }
  EXPECT_FALSE(static_cast<bool>(std::getline(lines_b, line_b)))
      << "run B has extra lines";
  EXPECT_GT(n, 0u);

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(ObsInertness, IdenticalCheckpointPathMeansByteIdenticalJsonl) {
  const std::string path = testing::TempDir() + "/obs_det_same.ck";

  std::remove(path.c_str());
  Sinks first;
  RunObsCampaign(path, first.Context());
  std::remove(path.c_str());
  Sinks second;
  RunObsCampaign(path, second.Context());
  std::remove(path.c_str());

  EXPECT_EQ(first.jsonl.str(), second.jsonl.str());
  EXPECT_EQ(first.text.str(), second.text.str());
}

/// One blocking loopback GET, response discarded: the scraper below
/// only exists to exercise the admin read path during a campaign.
void ScrapeOnce(std::uint16_t port, const char* path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    const std::string request =
        std::string{"GET "} + path + " HTTP/1.1\r\nConnection: close\r\n\r\n";
    [[maybe_unused]] const auto sent =
        ::write(fd, request.data(), request.size());
    char buf[4096];
    while (::read(fd, buf, sizeof(buf)) > 0) {
    }
  }
  ::close(fd);
}

TEST(ObsInertness, AdminServerAttachedRunIsByteIdentical) {
  // Tentpole invariant: the admin plane is a read-only observer. A
  // campaign scraped the whole time by /statusz + /metrics + /tracez
  // readers must produce the same dataset, checkpoint, and telemetry
  // bytes as one that ran unobserved.
  const std::string path = testing::TempDir() + "/obs_admin.ck";
  std::remove(path.c_str());

  Sinks bare;
  const auto off = RunObsCampaign(path, bare.Context());
  const auto checkpoint_bare = FileBytes(path);
  std::remove(path.c_str());

  Sinks observed;
  core::StatusHub hub;
  serve::AdminServer server;
  serve::AdminPlane plane;
  plane.metrics = &observed.registry;
  plane.tracer = &observed.tracer;
  plane.status = &hub;
  serve::InstallAdminRoutes(server, plane);
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;

  std::atomic<bool> done{false};
  std::thread scraper{[&] {
    while (!done.load(std::memory_order_relaxed)) {
      ScrapeOnce(server.port(), "/statusz");
      ScrapeOnce(server.port(), "/metrics");
      ScrapeOnce(server.port(), "/tracez");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }};
  const auto on = RunObsCampaign(path, observed.Context(), &hub);
  done.store(true, std::memory_order_relaxed);
  scraper.join();
  server.Stop();
  const auto checkpoint_observed = FileBytes(path);
  std::remove(path.c_str());

  ExpectSameResult(off.result, on.result);
  ASSERT_FALSE(checkpoint_bare.empty());
  EXPECT_EQ(checkpoint_bare, checkpoint_observed)
      << "the admin server changed the checkpoint bytes";
  EXPECT_EQ(bare.jsonl.str(), observed.jsonl.str());
  EXPECT_EQ(bare.text.str(), observed.text.str());
  EXPECT_EQ(bare.Prometheus(), observed.Prometheus());
  EXPECT_EQ(bare.TraceJsonl(), observed.TraceJsonl());
}

TEST(ObsReconciliation, ProbeCountersMatchResilienceStats) {
  Sinks sinks;
  const auto outcome = RunObsCampaign("", sinks.Context());
  const auto& registry = sinks.registry;
  const auto& probes = outcome.stats.probes;

  const auto counter = [&](const char* name) -> double {
    const auto* c = registry.counter(name);
    return c != nullptr ? c->value() : -1.0;
  };

  EXPECT_TRUE(probes.Balanced());
  EXPECT_GT(probes.rate_limited, 0u);  // the plan exercised every bucket
  EXPECT_GT(probes.unreachable, 0u);
  EXPECT_GT(probes.errors, 0u);

  EXPECT_EQ(counter(net::ProbeMetricNames::kAttempted),
            static_cast<double>(probes.attempts));
  EXPECT_EQ(counter(net::ProbeMetricNames::kErrors),
            static_cast<double>(probes.errors));
  EXPECT_EQ(counter(net::ProbeMetricNames::kAnswered),
            static_cast<double>(probes.answered));
  EXPECT_EQ(counter(net::ProbeMetricNames::kLost),
            static_cast<double>(probes.lost));
  EXPECT_EQ(counter(net::ProbeMetricNames::kRateLimited),
            static_cast<double>(probes.rate_limited));
  EXPECT_EQ(counter(net::ProbeMetricNames::kUnreachable),
            static_cast<double>(probes.unreachable));

  EXPECT_EQ(counter("supervisor_rounds_total"),
            static_cast<double>(outcome.stats.rounds_attempted));
  EXPECT_EQ(counter("supervisor_retries_total"),
            static_cast<double>(outcome.stats.retries));
  EXPECT_EQ(counter("supervisor_rounds_gapped_total"),
            static_cast<double>(outcome.stats.rounds_gapped));
  EXPECT_EQ(counter("supervisor_forced_restarts_total"),
            static_cast<double>(outcome.stats.forced_restarts));
  EXPECT_EQ(counter("supervisor_quarantined_total"),
            static_cast<double>(outcome.stats.quarantined_blocks));
}

TEST(ObsReconciliation, InstrumentedTransportCountsCleanStacks) {
  // The InstrumentedTransport decorator gives a fault-free stack the
  // same probe accounting; rate_limited stays 0 behind it (a limiter
  // drop is indistinguishable from loss at that vantage).
  const auto world = ObsWorld();
  auto inner = world.MakeTransport(17);
  Sinks sinks;
  const auto context = sinks.Context();
  net::InstrumentedTransport transport{*inner, context};
  core::SupervisorConfig config;
  config.obs = context;
  const auto outcome =
      core::RunResilientCampaign(TargetsOf(world), transport, 120, config);

  const auto& probes = transport.accounting();
  EXPECT_TRUE(probes.Balanced());
  EXPECT_GT(probes.attempts, 0u);
  EXPECT_EQ(probes.rate_limited, 0u);
  const auto* attempted =
      sinks.registry.counter(net::ProbeMetricNames::kAttempted);
  ASSERT_NE(attempted, nullptr);
  EXPECT_EQ(attempted->value(), static_cast<double>(probes.attempts));
  EXPECT_GT(outcome.stats.rounds_attempted, 0u);
}

}  // namespace
}  // namespace sleepwalk
