// Exhaustive crash-point sweep. A dry run through an inert failpoint
// set counts every storage operation an uninterrupted campaign performs
// (and doubles as the baseline); the sweep then kills the process — a
// thrown util::CrashInjected, caught here like a power cut — at each of
// those operations in turn, restarts on the same "disk", and requires
// the resumed campaign to converge on byte-identical artifacts: the
// primary checkpoint file and the encoded dataset. Runs at 1 worker
// (RunResilientCampaign) and 8 workers (RunParallelCampaign).
//
// A second matrix injects non-fatal I/O failures (EIO, ENOSPC, short
// write): saves fail and are logged, but the campaign completes and the
// dataset must not change by a single byte.
//
// Both matrices run once per on-disk checkpoint format: SLCK v3 (the
// columnar container resumed through the zero-copy Env::Map seam, and
// the SupervisorConfig default) and SLCK v2 (the legacy row-oriented
// layout) — the durability discipline is format-independent.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sleepwalk/core/dataset.h"
#include "sleepwalk/core/parallel_executor.h"
#include "sleepwalk/core/supervisor.h"
#include "sleepwalk/sim/world.h"
#include "sleepwalk/storage/faulty_env.h"
#include "sleepwalk/storage/file.h"
#include "sleepwalk/util/failpoint.h"

namespace sleepwalk {
namespace {

constexpr char kPath[] = "/campaign/ck.slck";
constexpr std::int64_t kRounds = 20;

sim::SimWorld SweepWorld() {
  sim::WorldConfig config;
  config.total_blocks = 6;
  config.seed = 0x5eed;
  return sim::SimWorld::Generate(config);
}

std::vector<core::BlockTarget> TargetsOf(const sim::SimWorld& world) {
  std::vector<core::BlockTarget> targets;
  for (const auto& block : world.blocks()) {
    targets.push_back({block.spec.block, sim::EverActiveOctets(block.spec),
                       sim::TrueAvailability(block.spec, 13 * 3600)});
  }
  return targets;
}

core::SupervisorConfig ConfigFor(storage::Env& env, std::uint32_t format) {
  core::SupervisorConfig config;
  config.checkpoint_path = kPath;
  config.checkpoint_keep = 3;
  config.checkpoint_format = format;
  config.env = &env;
  return config;
}

/// Worker chain owning its private identically-seeded sim transport, so
/// chains are interchangeable (DESIGN.md §9) and the 8-worker run is
/// deterministic.
class OwningSimChain final : public core::ShardChain {
 public:
  OwningSimChain(const sim::SimWorld& world, std::uint64_t site_seed)
      : transport_{world.MakeTransport(site_seed)} {}
  net::Transport& transport() override { return *transport_; }

 private:
  std::unique_ptr<sim::SimTransport> transport_;
};

core::CampaignOutcome RunSequential(const sim::SimWorld& world,
                                    storage::Env& env, std::uint32_t format) {
  auto transport = world.MakeTransport(5);
  return core::RunResilientCampaign(TargetsOf(world), *transport, kRounds,
                                    ConfigFor(env, format));
}

core::CampaignOutcome RunParallel(const sim::SimWorld& world,
                                  storage::Env& env, std::uint32_t format) {
  core::ParallelConfig parallel;
  parallel.workers = 8;
  const core::ShardFactory factory = [&world](std::size_t) {
    return std::make_unique<OwningSimChain>(world, 5);
  };
  return core::RunParallelCampaign(TargetsOf(world), factory, kRounds,
                                   ConfigFor(env, format), parallel);
}

using Runner = std::function<core::CampaignOutcome(
    const sim::SimWorld&, storage::Env&, std::uint32_t)>;

std::vector<std::uint8_t> FileBytes(storage::Env& env,
                                    const std::string& path) {
  std::vector<std::uint8_t> bytes;
  const auto error = env.ReadAll(path, bytes);
  EXPECT_TRUE(error.ok()) << path << ": " << error.ToString();
  return bytes;
}

std::vector<std::uint8_t> DatasetBytesOf(const core::CampaignOutcome& outcome) {
  const core::SupervisorConfig defaults;
  return core::EncodeDataset(outcome.result.analyses,
                             defaults.analyzer.schedule.round_seconds,
                             defaults.analyzer.schedule.epoch_sec);
}

/// Counts the storage operations of one uninterrupted run, then crashes
/// at every single one of them and proves restart convergence.
void CrashSweep(const Runner& run, std::uint32_t format) {
  const auto world = SweepWorld();

  util::FailpointSet counter;  // inert: counts hits, never fires
  storage::MemEnv clean;
  storage::FaultyEnv counted{clean, counter};
  const auto baseline = run(world, counted, format);
  const auto n_ops = counter.total_hits();
  ASSERT_GT(n_ops, 0u) << "campaign performed no storage operations";

  const auto want_checkpoint = FileBytes(clean, kPath);
  const auto want_dataset = DatasetBytesOf(baseline);
  ASSERT_FALSE(want_checkpoint.empty());

  for (std::uint64_t ordinal = 1; ordinal <= n_ops; ++ordinal) {
    SCOPED_TRACE("crash at storage op " + std::to_string(ordinal) + " of " +
                 std::to_string(n_ops));
    util::FailpointSet failpoints;
    ASSERT_TRUE(util::FailpointSet::Parse(
        "*=crash@" + std::to_string(ordinal), failpoints));
    storage::MemEnv disk;
    storage::FaultyEnv env{disk, failpoints};

    bool crashed = false;
    try {
      run(world, env, format);
    } catch (const util::CrashInjected&) {
      crashed = true;
    }
    // Every ordinal up to n_ops replays the same op prefix, so the
    // crash always fires.
    ASSERT_TRUE(crashed);

    // "Restart": same disk — tmp litter, half-rotated generations and
    // all — with the failpoints disarmed.
    failpoints.Reset();
    const auto resumed = run(world, env, format);
    EXPECT_EQ(FileBytes(disk, kPath), want_checkpoint)
        << "primary checkpoint diverged after crash/restart";
    EXPECT_EQ(DatasetBytesOf(resumed), want_dataset)
        << "dataset diverged after crash/restart";
    ASSERT_EQ(resumed.result.analyses.size(),
              baseline.result.analyses.size());
  }
}

TEST(CrashSweep, EveryStorageOpSingleWorker) {
  CrashSweep(RunSequential, core::kCheckpointVersion);
}

TEST(CrashSweep, EveryStorageOpEightWorkers) {
  CrashSweep(RunParallel, core::kCheckpointVersion);
}

TEST(CrashSweep, EveryStorageOpSingleWorkerColumnar) {
  CrashSweep(RunSequential, core::kCheckpointVersionColumnar);
}

TEST(CrashSweep, EveryStorageOpEightWorkersColumnar) {
  CrashSweep(RunParallel, core::kCheckpointVersionColumnar);
}

/// Non-fatal I/O failure matrix: a failed checkpoint save is logged and
/// rolled back, never measured. The dataset must be byte-identical to
/// the failure-free run (checkpoint generation counts legitimately
/// differ — a failed save is a save not written).
void ErrorMatrix(const Runner& run, std::uint32_t format) {
  const auto world = SweepWorld();

  util::FailpointSet counter;
  storage::MemEnv clean;
  storage::FaultyEnv counted{clean, counter};
  const auto baseline = run(world, counted, format);
  const auto n_ops = counter.total_hits();
  ASSERT_GT(n_ops, 2u);
  const auto want_dataset = DatasetBytesOf(baseline);

  for (const char* action : {"eio", "enospc", "short"}) {
    for (const std::uint64_t ordinal :
         {std::uint64_t{1}, n_ops / 2, n_ops - 1}) {
      SCOPED_TRACE(std::string{action} + " at storage op " +
                   std::to_string(ordinal));
      util::FailpointSet failpoints;
      ASSERT_TRUE(util::FailpointSet::Parse(
          "*=" + std::string{action} + "@" + std::to_string(ordinal),
          failpoints));
      storage::MemEnv disk;
      storage::FaultyEnv env{disk, failpoints};
      const auto outcome = run(world, env, format);
      EXPECT_FALSE(outcome.resumed);
      EXPECT_EQ(DatasetBytesOf(outcome), want_dataset)
          << "an I/O error leaked into the measurement";
      ASSERT_EQ(outcome.result.analyses.size(),
                baseline.result.analyses.size());
      for (std::size_t i = 0; i < baseline.result.analyses.size(); ++i) {
        EXPECT_EQ(baseline.result.analyses[i].short_series.values,
                  outcome.result.analyses[i].short_series.values);
      }
    }
  }
}

TEST(CrashSweep, IoErrorMatrixSingleWorker) {
  ErrorMatrix(RunSequential, core::kCheckpointVersion);
}

TEST(CrashSweep, IoErrorMatrixEightWorkers) {
  ErrorMatrix(RunParallel, core::kCheckpointVersion);
}

TEST(CrashSweep, IoErrorMatrixSingleWorkerColumnar) {
  ErrorMatrix(RunSequential, core::kCheckpointVersionColumnar);
}

}  // namespace
}  // namespace sleepwalk
