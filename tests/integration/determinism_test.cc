// Reproducibility guarantees: identical seeds must yield bit-identical
// campaigns — every experiment in EXPERIMENTS.md depends on this. That
// extends to recovery: a campaign killed and resumed from a checkpoint
// must reproduce the uninterrupted run bit for bit, even with a fault
// plan injecting loss and breakage.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sleepwalk/core/pipeline.h"
#include "sleepwalk/core/supervisor.h"
#include "sleepwalk/faults/faulty_transport.h"
#include "sleepwalk/sim/world.h"

namespace sleepwalk {
namespace {

core::DatasetResult RunOnce(std::uint64_t world_seed,
                            std::uint64_t site_seed) {
  sim::WorldConfig config;
  config.total_blocks = 120;
  config.seed = world_seed;
  const auto world = sim::SimWorld::Generate(config);
  auto transport = world.MakeTransport(site_seed);
  std::vector<core::BlockTarget> targets;
  for (const auto& block : world.blocks()) {
    targets.push_back({block.spec.block, sim::EverActiveOctets(block.spec),
                       sim::TrueAvailability(block.spec, 13 * 3600)});
  }
  core::AnalyzerConfig analyzer_config;
  const probing::RoundScheduler scheduler{analyzer_config.schedule};
  return core::RunCampaign(std::move(targets), *transport,
                           scheduler.RoundsForDays(4), analyzer_config,
                           site_seed);
}

TEST(Determinism, IdenticalSeedsIdenticalResults) {
  const auto a = RunOnce(77, 5);
  const auto b = RunOnce(77, 5);
  ASSERT_EQ(a.analyses.size(), b.analyses.size());
  EXPECT_EQ(a.counts.strict, b.counts.strict);
  EXPECT_EQ(a.counts.relaxed, b.counts.relaxed);
  EXPECT_EQ(a.counts.skipped, b.counts.skipped);
  for (std::size_t i = 0; i < a.analyses.size(); ++i) {
    const auto& x = a.analyses[i];
    const auto& y = b.analyses[i];
    ASSERT_EQ(x.block, y.block);
    ASSERT_EQ(x.short_series.values.size(), y.short_series.values.size());
    for (std::size_t s = 0; s < x.short_series.values.size(); ++s) {
      ASSERT_EQ(x.short_series.values[s], y.short_series.values[s])
          << "block " << i << " sample " << s;
    }
    EXPECT_EQ(x.diurnal.classification, y.diurnal.classification);
    EXPECT_EQ(x.down_rounds, y.down_rounds);
  }
}

TEST(Determinism, DifferentSiteSeedsDifferentNoise) {
  const auto a = RunOnce(77, 5);
  const auto b = RunOnce(77, 6);
  ASSERT_EQ(a.analyses.size(), b.analyses.size());
  // Same world, different observation noise: series must differ
  // somewhere, while aggregate conclusions stay close.
  bool any_difference = false;
  for (std::size_t i = 0; i < a.analyses.size() && !any_difference; ++i) {
    if (a.analyses[i].short_series.values !=
        b.analyses[i].short_series.values) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
  EXPECT_NEAR(static_cast<double>(a.counts.strict),
              static_cast<double>(b.counts.strict),
              std::max<double>(4.0, 0.3 * a.counts.strict));
}

// --- checkpoint/resume -------------------------------------------------

sim::SimWorld ResilienceWorld() {
  sim::WorldConfig config;
  config.total_blocks = 30;
  config.seed = 0x2e5;
  return sim::SimWorld::Generate(config);
}

std::vector<core::BlockTarget> TargetsOf(const sim::SimWorld& world) {
  std::vector<core::BlockTarget> targets;
  for (const auto& block : world.blocks()) {
    targets.push_back({block.spec.block, sim::EverActiveOctets(block.spec),
                       sim::TrueAvailability(block.spec, 13 * 3600)});
  }
  return targets;
}

faults::FaultPlan ResilienceFaults(const sim::SimWorld& world) {
  faults::FaultPlan plan;
  plan.iid_loss = 0.05;
  plan.burst.enabled = true;
  plan.dead_blocks = {world.blocks()[4].spec.block.Index()};
  return plan;
}

core::SupervisorConfig ResilienceConfig() {
  core::SupervisorConfig config;
  config.forced_restart_rounds = {50, 150};
  config.gap_round_windows = {{200, 210}};
  return config;
}

void ExpectBitIdentical(const core::DatasetResult& a,
                        const core::DatasetResult& b) {
  EXPECT_EQ(a.counts.strict, b.counts.strict);
  EXPECT_EQ(a.counts.relaxed, b.counts.relaxed);
  EXPECT_EQ(a.counts.non_diurnal, b.counts.non_diurnal);
  EXPECT_EQ(a.counts.skipped, b.counts.skipped);
  ASSERT_EQ(a.analyses.size(), b.analyses.size());
  for (std::size_t i = 0; i < a.analyses.size(); ++i) {
    const auto& x = a.analyses[i];
    const auto& y = b.analyses[i];
    ASSERT_EQ(x.block, y.block);
    EXPECT_EQ(x.probed, y.probed);
    EXPECT_EQ(x.diurnal.classification, y.diurnal.classification);
    EXPECT_EQ(x.down_rounds, y.down_rounds);
    EXPECT_EQ(x.outage_starts, y.outage_starts);
    ASSERT_EQ(x.short_series.values.size(), y.short_series.values.size());
    for (std::size_t s = 0; s < x.short_series.values.size(); ++s) {
      // Bitwise equality, not approximate: resume must replay the exact
      // probe, estimator, and fault sequence.
      ASSERT_EQ(x.short_series.values[s], y.short_series.values[s])
          << "block " << i << " sample " << s;
    }
  }
}

TEST(Determinism, KilledAndResumedCampaignIsBitIdentical) {
  const auto world = ResilienceWorld();
  const std::int64_t n_rounds = 300;

  // Uninterrupted reference run.
  auto inner_ref = world.MakeTransport(9);
  faults::FaultyTransport transport_ref{*inner_ref, ResilienceFaults(world)};
  const auto reference = core::RunResilientCampaign(
      TargetsOf(world), transport_ref, n_rounds, ResilienceConfig());

  // The same campaign, killed twice mid-flight. Each slice constructs a
  // fresh transport, as a restarted process would; the checkpoint's
  // transport snapshot restores the probe stream.
  const std::string path = testing::TempDir() + "/sleepwalk_kill_resume.ck";
  std::remove(path.c_str());
  auto config = ResilienceConfig();
  config.checkpoint_path = path;
  config.checkpoint_every_rounds = 500;
  config.stop_after_rounds = 3500;  // 30 blocks x 300 rounds = 9000 total

  core::CampaignOutcome outcome;
  int slices = 0;
  do {
    auto inner = world.MakeTransport(9);
    faults::FaultyTransport transport{*inner, ResilienceFaults(world)};
    outcome = core::RunResilientCampaign(TargetsOf(world), transport,
                                         n_rounds, config);
    ++slices;
    ASSERT_LE(slices, 10) << "campaign did not converge";
  } while (outcome.stopped_early);

  EXPECT_GE(slices, 3);  // at least two kills actually happened
  EXPECT_TRUE(outcome.resumed);
  EXPECT_TRUE(outcome.stats.resumed_from_checkpoint);
  ExpectBitIdentical(reference.result, outcome.result);
  ASSERT_EQ(reference.quarantined.size(), outcome.quarantined.size());
  for (std::size_t i = 0; i < reference.quarantined.size(); ++i) {
    EXPECT_EQ(reference.quarantined[i], outcome.quarantined[i]);
  }
  std::remove(path.c_str());
}

// --- §4's restart artifact ---------------------------------------------

int ArtifactBlockCount(const sim::SimWorld& world, std::int64_t every) {
  core::SupervisorConfig config;
  config.analyzer.schedule.restart_every_rounds = 0;  // only injected ones
  const probing::RoundScheduler scheduler{config.analyzer.schedule};
  const auto n_rounds = scheduler.RoundsForDays(14);
  if (every > 0) {
    config.forced_restart_rounds = faults::PeriodicRestarts(every, n_rounds);
  }
  auto transport = world.MakeTransport(0xab1a7);
  const auto outcome = core::RunResilientCampaign(
      TargetsOf(world), *transport, n_rounds, config);
  int in_band = 0;
  for (const auto& analysis : outcome.result.analyses) {
    if (!analysis.probed || analysis.observed_days < 2) continue;
    const double cycles = analysis.diurnal.strongest_cycles_per_day;
    if (cycles >= 4.1 && cycles <= 4.7) ++in_band;
  }
  return in_band;
}

TEST(RestartArtifact, ScheduledRestartsManufactureSpectralLine) {
  // §4 / Fig 10: restarting the prober every 5.5 h (every 30 rounds at
  // 11 min/round) puts a phantom line at ~4.36 cycles/day. It is a
  // population-tail effect — ~1% of blocks end up with their *strongest*
  // frequency at the restart period — so the assertion is over a world,
  // not a single block. Everything is seeded, so the counts are exact.
  sim::WorldConfig world_config;
  world_config.total_blocks = 600;
  world_config.seed = 0xab1a7;
  const auto world = sim::SimWorld::Generate(world_config);

  const int with_restarts = ArtifactBlockCount(world, 30);
  const int without = ArtifactBlockCount(world, 0);
  EXPECT_GE(with_restarts, 3)
      << "restart artifact missing at ~4.36 cycles/day";
  EXPECT_EQ(without, 0)
      << "phantom 4.36 cycles/day line without any restarts";
}

TEST(Determinism, WorldMinBlocksPerCountryHonored) {
  sim::WorldConfig config;
  config.total_blocks = 500;
  config.min_blocks_per_country = 25;
  const auto world = sim::SimWorld::Generate(config);
  std::map<std::string_view, int> per_country;
  for (const auto& block : world.blocks()) {
    ++per_country[block.country->code];
  }
  for (const auto& [code, count] : per_country) {
    EXPECT_GE(count, 25) << code;
  }
}

}  // namespace
}  // namespace sleepwalk
