// Reproducibility guarantees: identical seeds must yield bit-identical
// campaigns — every experiment in EXPERIMENTS.md depends on this.
#include <gtest/gtest.h>

#include "sleepwalk/core/pipeline.h"
#include "sleepwalk/sim/world.h"

namespace sleepwalk {
namespace {

core::DatasetResult RunOnce(std::uint64_t world_seed,
                            std::uint64_t site_seed) {
  sim::WorldConfig config;
  config.total_blocks = 120;
  config.seed = world_seed;
  const auto world = sim::SimWorld::Generate(config);
  auto transport = world.MakeTransport(site_seed);
  std::vector<core::BlockTarget> targets;
  for (const auto& block : world.blocks()) {
    targets.push_back({block.spec.block, sim::EverActiveOctets(block.spec),
                       sim::TrueAvailability(block.spec, 13 * 3600)});
  }
  core::AnalyzerConfig analyzer_config;
  const probing::RoundScheduler scheduler{analyzer_config.schedule};
  return core::RunCampaign(std::move(targets), *transport,
                           scheduler.RoundsForDays(4), analyzer_config,
                           site_seed);
}

TEST(Determinism, IdenticalSeedsIdenticalResults) {
  const auto a = RunOnce(77, 5);
  const auto b = RunOnce(77, 5);
  ASSERT_EQ(a.analyses.size(), b.analyses.size());
  EXPECT_EQ(a.counts.strict, b.counts.strict);
  EXPECT_EQ(a.counts.relaxed, b.counts.relaxed);
  EXPECT_EQ(a.counts.skipped, b.counts.skipped);
  for (std::size_t i = 0; i < a.analyses.size(); ++i) {
    const auto& x = a.analyses[i];
    const auto& y = b.analyses[i];
    ASSERT_EQ(x.block, y.block);
    ASSERT_EQ(x.short_series.values.size(), y.short_series.values.size());
    for (std::size_t s = 0; s < x.short_series.values.size(); ++s) {
      ASSERT_EQ(x.short_series.values[s], y.short_series.values[s])
          << "block " << i << " sample " << s;
    }
    EXPECT_EQ(x.diurnal.classification, y.diurnal.classification);
    EXPECT_EQ(x.down_rounds, y.down_rounds);
  }
}

TEST(Determinism, DifferentSiteSeedsDifferentNoise) {
  const auto a = RunOnce(77, 5);
  const auto b = RunOnce(77, 6);
  ASSERT_EQ(a.analyses.size(), b.analyses.size());
  // Same world, different observation noise: series must differ
  // somewhere, while aggregate conclusions stay close.
  bool any_difference = false;
  for (std::size_t i = 0; i < a.analyses.size() && !any_difference; ++i) {
    if (a.analyses[i].short_series.values !=
        b.analyses[i].short_series.values) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
  EXPECT_NEAR(static_cast<double>(a.counts.strict),
              static_cast<double>(b.counts.strict),
              std::max<double>(4.0, 0.3 * a.counts.strict));
}

TEST(Determinism, WorldMinBlocksPerCountryHonored) {
  sim::WorldConfig config;
  config.total_blocks = 500;
  config.min_blocks_per_country = 25;
  const auto world = sim::SimWorld::Generate(config);
  std::map<std::string_view, int> per_country;
  for (const auto& block : world.blocks()) {
    ++per_country[block.country->code];
  }
  for (const auto& [code, count] : per_country) {
    EXPECT_GE(count, 25) << code;
  }
}

}  // namespace
}  // namespace sleepwalk
