// Shared bench scaffolding: scale knobs, world -> pipeline plumbing, and
// uniform experiment headers.
//
// Every bench prints the paper row/series it regenerates. Scale defaults
// are laptop-sized; set SLEEPWALK_BLOCKS / SLEEPWALK_DAYS to push toward
// paper scale (3.7M blocks, 35 days).
#ifndef SLEEPWALK_BENCH_COMMON_H_
#define SLEEPWALK_BENCH_COMMON_H_

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "sleepwalk/core/pipeline.h"
#include "sleepwalk/sim/survey.h"
#include "sleepwalk/sim/world.h"

namespace sleepwalk::bench {

inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::max(1, std::atoi(value));
}

inline int BlocksScale(int fallback) {
  return EnvInt("SLEEPWALK_BLOCKS", fallback);
}

inline int DaysScale(int fallback) { return EnvInt("SLEEPWALK_DAYS", fallback); }

inline void PrintHeader(const std::string& experiment,
                        const std::string& paper_claim) {
  std::cout << "==============================================================\n"
            << experiment << "\n"
            << "paper: " << paper_claim << "\n"
            << "==============================================================\n";
}

/// Historical prior for a block: daytime availability with a little
/// error, as the paper seeds estimators from years-old survey data.
inline core::BlockTarget TargetFor(const sim::WorldBlock& block) {
  const double prior = std::clamp(
      sim::TrueAvailability(block.spec, 13 * 3600) + 0.05, 0.1, 1.0);
  return {block.spec.block, sim::EverActiveOctets(block.spec), prior};
}

/// Runs the full A_12w-style campaign over a world from one site.
inline core::DatasetResult RunWorldCampaign(
    const sim::SimWorld& world, int days, std::uint64_t site_seed,
    const core::AnalyzerConfig& config = {}) {
  auto transport = world.MakeTransport(site_seed);
  std::vector<core::BlockTarget> targets;
  targets.reserve(world.blocks().size());
  for (const auto& block : world.blocks()) {
    targets.push_back(TargetFor(block));
  }
  const probing::RoundScheduler scheduler{config.schedule};
  return core::RunCampaign(std::move(targets), *transport,
                           scheduler.RoundsForDays(days), config,
                           /*seed=*/site_seed ^ 0x5a5a);
}

}  // namespace sleepwalk::bench

#endif  // SLEEPWALK_BENCH_COMMON_H_
