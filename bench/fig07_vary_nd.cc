// Figure 7: detection accuracy vs the number of diurnal addresses n_d
// (2%..67% of responsive addresses), with 50 always-on addresses and no
// phase/duration noise.
//
// Paper: accuracy climbs quickly; above ~10 diurnal addresses (17% of
// responsive) accuracy exceeds 85%. Misses at small n_d happen because
// probing usually hits a stable address and stops.
#include <iostream>

#include "controlled.h"

int main() {
  using namespace sleepwalk;
  bench::PrintHeader(
      "Figure 7: accuracy vs number of diurnal addresses (n_d)",
      ">85% accuracy once n_d >= 10 of 50 stable (Phi = sigma_s = "
      "sigma_d = 0)");

  report::TextTable table{{"n_d", "accuracy (median)", "q1", "q3"}};
  for (const int n_d : {1, 2, 5, 10, 20, 40, 70, 100}) {
    bench::ControlledParams params;
    params.n_diurnal = n_d;
    const auto point = bench::RunSweepPoint(params, 0x0700 + n_d);
    bench::PrintSweepRow(table, std::to_string(n_d), point);
  }
  table.Print(std::cout);
  std::cout << "(n_d = 10 is 17% of the 60 responsive addresses at "
               "night; paper's threshold for >85% accuracy)\n";
  return 0;
}
