// Figures 1-3: representative sample blocks.
//
//   Fig 1: sparse, high-availability block (42 ever-active, A = 0.735)
//          with an injected outage; flat FFT.
//   Fig 2: dense, low-availability block (|E(b)| = 245, A = 0.191),
//          ~5 probes/round.
//   Fig 3: diurnal block (|E(b)| = 256-ish, A = 0.598); 14 daily bumps
//          and a strong FFT peak at k = 14.
//
// For each block we print the true A vs A-hat_s vs A-hat_o series, the
// probes/round, and the FFT amplitude of A-hat_s.
#include <iostream>

#include "common.h"
#include "sleepwalk/core/block_analyzer.h"
#include "sleepwalk/fft/spectrum.h"
#include "sleepwalk/report/chart.h"
#include "sleepwalk/report/table.h"
#include "sleepwalk/stats/descriptive.h"

namespace sleepwalk {
namespace {

struct SampleResult {
  core::BlockAnalysis analysis;
  std::vector<double> truth;
  double mean_true = 0.0;
};

SampleResult RunSample(const sim::BlockSpec& spec, int days,
                       const char* title, const char* paper_line) {
  bench::PrintHeader(title, paper_line);

  core::AnalyzerConfig config;
  const probing::RoundScheduler scheduler{config.schedule};
  const auto n_rounds = scheduler.RoundsForDays(days);

  sim::SimTransport transport{0xf161};
  transport.AddBlock(&spec);
  core::BlockAnalyzer analyzer{spec.block, sim::EverActiveOctets(spec),
                               sim::TrueAvailability(spec, 13 * 3600),
                               0x5eed, config};
  analyzer.RunCampaign(transport, n_rounds);

  SampleResult result;
  result.analysis = analyzer.Finish();
  result.truth = sim::TrueAvailabilitySeries(spec, scheduler, n_rounds);
  result.mean_true = stats::Mean(result.truth);

  std::cout << "block " << spec.block.ToString() << ": |E(b)| = "
            << spec.EverActiveCount()
            << ", mean true A = " << report::Fixed(result.mean_true, 3)
            << ", mean A-hat_s = "
            << report::Fixed(result.analysis.mean_short, 3)
            << ", probes/round = "
            << report::Fixed(result.analysis.mean_probes_per_round, 2)
            << " (" << report::Fixed(
                   result.analysis.mean_probes_per_round * 60.0 / 11.0, 1)
            << "/hour)\n";

  report::PrintTwoSeries(std::cout, result.truth,
                         result.analysis.short_series.values, 78, 12,
                         "true A (*) vs estimated A-hat_s (o)");

  if (!result.analysis.outage_starts.empty()) {
    std::cout << "outage verdicts begin at rounds:";
    for (const auto round : result.analysis.outage_starts) {
      std::cout << ' ' << round;
    }
    std::cout << "\n";
  }

  const auto spectrum =
      fft::ComputeSpectrum(result.analysis.short_series.values);
  std::vector<double> amplitudes(
      spectrum.amplitude.begin(),
      spectrum.amplitude.begin() +
          std::min<std::size_t>(spectrum.size(), 80));
  if (!amplitudes.empty()) amplitudes[0] = 0.0;  // DC off the plot
  report::PrintSeries(std::cout, amplitudes, 78, 10,
                      "FFT amplitude of A-hat_s, bins 0..79 (N_d = " +
                          std::to_string(result.analysis.observed_days) +
                          ")");
  const auto& diurnal = result.analysis.diurnal;
  std::cout << "classification: "
            << (diurnal.IsStrict() ? "strictly diurnal"
                : diurnal.IsDiurnal() ? "relaxed diurnal"
                                      : "non-diurnal")
            << " (strongest bin " << diurnal.strongest_bin << " = "
            << report::Fixed(diurnal.strongest_cycles_per_day, 2)
            << " cycles/day)\n\n";
  return result;
}

}  // namespace
}  // namespace sleepwalk

int main() {
  using namespace sleepwalk;

  // Fig 1: sparse but high-availability block, with an outage near
  // round 957 (the paper's example block 1.9.21/24).
  sim::BlockSpec sparse;
  sparse.block = *net::Prefix24::Parse("1.9.21/24");
  sparse.seed = 0x0101;
  sparse.n_always = 42;
  sparse.response_prob = 0.735F;
  sparse.outage_start_sec = 957 * 660;
  sparse.outage_end_sec = 975 * 660;
  const auto fig1 = RunSample(
      sparse, 14, "Figure 1: sparse, high-availability block",
      "42 ever-active, A = 0.735; outage at round 957; flat spectrum");

  // Fig 2: dense but low-availability block (93.208.233/24).
  sim::BlockSpec dense;
  dense.block = *net::Prefix24::Parse("93.208.233/24");
  dense.seed = 0x0202;
  dense.n_always = 4;
  dense.n_intermittent = 241;
  dense.intermittent_duty = 0.17F;
  dense.response_prob = 0.95F;
  const auto fig2 = RunSample(
      dense, 14, "Figure 2: dense, low-availability block",
      "|E(b)| = 245, A = 0.191, mean 5.08 probes/round, non-diurnal");

  // Fig 3: diurnal block (27.186.9/24), 14 daily bumps.
  sim::BlockSpec diurnal;
  diurnal.block = *net::Prefix24::Parse("27.186.9/24");
  diurnal.seed = 0x0303;
  diurnal.n_always = 80;
  diurnal.n_diurnal = 174;
  diurnal.response_prob = 0.92F;
  diurnal.on_start_sec = 1.0F * 3600.0F;   // local morning in UTC (CN)
  diurnal.on_duration_sec = 10.0F * 3600.0F;
  diurnal.phase_spread_sec = 2.5F * 3600.0F;
  diurnal.sigma_start_sec = 0.7F * 3600.0F;
  diurnal.sigma_duration_sec = 1.0F * 3600.0F;
  const auto fig3 = RunSample(
      diurnal, 14, "Figure 3: diurnal block",
      "|E(b)| = 256, A = 0.598; strong daily FFT peak at k = 14");

  // Summary row mirroring the three figure captions.
  report::TextTable table{{"figure", "block", "|E(b)|", "true A",
                           "A-hat_s", "probes/rnd", "class"}};
  const auto row = [&table](const char* fig, const SampleResult& r,
                            int ever_active) {
    const auto& d = r.analysis.diurnal;
    table.AddRow({fig, r.analysis.block.ToString(),
                  std::to_string(ever_active),
                  report::Fixed(r.mean_true, 3),
                  report::Fixed(r.analysis.mean_short, 3),
                  report::Fixed(r.analysis.mean_probes_per_round, 2),
                  d.IsStrict() ? "diurnal" : d.IsDiurnal() ? "relaxed"
                                                           : "non-diurnal"});
  };
  row("Fig 1", fig1, 42);
  row("Fig 2", fig2, 245);
  row("Fig 3", fig3, 254);
  table.Print(std::cout);
  return 0;
}
