// Figures 12-13: world maps on a 2x2-degree grid.
//
//   Fig 12: number of observable (geolocatable) blocks per cell —
//           concentrated in North America, Europe, Japan, China; with
//           country-centroid geolocation anomalies visible in Brazil,
//           Russia, Australia.
//   Fig 13: percent of observable blocks per cell that are diurnal —
//           low in the US / W. Europe / Japan, high in Asia, Eastern
//           Europe, South America.
#include <iostream>

#include "common.h"
#include "sleepwalk/geo/geodb.h"
#include "sleepwalk/geo/grid.h"
#include "sleepwalk/report/chart.h"
#include "sleepwalk/report/csv.h"
#include "sleepwalk/report/image.h"
#include "sleepwalk/report/table.h"

int main() {
  using namespace sleepwalk;
  const int n_blocks = bench::BlocksScale(4000);
  const int days = bench::DaysScale(10);
  bench::PrintHeader(
      "Figures 12-13: where the Internet sleeps (2x2-degree grid)",
      "blocks mass in N.America/Europe/E.Asia; diurnal fraction high in "
      "Asia, E.Europe, S.America; low in US/W.Europe/Japan");

  sim::WorldConfig config;
  config.total_blocks = n_blocks;
  config.seed = 0x3a95;
  const auto world = sim::SimWorld::Generate(config);
  const auto geodb = geo::GeoDatabase::FromTruth(world.TrueLocations(),
                                                 geo::GeoDatabase::Options{});
  const auto result = bench::RunWorldCampaign(world, days, 0x3a95);

  geo::GeoGrid grid{2.0};
  std::int64_t located = 0;
  for (std::size_t i = 0; i < world.blocks().size(); ++i) {
    const auto& analysis = result.analyses[i];
    if (!analysis.probed || analysis.observed_days < 2) continue;
    const auto* record = geodb.Lookup(world.blocks()[i].spec.block);
    if (record == nullptr) continue;  // the paper's ~7% unlocatable
    ++located;
    grid.Add(record->latitude, record->longitude,
             analysis.diurnal.IsStrict());
  }

  std::cout << "geolocatable measured blocks: "
            << report::WithCommas(located) << " of "
            << report::WithCommas(
                   static_cast<long long>(world.blocks().size()))
            << " (paper: 3.45M of 3.7M, 93%)\n\n";

  report::PrintDensityGrid(
      std::cout, grid.Coarsen(24, 72, /*fractions=*/false),
      "Fig 12: observable blocks per cell (darker = more blocks)");
  std::cout << "\n";
  report::PrintDensityGrid(
      std::cout, grid.Coarsen(24, 72, /*fractions=*/true),
      "Fig 13: fraction diurnal per cell (darker = more diurnal)");

  // Full-resolution grayscale maps, as in the paper's figures.
  if (const auto base = report::CsvPathFor("fig12_blocks.pgm");
      !base.empty()) {
    // 2x2-degree grid rows run south-to-north: flip for image layout.
    const auto counts = grid.Coarsen(grid.rows(), grid.cols(), false);
    report::GrayImage::FromGrid(counts, /*flip_rows=*/true, /*gamma=*/0.4)
        .WritePgm(base);
    const auto fractions = grid.Coarsen(grid.rows(), grid.cols(), true);
    report::GrayImage::FromGrid(fractions, /*flip_rows=*/true, 1.0)
        .WritePgm(report::CsvPathFor("fig13_diurnal.pgm"));
    std::cout << "\n(PGM world maps written to $SLEEPWALK_CSV_DIR)\n";
  }

  // Quantify the visual claim with a few marquee cells.
  report::TextTable table{{"area", "lat", "lon", "blocks", "diurnal"}};
  struct Spot {
    const char* name;
    double lat, lon;
  };
  for (const auto& spot :
       {Spot{"US east", 40.0, -80.0}, Spot{"W. Europe", 50.0, 8.0},
        Spot{"Japan", 36.0, 138.0}, Spot{"China east", 34.0, 114.0},
        Spot{"Brazil", -14.0, -52.0}, Spot{"E. Europe", 50.0, 30.0}}) {
    // Aggregate a 10x10-degree neighbourhood around the spot.
    std::int64_t total = 0;
    std::int64_t diurnal = 0;
    for (int dr = -2; dr <= 2; ++dr) {
      for (int dc = -2; dc <= 2; ++dc) {
        const auto row = static_cast<std::size_t>(
            (spot.lat + 90.0) / 2.0 + dr);
        const auto col = static_cast<std::size_t>(
            (spot.lon + 180.0) / 2.0 + dc);
        if (row >= grid.rows() || col >= grid.cols()) continue;
        total += grid.TotalAt(row, col);
        diurnal += grid.DiurnalAt(row, col);
      }
    }
    table.AddRow({spot.name, report::Fixed(spot.lat, 0),
                  report::Fixed(spot.lon, 0), report::WithCommas(total),
                  total > 0 ? report::Percent(
                                  static_cast<double>(diurnal) /
                                      static_cast<double>(total), 1)
                            : "-"});
  }
  table.Print(std::cout);
  return 0;
}
