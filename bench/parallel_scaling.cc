// Parallel campaign scaling: blocks/sec of the sharded executor at 1, 2,
// 4, and 8 workers over one simulated world, plus the determinism check
// that makes the parallelism admissible at all (workers-1 and workers-8
// datasets must be byte-identical).
//
// Writes BENCH_parallel.json (override the path with
// SLEEPWALK_BENCH_PARALLEL_OUT, empty string to skip). The committed
// copy at the repo root is the baseline scripts/bench_gate.sh compares
// against in CI; regenerate it on quiet hardware with
//   SLEEPWALK_BENCH_PARALLEL_OUT=BENCH_parallel.json build/bench/parallel_scaling
//
// Scaling expectations are hardware-relative: the gate reasons about the
// workers:2 / workers:1 ratio and only expects 8-worker speedup when the
// host actually has 8 cores, so the JSON records hw_concurrency.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common.h"
#include "sleepwalk/core/dataset.h"
#include "sleepwalk/core/parallel_executor.h"
#include "sleepwalk/core/supervisor.h"
#include "sleepwalk/net/instrumented_transport.h"
#include "sleepwalk/sim/world.h"

namespace sleepwalk {
namespace {

/// Worker chain: a private, identically seeded simulated transport per
/// worker (the executor's interchangeability contract).
class BenchChain final : public core::ShardChain {
 public:
  BenchChain(const sim::SimWorld& world, std::uint64_t site_seed)
      : transport_{world.MakeTransport(site_seed)},
        instrumented_{*transport_, obs::Context{}} {}

  net::Transport& transport() override { return instrumented_; }
  void AttachObs(const obs::Context& context) override {
    instrumented_.AttachObs(context);
  }
  report::ProbeAccounting accounting() const override {
    return instrumented_.accounting();
  }

 private:
  std::unique_ptr<sim::SimTransport> transport_;
  net::InstrumentedTransport instrumented_;
};

struct RunResult {
  double blocks_per_sec = 0.0;
  core::CampaignOutcome outcome;
};

RunResult RunAt(const sim::SimWorld& world,
                const std::vector<core::BlockTarget>& targets,
                std::int64_t n_rounds, int workers) {
  core::SupervisorConfig config;
  config.seed = 1;
  const core::ShardFactory factory = [&world](std::size_t) {
    return std::make_unique<BenchChain>(world, 0x9e3779b9ULL + 1);
  };
  core::ParallelConfig parallel;
  parallel.workers = workers;
  RunResult result;
  double best_sec = 0.0;
  constexpr int kRepeats = 2;  // best-of to damp scheduler noise
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    auto copy = targets;
    const auto start = std::chrono::steady_clock::now();
    auto outcome = core::RunParallelCampaign(std::move(copy), factory,
                                             n_rounds, config, parallel);
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (repeat == 0 || sec < best_sec) best_sec = sec;
    result.outcome = std::move(outcome);
  }
  result.blocks_per_sec =
      best_sec > 0.0 ? static_cast<double>(targets.size()) / best_sec : 0.0;
  return result;
}

std::string DatasetBytes(const core::CampaignOutcome& outcome,
                         const std::string& tag) {
  core::AnalyzerConfig analyzer;
  const std::string path = "parallel_scaling_" + tag + ".slpw.tmp";
  if (!core::WriteDataset(path, outcome.result.analyses,
                          analyzer.schedule.round_seconds,
                          analyzer.schedule.epoch_sec)) {
    return {};
  }
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

int Run() {
  const int blocks = bench::BlocksScale(400);
  const int days = bench::DaysScale(2);
  sim::WorldConfig world_config;
  world_config.total_blocks = blocks;
  world_config.seed = 42;
  const auto world = sim::SimWorld::Generate(world_config);

  std::vector<core::BlockTarget> targets;
  targets.reserve(world.blocks().size());
  for (const auto& block : world.blocks()) {
    targets.push_back(bench::TargetFor(block));
  }
  core::AnalyzerConfig analyzer;
  const probing::RoundScheduler scheduler{analyzer.schedule};
  const auto n_rounds = scheduler.RoundsForDays(days);

  bench::PrintHeader(
      "parallel_scaling: sharded executor throughput",
      "internal CI gate (not a paper figure): N-worker campaigns are "
      "byte-identical and faster");
  std::cout << "blocks " << targets.size() << ", rounds/block " << n_rounds
            << ", hw_concurrency " << core::HardwareWorkers() << "\n";

  const int worker_counts[] = {1, 2, 4, 8};
  double bps[4] = {};
  std::string dataset_one;
  std::string dataset_eight;
  for (int i = 0; i < 4; ++i) {
    const auto result = RunAt(world, targets, n_rounds, worker_counts[i]);
    bps[i] = result.blocks_per_sec;
    std::cout << "workers " << worker_counts[i] << ": "
              << static_cast<long>(bps[i]) << " blocks/sec\n";
    if (worker_counts[i] == 1) {
      dataset_one = DatasetBytes(result.outcome, "w1");
    } else if (worker_counts[i] == 8) {
      dataset_eight = DatasetBytes(result.outcome, "w8");
    }
  }

  const bool equivalent =
      !dataset_one.empty() && dataset_one == dataset_eight;
  const double speedup_2v1 = bps[0] > 0.0 ? bps[1] / bps[0] : 0.0;
  const double speedup_8v1 = bps[0] > 0.0 ? bps[3] / bps[0] : 0.0;
  std::cout << "speedup 2v1 " << speedup_2v1 << ", 8v1 " << speedup_8v1
            << ", workers-1 vs workers-8 datasets "
            << (equivalent ? "byte-identical" : "DIFFER") << "\n";

  std::string path = "BENCH_parallel.json";
  if (const char* env = std::getenv("SLEEPWALK_BENCH_PARALLEL_OUT")) {
    path = env;
  }
  if (!path.empty()) {
    std::ofstream out{path, std::ios::trunc};
    out << "{\n"
        << "  \"bench\": \"parallel_campaign_scaling\",\n"
        << "  \"blocks\": " << targets.size() << ",\n"
        << "  \"rounds_per_block\": " << n_rounds << ",\n"
        << "  \"hw_concurrency\": " << core::HardwareWorkers() << ",\n"
        << "  \"blocks_per_sec\": {\n"
        << "    \"1\": " << bps[0] << ",\n"
        << "    \"2\": " << bps[1] << ",\n"
        << "    \"4\": " << bps[2] << ",\n"
        << "    \"8\": " << bps[3] << "\n"
        << "  },\n"
        << "  \"speedup_2v1\": " << speedup_2v1 << ",\n"
        << "  \"speedup_8v1\": " << speedup_8v1 << ",\n"
        << "  \"equivalent\": " << (equivalent ? "true" : "false") << "\n"
        << "}\n";
    if (!out) {
      std::cerr << "parallel_scaling: cannot write " << path << "\n";
      return 1;
    }
    std::cout << "wrote " << path << "\n";
  }
  return equivalent ? 0 : 1;
}

}  // namespace
}  // namespace sleepwalk

int main() { return sleepwalk::Run(); }
