// Parallel campaign scaling, at two scales:
//
//   small  (417 blocks, full pipeline): blocks/sec of the sharded
//          executor at 1/2/4/8 workers over one simulated world, plus
//          the determinism check that makes the parallelism admissible
//          at all (workers-1 and workers-8 datasets byte-identical);
//   large  (100k blocks by default, SLEEPWALK_BLOCKS_LARGE to change):
//          blocks/sec of the columnar store campaign
//          (core/store_campaign.h) at 1 and 8 workers — the estimator
//          kernel that dominates at paper scale — plus the paper-scale
//          durability story: checkpointing tax against an unchecked
//          run, and a mid-run kill resumed at a different worker count
//          that must converge on a byte-identical final snapshot
//          (`resume_identical`).
//
// Writes BENCH_parallel.json (override the path with
// SLEEPWALK_BENCH_PARALLEL_OUT, empty string to skip). The committed
// copy at the repo root is the baseline scripts/bench_gate.sh compares
// against in CI; regenerate it on quiet multi-core hardware with
//   SLEEPWALK_BENCH_PARALLEL_OUT=BENCH_parallel.json build/bench/parallel_scaling
//
// Scaling expectations are hardware-relative, so the JSON records
// hw_concurrency — and `hw_source`, because a containerized recording
// box may expose fewer CPUs than the campaign machines the baseline
// stands for: SLEEPWALK_BENCH_HW=<n> overrides the detected count
// (hw_source becomes "env-override") so the committed baseline can
// state the hardware class its ratios were tuned for. bench_gate.sh
// refuses baselines recorded with hw_concurrency 1 outright.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common.h"
#include "sleepwalk/core/dataset.h"
#include "sleepwalk/core/parallel_executor.h"
#include "sleepwalk/core/store_campaign.h"
#include "sleepwalk/core/supervisor.h"
#include "sleepwalk/net/instrumented_transport.h"
#include "sleepwalk/sim/world.h"
#include "sleepwalk/storage/file.h"

namespace sleepwalk {
namespace {

/// Worker chain: a private, identically seeded simulated transport per
/// worker (the executor's interchangeability contract).
class BenchChain final : public core::ShardChain {
 public:
  BenchChain(const sim::SimWorld& world, std::uint64_t site_seed)
      : transport_{world.MakeTransport(site_seed)},
        instrumented_{*transport_, obs::Context{}} {}

  net::Transport& transport() override { return instrumented_; }
  void AttachObs(const obs::Context& context) override {
    instrumented_.AttachObs(context);
  }
  report::ProbeAccounting accounting() const override {
    return instrumented_.accounting();
  }

 private:
  std::unique_ptr<sim::SimTransport> transport_;
  net::InstrumentedTransport instrumented_;
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct RunResult {
  double blocks_per_sec = 0.0;
  core::CampaignOutcome outcome;
};

RunResult RunAt(const sim::SimWorld& world,
                const std::vector<core::BlockTarget>& targets,
                std::int64_t n_rounds, int workers) {
  core::SupervisorConfig config;
  config.seed = 1;
  const core::ShardFactory factory = [&world](std::size_t) {
    return std::make_unique<BenchChain>(world, 0x9e3779b9ULL + 1);
  };
  core::ParallelConfig parallel;
  parallel.workers = workers;
  RunResult result;
  double best_sec = 0.0;
  constexpr int kRepeats = 2;  // best-of to damp scheduler noise
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    auto copy = targets;
    const auto start = std::chrono::steady_clock::now();
    auto outcome = core::RunParallelCampaign(std::move(copy), factory,
                                             n_rounds, config, parallel);
    const double sec = SecondsSince(start);
    if (repeat == 0 || sec < best_sec) best_sec = sec;
    result.outcome = std::move(outcome);
  }
  result.blocks_per_sec =
      best_sec > 0.0 ? static_cast<double>(targets.size()) / best_sec : 0.0;
  return result;
}

std::string DatasetBytes(const core::CampaignOutcome& outcome,
                         const std::string& tag) {
  core::AnalyzerConfig analyzer;
  const std::string path = "parallel_scaling_" + tag + ".slpw.tmp";
  if (!core::WriteDataset(path, outcome.result.analyses,
                          analyzer.schedule.round_seconds,
                          analyzer.schedule.epoch_sec)) {
    return {};
  }
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

// --- small scale: the full measurement pipeline ------------------------

struct SmallScale {
  std::size_t blocks = 0;
  std::int64_t rounds = 0;
  double bps[4] = {};
  double speedup_2v1 = 0.0;
  double speedup_8v1 = 0.0;
  bool equivalent = false;
};

SmallScale RunSmall() {
  SmallScale result;
  const int blocks = bench::BlocksScale(400);
  const int days = bench::DaysScale(2);
  sim::WorldConfig world_config;
  world_config.total_blocks = blocks;
  world_config.seed = 42;
  const auto world = sim::SimWorld::Generate(world_config);

  std::vector<core::BlockTarget> targets;
  targets.reserve(world.blocks().size());
  for (const auto& block : world.blocks()) {
    targets.push_back(bench::TargetFor(block));
  }
  core::AnalyzerConfig analyzer;
  const probing::RoundScheduler scheduler{analyzer.schedule};
  result.rounds = scheduler.RoundsForDays(days);
  result.blocks = targets.size();

  std::cout << "[small] blocks " << result.blocks << ", rounds/block "
            << result.rounds << " (full pipeline)\n";
  const int worker_counts[] = {1, 2, 4, 8};
  std::string dataset_one;
  std::string dataset_eight;
  for (int i = 0; i < 4; ++i) {
    const auto run = RunAt(world, targets, result.rounds, worker_counts[i]);
    result.bps[i] = run.blocks_per_sec;
    std::cout << "[small] workers " << worker_counts[i] << ": "
              << static_cast<long>(result.bps[i]) << " blocks/sec\n";
    if (worker_counts[i] == 1) {
      dataset_one = DatasetBytes(run.outcome, "w1");
    } else if (worker_counts[i] == 8) {
      dataset_eight = DatasetBytes(run.outcome, "w8");
    }
  }
  result.equivalent = !dataset_one.empty() && dataset_one == dataset_eight;
  result.speedup_2v1 =
      result.bps[0] > 0.0 ? result.bps[1] / result.bps[0] : 0.0;
  result.speedup_8v1 =
      result.bps[0] > 0.0 ? result.bps[3] / result.bps[0] : 0.0;
  std::cout << "[small] speedup 2v1 " << result.speedup_2v1 << ", 8v1 "
            << result.speedup_8v1 << ", workers-1 vs workers-8 datasets "
            << (result.equivalent ? "byte-identical" : "DIFFER") << "\n";
  return result;
}

// --- large scale: the columnar store campaign --------------------------

struct LargeScale {
  std::size_t blocks = 0;
  std::int64_t rounds = 0;
  double bps_1 = 0.0;
  double bps_8 = 0.0;
  double speedup_8v1 = 0.0;
  double durability_overhead_pct = 0.0;
  bool durability_within_budget = false;
  bool resume_identical = false;
};

core::StoreCampaignConfig LargeConfig(std::size_t blocks,
                                      std::int64_t rounds) {
  core::StoreCampaignConfig config;
  config.n_blocks = blocks;
  config.n_rounds = rounds;
  config.seed = 0x5ca1e;
  return config;
}

double TimeStoreRun(core::StoreCampaignConfig config,
                    core::StoreCampaignOutcome* out = nullptr) {
  double best_sec = 0.0;
  constexpr int kRepeats = 2;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    // A checkpointing config needs a virgin disk per repeat: reusing
    // the env would let repeat 2 resume from repeat 1's snapshot and
    // time a near-empty run.
    storage::MemEnv scratch;
    if (!config.checkpoint_path.empty()) config.env = &scratch;
    core::BlockStore store;
    const auto start = std::chrono::steady_clock::now();
    auto outcome = core::RunStoreCampaign(store, config);
    const double sec = SecondsSince(start);
    if (!outcome.error.empty()) {
      std::cerr << "parallel_scaling: store campaign failed: "
                << outcome.error << "\n";
      std::exit(1);
    }
    if (repeat == 0 || sec < best_sec) best_sec = sec;
    if (out != nullptr) *out = outcome;
  }
  return best_sec;
}

LargeScale RunLarge() {
  LargeScale result;
  result.blocks = static_cast<std::size_t>(
      bench::EnvInt("SLEEPWALK_BLOCKS_LARGE", 100'000));
  // Snapshot cadence: one v3 image every 512 rounds. A checkpoint
  // stride has to buy enough estimator work to amortize the ~10 MB
  // snapshot encode+write, the same trade a real campaign makes (a
  // round is minutes of probing there; here the synthetic kernel runs
  // a round in ~2 ms at 100k blocks).
  result.rounds = 1024;
  constexpr std::int64_t kCheckpointStride = 512;
  constexpr double kDurabilityBudgetPct = 10.0;
  std::cout << "[large] blocks " << result.blocks << ", rounds "
            << result.rounds << " (columnar store campaign)\n";

  // Throughput, unchecked (pure kernel): 1 vs 8 workers.
  core::StoreCampaignOutcome outcome_1;
  auto config = LargeConfig(result.blocks, result.rounds);
  config.workers = 1;
  const double sec_1 = TimeStoreRun(config, &outcome_1);
  result.bps_1 = sec_1 > 0.0 ? static_cast<double>(result.blocks) / sec_1
                             : 0.0;
  std::cout << "[large] workers 1: " << static_cast<long>(result.bps_1)
            << " blocks/sec\n";

  core::StoreCampaignOutcome outcome_8;
  config.workers = 8;
  const double sec_8 = TimeStoreRun(config, &outcome_8);
  result.bps_8 = sec_8 > 0.0 ? static_cast<double>(result.blocks) / sec_8
                             : 0.0;
  result.speedup_8v1 = result.bps_1 > 0.0 ? result.bps_8 / result.bps_1 : 0.0;
  std::cout << "[large] workers 8: " << static_cast<long>(result.bps_8)
            << " blocks/sec (speedup 8v1 " << result.speedup_8v1 << ")\n";
  if (outcome_8.digest != outcome_1.digest) {
    std::cerr << "parallel_scaling: 8-worker store digest diverged\n";
    std::exit(1);
  }

  // Durability tax: the same campaign with v3 snapshots at the stride
  // against an unchecked run (MemEnv: measures serialization, not disk;
  // TimeStoreRun swaps in a fresh env per repeat).
  const std::string path = "/bench/store.slck";
  auto checked = LargeConfig(result.blocks, result.rounds);
  checked.workers = 1;
  checked.checkpoint_path = path;
  checked.checkpoint_every_rounds = kCheckpointStride;
  const double sec_checked = TimeStoreRun(checked);
  result.durability_overhead_pct =
      sec_1 > 0.0 ? (sec_checked - sec_1) / sec_1 * 100.0 : 0.0;
  result.durability_within_budget =
      result.durability_overhead_pct < kDurabilityBudgetPct;
  std::cout << "[large] durability tax "
            << result.durability_overhead_pct << "% (budget < "
            << kDurabilityBudgetPct << "%)\n";

  // Kill/resume proof: kill a 1-worker run at the half-way boundary,
  // resume at 8 workers, demand the final snapshot match a clean run's
  // byte for byte.
  storage::MemEnv clean_env;
  auto clean = checked;
  clean.env = &clean_env;
  core::BlockStore clean_store;
  if (const auto out = core::RunStoreCampaign(clean_store, clean);
      !out.error.empty()) {
    std::cerr << "parallel_scaling: clean reference failed: " << out.error
              << "\n";
    std::exit(1);
  }
  std::vector<std::uint8_t> clean_file;
  (void)clean_env.ReadAll(path, clean_file);

  storage::MemEnv kill_env;
  auto killed = checked;
  killed.env = &kill_env;
  killed.stop_after_rounds = result.rounds / 2;
  core::BlockStore killed_store;
  const auto kill_out = core::RunStoreCampaign(killed_store, killed);
  killed.stop_after_rounds = 0;
  killed.workers = 8;
  core::BlockStore resumed_store;
  const auto resume_out = core::RunStoreCampaign(resumed_store, killed);
  std::vector<std::uint8_t> resumed_file;
  (void)kill_env.ReadAll(path, resumed_file);
  result.resume_identical = kill_out.stopped_early && resume_out.resumed &&
                            !clean_file.empty() &&
                            resumed_file == clean_file;
  std::cout << "[large] kill at round " << result.rounds / 2
            << ", resume 1 -> 8 workers: "
            << (result.resume_identical ? "byte-identical" : "DIFFER")
            << "\n";
  return result;
}

int BenchHardwareConcurrency(std::string& source) {
  if (const char* env = std::getenv("SLEEPWALK_BENCH_HW");
      env != nullptr && *env != '\0') {
    const int value = std::atoi(env);
    if (value > 0) {
      source = "env-override";
      return value;
    }
  }
  source = "detected";
  return core::HardwareWorkers();
}

int Run() {
  bench::PrintHeader(
      "parallel_scaling: multi-scale executor + store throughput",
      "internal CI gate (not a paper figure): N-worker campaigns are "
      "byte-identical and faster, at 400 and 100k blocks");
  std::string hw_source;
  const int hw = BenchHardwareConcurrency(hw_source);
  std::cout << "hw_concurrency " << hw << " (" << hw_source << ")\n";

  const auto small = RunSmall();
  const auto large = RunLarge();

  std::string path = "BENCH_parallel.json";
  if (const char* env = std::getenv("SLEEPWALK_BENCH_PARALLEL_OUT")) {
    path = env;
  }
  if (!path.empty()) {
    std::ofstream out{path, std::ios::trunc};
    out << "{\n"
        << "  \"bench\": \"parallel_campaign_scaling\",\n"
        << "  \"hw_concurrency\": " << hw << ",\n"
        << "  \"hw_source\": \"" << hw_source << "\",\n"
        << "  \"scales\": {\n"
        << "    \"small\": {\n"
        << "      \"pipeline\": \"full\",\n"
        << "      \"blocks\": " << small.blocks << ",\n"
        << "      \"rounds_per_block\": " << small.rounds << ",\n"
        << "      \"blocks_per_sec\": {\n"
        << "        \"1\": " << small.bps[0] << ",\n"
        << "        \"2\": " << small.bps[1] << ",\n"
        << "        \"4\": " << small.bps[2] << ",\n"
        << "        \"8\": " << small.bps[3] << "\n"
        << "      },\n"
        << "      \"speedup_2v1\": " << small.speedup_2v1 << ",\n"
        << "      \"speedup_8v1\": " << small.speedup_8v1 << ",\n"
        << "      \"equivalent\": " << (small.equivalent ? "true" : "false")
        << "\n"
        << "    },\n"
        << "    \"large\": {\n"
        << "      \"pipeline\": \"store\",\n"
        << "      \"blocks\": " << large.blocks << ",\n"
        << "      \"rounds\": " << large.rounds << ",\n"
        << "      \"blocks_per_sec\": {\n"
        << "        \"1\": " << large.bps_1 << ",\n"
        << "        \"8\": " << large.bps_8 << "\n"
        << "      },\n"
        << "      \"speedup_8v1\": " << large.speedup_8v1 << ",\n"
        << "      \"durability_overhead_pct\": "
        << large.durability_overhead_pct << ",\n"
        << "      \"durability_within_budget\": "
        << (large.durability_within_budget ? "true" : "false") << ",\n"
        << "      \"resume_identical\": "
        << (large.resume_identical ? "true" : "false") << "\n"
        << "    }\n"
        << "  }\n"
        << "}\n";
    if (!out) {
      std::cerr << "parallel_scaling: cannot write " << path << "\n";
      return 1;
    }
    std::cout << "wrote " << path << "\n";
  }
  return small.equivalent && large.resume_identical ? 0 : 1;
}

}  // namespace
}  // namespace sleepwalk

int main() { return sleepwalk::Run(); }
