// Parallel campaign scaling, at two scales:
//
//   small  (417 blocks, full pipeline): blocks/sec of the sharded
//          executor at 1/2/4/8 workers over one simulated world, plus
//          the determinism check that makes the parallelism admissible
//          at all (workers-1 and workers-8 datasets byte-identical);
//   large  (100k blocks by default, SLEEPWALK_BLOCKS_LARGE to change —
//          the machine class the paper targets takes 1M+): the FULL
//          columnar pipeline on the block store (core/store_campaign.h
//          with series rings + the end-of-campaign classify sweep of
//          core/store_analyzer.h) at 1 and 8 workers, a separate
//          classify-only blocks/sec for the analyze sweep itself, peak
//          RSS against a scale-derived budget (`rss_within_budget`),
//          plus the paper-scale durability story: checkpointing tax
//          against an unchecked run, and a mid-run kill resumed at a
//          different worker count that must converge on a
//          byte-identical final snapshot (`resume_identical`) — the
//          snapshots now carrying series rings and verdicts, so the
//          identity proof covers classification too.
//
// Writes BENCH_parallel.json (override the path with
// SLEEPWALK_BENCH_PARALLEL_OUT, empty string to skip). The committed
// copy at the repo root is the baseline scripts/bench_gate.sh compares
// against in CI; regenerate it on quiet multi-core hardware with
//   SLEEPWALK_BENCH_PARALLEL_OUT=BENCH_parallel.json build/bench/parallel_scaling
//
// Scaling expectations are hardware-relative, so the JSON records
// hw_concurrency — and `hw_source`, because a containerized recording
// box may expose fewer CPUs than the campaign machines the baseline
// stands for: SLEEPWALK_BENCH_HW=<n> overrides the detected count
// (hw_source becomes "env-override") so the committed baseline can
// state the hardware class its ratios were tuned for. bench_gate.sh
// refuses baselines recorded with hw_concurrency 1 outright.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common.h"
#include "sleepwalk/core/dataset.h"
#include "sleepwalk/core/parallel_executor.h"
#include "sleepwalk/core/store_campaign.h"
#include "sleepwalk/core/supervisor.h"
#include "sleepwalk/net/instrumented_transport.h"
#include "sleepwalk/sim/world.h"
#include "sleepwalk/storage/file.h"

namespace sleepwalk {
namespace {

/// Worker chain: a private, identically seeded simulated transport per
/// worker (the executor's interchangeability contract).
class BenchChain final : public core::ShardChain {
 public:
  BenchChain(const sim::SimWorld& world, std::uint64_t site_seed)
      : transport_{world.MakeTransport(site_seed)},
        instrumented_{*transport_, obs::Context{}} {}

  net::Transport& transport() override { return instrumented_; }
  void AttachObs(const obs::Context& context) override {
    instrumented_.AttachObs(context);
  }
  report::ProbeAccounting accounting() const override {
    return instrumented_.accounting();
  }

 private:
  std::unique_ptr<sim::SimTransport> transport_;
  net::InstrumentedTransport instrumented_;
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct RunResult {
  double blocks_per_sec = 0.0;
  core::CampaignOutcome outcome;
};

RunResult RunAt(const sim::SimWorld& world,
                const std::vector<core::BlockTarget>& targets,
                std::int64_t n_rounds, int workers) {
  core::SupervisorConfig config;
  config.seed = 1;
  const core::ShardFactory factory = [&world](std::size_t) {
    return std::make_unique<BenchChain>(world, 0x9e3779b9ULL + 1);
  };
  core::ParallelConfig parallel;
  parallel.workers = workers;
  RunResult result;
  double best_sec = 0.0;
  constexpr int kRepeats = 2;  // best-of to damp scheduler noise
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    auto copy = targets;
    const auto start = std::chrono::steady_clock::now();
    auto outcome = core::RunParallelCampaign(std::move(copy), factory,
                                             n_rounds, config, parallel);
    const double sec = SecondsSince(start);
    if (repeat == 0 || sec < best_sec) best_sec = sec;
    result.outcome = std::move(outcome);
  }
  result.blocks_per_sec =
      best_sec > 0.0 ? static_cast<double>(targets.size()) / best_sec : 0.0;
  return result;
}

std::string DatasetBytes(const core::CampaignOutcome& outcome,
                         const std::string& tag) {
  core::AnalyzerConfig analyzer;
  const std::string path = "parallel_scaling_" + tag + ".slpw.tmp";
  if (!core::WriteDataset(path, outcome.result.analyses,
                          analyzer.schedule.round_seconds,
                          analyzer.schedule.epoch_sec)) {
    return {};
  }
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

// --- small scale: the full measurement pipeline ------------------------

struct SmallScale {
  std::size_t blocks = 0;
  std::int64_t rounds = 0;
  double bps[4] = {};
  double speedup_2v1 = 0.0;
  double speedup_8v1 = 0.0;
  bool equivalent = false;
};

SmallScale RunSmall() {
  SmallScale result;
  const int blocks = bench::BlocksScale(400);
  const int days = bench::DaysScale(2);
  sim::WorldConfig world_config;
  world_config.total_blocks = blocks;
  world_config.seed = 42;
  const auto world = sim::SimWorld::Generate(world_config);

  std::vector<core::BlockTarget> targets;
  targets.reserve(world.blocks().size());
  for (const auto& block : world.blocks()) {
    targets.push_back(bench::TargetFor(block));
  }
  core::AnalyzerConfig analyzer;
  const probing::RoundScheduler scheduler{analyzer.schedule};
  result.rounds = scheduler.RoundsForDays(days);
  result.blocks = targets.size();

  std::cout << "[small] blocks " << result.blocks << ", rounds/block "
            << result.rounds << " (full pipeline)\n";
  const int worker_counts[] = {1, 2, 4, 8};
  std::string dataset_one;
  std::string dataset_eight;
  for (int i = 0; i < 4; ++i) {
    const auto run = RunAt(world, targets, result.rounds, worker_counts[i]);
    result.bps[i] = run.blocks_per_sec;
    std::cout << "[small] workers " << worker_counts[i] << ": "
              << static_cast<long>(result.bps[i]) << " blocks/sec\n";
    if (worker_counts[i] == 1) {
      dataset_one = DatasetBytes(run.outcome, "w1");
    } else if (worker_counts[i] == 8) {
      dataset_eight = DatasetBytes(run.outcome, "w8");
    }
  }
  result.equivalent = !dataset_one.empty() && dataset_one == dataset_eight;
  result.speedup_2v1 =
      result.bps[0] > 0.0 ? result.bps[1] / result.bps[0] : 0.0;
  result.speedup_8v1 =
      result.bps[0] > 0.0 ? result.bps[3] / result.bps[0] : 0.0;
  std::cout << "[small] speedup 2v1 " << result.speedup_2v1 << ", 8v1 "
            << result.speedup_8v1 << ", workers-1 vs workers-8 datasets "
            << (result.equivalent ? "byte-identical" : "DIFFER") << "\n";
  return result;
}

// --- large scale: the columnar store campaign --------------------------

struct LargeScale {
  std::size_t blocks = 0;
  std::int64_t rounds = 0;
  std::int32_t series_capacity = 0;
  double bps_1 = 0.0;
  double bps_8 = 0.0;
  double speedup_8v1 = 0.0;
  double classify_bps = 0.0;
  std::int64_t classified = 0;
  std::int64_t diurnal = 0;
  double durability_overhead_pct = 0.0;
  bool durability_within_budget = false;
  bool resume_identical = false;
  double peak_rss_mb = 0.0;
  double rss_budget_mb = 0.0;
  bool rss_within_budget = false;
};

/// Ring depth for the per-block A-hat_s series: ~3 days at 660 s
/// rounds. After the midnight trim eats up to a day, every block still
/// has the >= 2 whole days the classifier demands; deeper rings only
/// fatten every snapshot (12 bytes per slot per block).
constexpr std::int32_t kSeriesCapacity = 400;

core::StoreCampaignConfig LargeConfig(std::size_t blocks,
                                      std::int64_t rounds) {
  core::StoreCampaignConfig config;
  config.n_blocks = blocks;
  config.n_rounds = rounds;
  config.seed = 0x5ca1e;
  config.series_capacity = kSeriesCapacity;
  config.classify = true;
  return config;
}

/// Peak resident set (VmHWM) in MB; 0 when /proc is unavailable (the
/// RSS gate then reports but cannot bind).
double PeakRssMb() {
  std::ifstream in{"/proc/self/status"};
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::atof(line.c_str() + 6) / 1024.0;
    }
  }
  return 0.0;
}

double TimeStoreRun(core::StoreCampaignConfig config,
                    core::StoreCampaignOutcome* out = nullptr,
                    core::BlockStore* keep_store = nullptr,
                    int repeats = 2) {
  double best_sec = 0.0;
  for (int repeat = 0; repeat < repeats; ++repeat) {
    // A checkpointing config needs a virgin disk per repeat: reusing
    // the env would let repeat 2 resume from repeat 1's snapshot and
    // time a near-empty run.
    storage::MemEnv scratch;
    if (!config.checkpoint_path.empty()) config.env = &scratch;
    core::BlockStore local;
    core::BlockStore& store =
        keep_store != nullptr ? *keep_store : local;
    const auto start = std::chrono::steady_clock::now();
    auto outcome = core::RunStoreCampaign(store, config);
    const double sec = SecondsSince(start);
    if (!outcome.error.empty()) {
      std::cerr << "parallel_scaling: store campaign failed: "
                << outcome.error << "\n";
      std::exit(1);
    }
    if (repeat == 0 || sec < best_sec) best_sec = sec;
    if (out != nullptr) *out = outcome;
  }
  return best_sec;
}

LargeScale RunLarge() {
  LargeScale result;
  result.blocks = static_cast<std::size_t>(
      bench::EnvInt("SLEEPWALK_BLOCKS_LARGE", 100'000));
  // Snapshot cadence: one v3 image every 2048 rounds. A checkpoint
  // stride has to buy enough estimator + series work to amortize the
  // snapshot encode+write — now dominated by the series rings
  // (kSeriesCapacity * 12 bytes per block), which is why the stride
  // and round count are 4x PR 9's: the same trade a real campaign
  // makes (a round is minutes of probing there; a snapshot must stay
  // a rounding error against the work between snapshots).
  result.rounds = 4096;
  result.series_capacity = kSeriesCapacity;
  constexpr std::int64_t kCheckpointStride = 2048;
  constexpr double kDurabilityBudgetPct = 10.0;
  std::cout << "[large] blocks " << result.blocks << ", rounds "
            << result.rounds << " (store campaign + classify sweep, series "
            << "capacity " << result.series_capacity << ")\n";

  // Scale-derived RSS ceiling: the arena (per-block fixed columns +
  // the 12-byte-per-slot rings) is the unavoidable footprint; the
  // budget grants ~5 arena images (store + snapshot encode + MemEnv
  // file + atomic-write staging) plus fixed slack for the binary and
  // the small scale. A leak or an accidental per-block materialization
  // in the sweep blows through this on any machine.
  const double arena_mb =
      static_cast<double>(result.blocks) *
      (static_cast<double>(result.series_capacity) * 12.0 + 256.0) /
      (1024.0 * 1024.0);
  result.rss_budget_mb = arena_mb * 5.0 + 1024.0;

  // Throughput of the full pipeline (observe + series + classify),
  // unchecked: 1 vs 8 workers. The store from the 1-worker run is kept
  // for the classify-only timing below.
  core::StoreCampaignOutcome outcome_1;
  core::BlockStore store_1;
  auto config = LargeConfig(result.blocks, result.rounds);
  config.workers = 1;
  const double sec_1 = TimeStoreRun(config, &outcome_1, &store_1);
  result.bps_1 = sec_1 > 0.0 ? static_cast<double>(result.blocks) / sec_1
                             : 0.0;
  result.classified = outcome_1.analyze.classified;
  result.diurnal = outcome_1.analyze.diurnal;
  std::cout << "[large] workers 1: " << static_cast<long>(result.bps_1)
            << " blocks/sec (" << result.classified << " classified, "
            << result.diurnal << " diurnal)\n";

  // Classify-only throughput: re-sweep the finished store (idempotent;
  // verdicts are rewritten with the same bits).
  {
    double classify_sec = 0.0;
    for (int repeat = 0; repeat < 2; ++repeat) {
      const auto start = std::chrono::steady_clock::now();
      (void)core::AnalyzeStore(store_1, config.analyzer, 1);
      const double sec = SecondsSince(start);
      if (repeat == 0 || sec < classify_sec) classify_sec = sec;
    }
    result.classify_bps =
        classify_sec > 0.0
            ? static_cast<double>(result.blocks) / classify_sec
            : 0.0;
    std::cout << "[large] classify sweep alone: "
              << static_cast<long>(result.classify_bps) << " blocks/sec\n";
  }
  store_1.Reset(0);  // release the arena before the parallel runs

  core::StoreCampaignOutcome outcome_8;
  config.workers = 8;
  const double sec_8 = TimeStoreRun(config, &outcome_8);
  result.bps_8 = sec_8 > 0.0 ? static_cast<double>(result.blocks) / sec_8
                             : 0.0;
  result.speedup_8v1 = result.bps_1 > 0.0 ? result.bps_8 / result.bps_1 : 0.0;
  std::cout << "[large] workers 8: " << static_cast<long>(result.bps_8)
            << " blocks/sec (speedup 8v1 " << result.speedup_8v1 << ")\n";
  if (outcome_8.digest != outcome_1.digest) {
    // The digest folds the verdict columns, so this also proves the
    // classify sweep is worker-count independent at scale.
    std::cerr << "parallel_scaling: 8-worker store digest diverged\n";
    std::exit(1);
  }

  // Durability tax: the same campaign with v3 snapshots at the stride
  // against an unchecked run (MemEnv: measures serialization, not disk;
  // TimeStoreRun swaps in a fresh env per repeat), timed back to back
  // with identical fresh-arena lifecycles. Measured at quarter scale:
  // snapshot cost and campaign cost both scale with blocks so the
  // ratio is unchanged, but a ~140 MB arena suffers far less
  // allocator/reclaim noise than a ~560 MB one — at full scale the
  // tax swung tens of percent run to run purely from memory pressure.
  const std::string path = "/bench/store.slck";
  const std::size_t tax_blocks = std::max<std::size_t>(result.blocks / 4, 1);
  auto unchecked = LargeConfig(tax_blocks, result.rounds);
  unchecked.workers = 1;
  const double sec_unchecked = TimeStoreRun(unchecked, nullptr, nullptr, 3);
  auto tax_checked = unchecked;
  tax_checked.checkpoint_path = path;
  tax_checked.checkpoint_every_rounds = kCheckpointStride;
  const double sec_checked = TimeStoreRun(tax_checked, nullptr, nullptr, 3);
  result.durability_overhead_pct =
      sec_unchecked > 0.0
          ? (sec_checked - sec_unchecked) / sec_unchecked * 100.0
          : 0.0;
  result.durability_within_budget =
      result.durability_overhead_pct < kDurabilityBudgetPct;
  std::cout << "[large] durability tax "
            << result.durability_overhead_pct << "% (budget < "
            << kDurabilityBudgetPct << "%, measured at " << tax_blocks
            << " blocks, min of 3)\n";

  auto checked = LargeConfig(result.blocks, result.rounds);
  checked.workers = 1;
  checked.checkpoint_path = path;
  checked.checkpoint_every_rounds = kCheckpointStride;

  // Kill/resume proof: kill a 1-worker run at the half-way boundary,
  // resume at 8 workers, demand the final snapshot match a clean run's
  // byte for byte. The snapshot now carries the series rings and the
  // classify verdicts (the sweep runs before the final checkpoint), so
  // identity covers the whole pipeline. Stores are scoped so only one
  // arena is live at a time — that bound is exactly what the RSS gate
  // protects.
  std::vector<std::uint8_t> clean_file;
  {
    storage::MemEnv clean_env;
    auto clean = checked;
    clean.env = &clean_env;
    core::BlockStore clean_store;
    if (const auto out = core::RunStoreCampaign(clean_store, clean);
        !out.error.empty()) {
      std::cerr << "parallel_scaling: clean reference failed: " << out.error
                << "\n";
      std::exit(1);
    }
    (void)clean_env.ReadAll(path, clean_file);
  }

  storage::MemEnv kill_env;
  auto killed = checked;
  killed.env = &kill_env;
  killed.stop_after_rounds = result.rounds / 2;
  bool stopped_early = false;
  {
    core::BlockStore killed_store;
    stopped_early = core::RunStoreCampaign(killed_store, killed).stopped_early;
  }
  killed.stop_after_rounds = 0;
  killed.workers = 8;
  bool resumed = false;
  {
    core::BlockStore resumed_store;
    resumed = core::RunStoreCampaign(resumed_store, killed).resumed;
  }
  std::vector<std::uint8_t> resumed_file;
  (void)kill_env.ReadAll(path, resumed_file);
  result.resume_identical = stopped_early && resumed && !clean_file.empty() &&
                            resumed_file == clean_file;
  std::cout << "[large] kill at round " << result.rounds / 2
            << ", resume 1 -> 8 workers: "
            << (result.resume_identical ? "byte-identical" : "DIFFER")
            << "\n";

  result.peak_rss_mb = PeakRssMb();
  result.rss_within_budget =
      result.peak_rss_mb > 0.0 && result.peak_rss_mb < result.rss_budget_mb;
  std::cout << "[large] peak RSS " << static_cast<long>(result.peak_rss_mb)
            << " MB (budget < " << static_cast<long>(result.rss_budget_mb)
            << " MB)\n";
  return result;
}

int BenchHardwareConcurrency(std::string& source) {
  if (const char* env = std::getenv("SLEEPWALK_BENCH_HW");
      env != nullptr && *env != '\0') {
    const int value = std::atoi(env);
    if (value > 0) {
      source = "env-override";
      return value;
    }
  }
  source = "detected";
  return core::HardwareWorkers();
}

int Run() {
  bench::PrintHeader(
      "parallel_scaling: multi-scale executor + store throughput",
      "internal CI gate (not a paper figure): N-worker campaigns are "
      "byte-identical and faster, at 400 and 100k blocks");
  std::string hw_source;
  const int hw = BenchHardwareConcurrency(hw_source);
  std::cout << "hw_concurrency " << hw << " (" << hw_source << ")\n";

  const auto small = RunSmall();
  const auto large = RunLarge();

  std::string path = "BENCH_parallel.json";
  if (const char* env = std::getenv("SLEEPWALK_BENCH_PARALLEL_OUT")) {
    path = env;
  }
  if (!path.empty()) {
    std::ofstream out{path, std::ios::trunc};
    out << "{\n"
        << "  \"bench\": \"parallel_campaign_scaling\",\n"
        << "  \"hw_concurrency\": " << hw << ",\n"
        << "  \"hw_source\": \"" << hw_source << "\",\n"
        << "  \"scales\": {\n"
        << "    \"small\": {\n"
        << "      \"pipeline\": \"full\",\n"
        << "      \"blocks\": " << small.blocks << ",\n"
        << "      \"rounds_per_block\": " << small.rounds << ",\n"
        << "      \"blocks_per_sec\": {\n"
        << "        \"1\": " << small.bps[0] << ",\n"
        << "        \"2\": " << small.bps[1] << ",\n"
        << "        \"4\": " << small.bps[2] << ",\n"
        << "        \"8\": " << small.bps[3] << "\n"
        << "      },\n"
        << "      \"speedup_2v1\": " << small.speedup_2v1 << ",\n"
        << "      \"speedup_8v1\": " << small.speedup_8v1 << ",\n"
        << "      \"equivalent\": " << (small.equivalent ? "true" : "false")
        << "\n"
        << "    },\n"
        << "    \"large\": {\n"
        << "      \"pipeline\": \"store+classify\",\n"
        << "      \"blocks\": " << large.blocks << ",\n"
        << "      \"rounds\": " << large.rounds << ",\n"
        << "      \"series_capacity\": " << large.series_capacity << ",\n"
        << "      \"blocks_per_sec\": {\n"
        << "        \"1\": " << large.bps_1 << ",\n"
        << "        \"8\": " << large.bps_8 << "\n"
        << "      },\n"
        << "      \"speedup_8v1\": " << large.speedup_8v1 << ",\n"
        << "      \"classify_blocks_per_sec\": " << large.classify_bps
        << ",\n"
        << "      \"classified\": " << large.classified << ",\n"
        << "      \"diurnal\": " << large.diurnal << ",\n"
        << "      \"durability_overhead_pct\": "
        << large.durability_overhead_pct << ",\n"
        << "      \"durability_within_budget\": "
        << (large.durability_within_budget ? "true" : "false") << ",\n"
        << "      \"resume_identical\": "
        << (large.resume_identical ? "true" : "false") << ",\n"
        << "      \"peak_rss_mb\": " << large.peak_rss_mb << ",\n"
        << "      \"rss_budget_mb\": " << large.rss_budget_mb << ",\n"
        << "      \"rss_within_budget\": "
        << (large.rss_within_budget ? "true" : "false") << "\n"
        << "    }\n"
        << "  }\n"
        << "}\n";
    if (!out) {
      std::cerr << "parallel_scaling: cannot write " << path << "\n";
      return 1;
    }
    std::cout << "wrote " << path << "\n";
  }
  return small.equivalent && large.resume_identical ? 0 : 1;
}

}  // namespace
}  // namespace sleepwalk

int main() { return sleepwalk::Run(); }
