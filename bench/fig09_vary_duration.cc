// Figure 9: detection accuracy vs the per-day standard deviation of
// uptime duration sigma_d (0..24 h), n_d = 100, Phi = sigma_s = 0.
//
// Paper: accuracy is only slightly affected until sigma_d exceeds ~10
// hours, because daily synchronization means duration noise cancels out
// over the observation.
#include <iostream>

#include "controlled.h"

int main() {
  using namespace sleepwalk;
  bench::PrintHeader(
      "Figure 9: accuracy vs uptime-duration noise sigma_d",
      "mild degradation only for sigma_d > 10 h (n_d = 100, Phi = "
      "sigma_s = 0)");

  report::TextTable table{
      {"sigma_d (hours)", "accuracy (median)", "q1", "q3"}};
  for (const int sigma : {0, 2, 4, 6, 8, 10, 12, 16, 20, 24}) {
    bench::ControlledParams params;
    params.sigma_duration_hours = sigma;
    const auto point = bench::RunSweepPoint(params, 0x0900 + sigma);
    bench::PrintSweepRow(table, std::to_string(sigma), point);
  }
  table.Print(std::cout);
  std::cout << "(ordinary schedules vary by only a few hours: well "
               "within tolerance)\n";
  return 0;
}
