// Figure 16: scatter of country diurnal fraction vs per-capita GDP with
// a weak negative linear fit.
//
// Paper: confidence coefficient -0.526 ("such weak fits are common with
// coarse GDP data and few countries"); countries above 0.15 diurnal all
// sit below ~$15,000 GDP.
#include <iostream>
#include <map>

#include "common.h"
#include "sleepwalk/geo/geodb.h"
#include "sleepwalk/report/chart.h"
#include "sleepwalk/report/csv.h"
#include "sleepwalk/report/table.h"
#include "sleepwalk/stats/histogram.h"
#include "sleepwalk/stats/regression.h"
#include "sleepwalk/world/economics.h"

int main() {
  using namespace sleepwalk;
  const int n_blocks = bench::BlocksScale(6000);
  const int days = bench::DaysScale(10);
  bench::PrintHeader(
      "Figure 16: country diurnal fraction vs per-capita GDP",
      "weak negative fit, r = -0.526; diurnal > 0.15 implies GDP < "
      "~$15,000");

  sim::WorldConfig config;
  config.total_blocks = n_blocks;
  config.seed = 0xf16;
  config.min_blocks_per_country = 40;
  const auto world = sim::SimWorld::Generate(config);
  const auto geodb = geo::GeoDatabase::FromTruth(world.TrueLocations(),
                                                 geo::GeoDatabase::Options{});
  const auto result = bench::RunWorldCampaign(world, days, 0xf16);

  struct CountryStats {
    std::int64_t blocks = 0;
    std::int64_t diurnal = 0;
  };
  std::map<std::string, CountryStats> stats;
  for (std::size_t i = 0; i < world.blocks().size(); ++i) {
    const auto& analysis = result.analyses[i];
    if (!analysis.probed || analysis.observed_days < 2) continue;
    const auto* record = geodb.Lookup(world.blocks()[i].spec.block);
    if (record == nullptr) continue;
    auto& entry = stats[record->country_code];
    ++entry.blocks;
    if (analysis.diurnal.IsStrict()) ++entry.diurnal;
  }

  std::vector<double> gdp;
  std::vector<double> fraction;
  sleepwalk::stats::Histogram2d scatter{0.0, 65000.0, 65, 0.0, 0.7, 20};
  int high_diurnal_low_gdp = 0;
  int high_diurnal_total = 0;
  for (const auto& [code, entry] : stats) {
    if (entry.blocks < 25) continue;
    const auto* info = world::FindCountry(code);
    if (info == nullptr) continue;
    const double f = static_cast<double>(entry.diurnal) /
                     static_cast<double>(entry.blocks);
    gdp.push_back(info->gdp_per_capita_usd);
    fraction.push_back(f);
    scatter.Add(info->gdp_per_capita_usd, f);
    if (f > 0.15) {
      ++high_diurnal_total;
      if (info->gdp_per_capita_usd < 15000.0) ++high_diurnal_low_gdp;
    }
  }

  std::vector<std::vector<double>> cells(20, std::vector<double>(65));
  for (std::size_t y = 0; y < 20; ++y) {
    for (std::size_t x = 0; x < 65; ++x) {
      cells[y][x] = static_cast<double>(scatter.count(x, y));
    }
  }
  report::PrintDensityGrid(std::cout, cells,
                           "scatter: x = GDP/capita ($0..$65k), y = "
                           "diurnal fraction (0..0.7)");

  const auto fit = sleepwalk::stats::FitSimple(gdp, fraction);
  std::cout << "countries: " << gdp.size()
            << "; linear fit r = " << report::Fixed(fit.r, 3)
            << " (slope " << report::Scientific(fit.slope, 2)
            << " per $)   [paper: r = -0.526]\n"
            << "countries with diurnal fraction > 0.15 and GDP < $15k: "
            << high_diurnal_low_gdp << "/" << high_diurnal_total
            << "   [paper: top-20 generally < $15,000]\n";

  if (const auto path = report::CsvPathFor("fig16_scatter.csv");
      !path.empty()) {
    report::CsvWriter csv{path};
    csv.WriteRow({"gdp", "frac_diurnal"});
    for (std::size_t i = 0; i < gdp.size(); ++i) {
      csv.WriteRow({report::Fixed(gdp[i], 0),
                    report::Fixed(fraction[i], 4)});
    }
  }
  return 0;
}
