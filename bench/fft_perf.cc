// Spectral-kernel benchmarks (google-benchmark): plan-based transforms
// vs the plan-free reference kernels at campaign-realistic sizes, plus
// the Goertzel-vs-FFT crossover for the quick screen.
//
// The custom main additionally writes BENCH_fft.json (override the path
// with SLEEPWALK_BENCH_FFT_OUT, empty string to skip) for
// scripts/bench_gate.sh:
//   * plan vs planless ns/transform and blocks/sec at
//       - 1834 samples (14 days x 131 rounds/day, even -> real-packed),
//       - 1833 samples (trimmed 14-day series, odd -> Bluestein only),
//       - 2048 samples (power of two),
//       - 4583 samples (prime, Bluestein's worst case);
//   * the campaign-realistic non-power-of-two speedup the acceptance
//     gate requires to stay >= 2x (plan + real-input vs the planless
//     ForwardReal the analyzer used before the plan cache);
//   * the bin count at which a planned full FFT beats per-bin Goertzel —
//     below the crossover the quick screen's O(n)-per-bin pass wins,
//     above it the screen should just take the FFT.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <complex>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sleepwalk/core/quick_screen.h"
#include "sleepwalk/fft/fft.h"
#include "sleepwalk/fft/goertzel.h"
#include "sleepwalk/fft/plan.h"
#include "sleepwalk/fft/spectrum.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk {
namespace {

// Same synthetic diurnal-ish series generator as micro_perf: ~131
// rounds/day square wave plus noise.
std::vector<double> MakeSeries(std::size_t n) {
  Rng rng{42};
  std::vector<double> series(n);
  for (std::size_t i = 0; i < n; ++i) {
    series[i] = 0.5 + 0.3 * ((i % 131) < 50 ? 1.0 : -1.0) +
                0.05 * rng.NextGaussian();
  }
  return series;
}

void BM_ForwardRealPlanless(benchmark::State& state) {
  const auto series = MakeSeries(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::ForwardRealPlanless(series));
  }
}
BENCHMARK(BM_ForwardRealPlanless)->Arg(1834)->Arg(1833)->Arg(2048)->Arg(4583);

void BM_ForwardRealPlanned(benchmark::State& state) {
  const auto series = MakeSeries(static_cast<std::size_t>(state.range(0)));
  const auto plan = fft::GetPlan(series.size());
  fft::FftScratch scratch;
  std::vector<fft::Complex> out;
  plan->ForwardReal(series, scratch, out);  // warm scratch + output
  for (auto _ : state) {
    plan->ForwardReal(series, scratch, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ForwardRealPlanned)->Arg(1834)->Arg(1833)->Arg(2048)->Arg(4583);

void BM_InversePlanless(benchmark::State& state) {
  const auto series = MakeSeries(1834);
  const auto coeffs = fft::ForwardReal(series);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::InversePlanless(coeffs));
  }
}
BENCHMARK(BM_InversePlanless);

void BM_InversePlanned(benchmark::State& state) {
  const auto series = MakeSeries(1834);
  const auto coeffs = fft::ForwardReal(series);
  const auto plan = fft::GetPlan(coeffs.size());
  fft::FftScratch scratch;
  std::vector<fft::Complex> out;
  plan->Inverse(coeffs, scratch, out);
  for (auto _ : state) {
    plan->Inverse(coeffs, scratch, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_InversePlanned);

void BM_QuickScreenGoertzel(benchmark::State& state) {
  const auto series = MakeSeries(1834);
  std::vector<double> centered;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::QuickDiurnalScreen(series, 14, {}, centered));
  }
}
BENCHMARK(BM_QuickScreenGoertzel);

// --- plan ablation -> BENCH_fft.json -----------------------------------

/// ns/call of `fn` for one batch of `iters` calls.
template <typename Fn>
double BatchNsPerCall(Fn&& fn, int iters) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::nano>(elapsed).count() / iters;
}

double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

std::string FormatFixed(double value, int decimals) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(decimals);
  out << value;
  return out.str();
}

struct SizeResult {
  std::size_t n = 0;
  const char* label = "";
  double planless_ns = 0.0;
  double plan_ns = 0.0;

  double Speedup() const { return plan_ns > 0.0 ? planless_ns / plan_ns : 0.0; }
};

/// Interleaved plan-vs-planless timing of ForwardReal at size n (the
/// same discipline as micro_perf's obs ablation: warm first, alternate
/// variants within each repeat so machine drift cancels).
SizeResult MeasureSize(std::size_t n, const char* label, int repeats,
                       int iters) {
  SizeResult result;
  result.n = n;
  result.label = label;

  const auto series = MakeSeries(n);
  const auto plan = fft::GetPlan(n);
  fft::FftScratch scratch;
  std::vector<fft::Complex> out;

  const auto planless = [&] {
    benchmark::DoNotOptimize(fft::ForwardRealPlanless(series));
  };
  const auto planned = [&] {
    plan->ForwardReal(series, scratch, out);
    benchmark::DoNotOptimize(out.data());
  };

  planless();
  planned();
  std::vector<double> planless_samples;
  std::vector<double> plan_samples;
  for (int r = 0; r < repeats; ++r) {
    planless_samples.push_back(BatchNsPerCall(planless, iters));
    plan_samples.push_back(BatchNsPerCall(planned, iters));
  }
  result.planless_ns = Median(std::move(planless_samples));
  result.plan_ns = Median(std::move(plan_samples));
  return result;
}

int WriteFftPerf(const std::string& path) {
  const int repeats = 15;
  const int iters = 30;
  constexpr double kSpeedupTarget = 2.0;

  // 14 days x 131 rounds/day = 1834 (even, real-packed path) is the
  // campaign-realistic non-power-of-two size the acceptance gate is
  // pinned to; 1833 is its odd midnight-trimmed sibling, 4583 is prime.
  const std::array<SizeResult, 4> sizes = {
      MeasureSize(1834, "campaign_14day_even", repeats, iters),
      MeasureSize(1833, "campaign_14day_trimmed", repeats, iters),
      MeasureSize(2048, "power_of_two", repeats, iters),
      MeasureSize(4583, "prime", repeats, iters),
  };
  const SizeResult& campaign = sizes[0];

  // Goertzel-vs-FFT crossover at the campaign size: per-bin cost of the
  // single-pass multi-bin evaluator against one planned full transform.
  const auto series = MakeSeries(1834);
  const auto plan = fft::GetPlan(series.size());
  fft::FftScratch scratch;
  std::vector<fft::Complex> out;
  plan->ForwardReal(series, scratch, out);
  constexpr std::size_t kProbeBins = 8;
  std::array<std::size_t, kProbeBins> bins{};
  for (std::size_t i = 0; i < kProbeBins; ++i) bins[i] = 14 + i;
  std::array<std::complex<double>, kProbeBins> coeffs{};
  const auto goertzel = [&] {
    fft::GoertzelMany(series, bins, coeffs);
    benchmark::DoNotOptimize(coeffs.data());
  };
  goertzel();
  std::vector<double> goertzel_samples;
  for (int r = 0; r < repeats; ++r) {
    goertzel_samples.push_back(BatchNsPerCall(goertzel, iters));
  }
  const double goertzel_per_bin_ns =
      Median(std::move(goertzel_samples)) / static_cast<double>(kProbeBins);
  const double crossover_bins =
      goertzel_per_bin_ns > 0.0 ? campaign.plan_ns / goertzel_per_bin_ns
                                : 0.0;

  std::ofstream file{path, std::ios::trunc};
  if (!file) {
    std::cerr << "fft_perf: cannot write " << path << "\n";
    return 1;
  }
  file << "{\n"
       << "  \"bench\": \"fft_plan_vs_planless\",\n"
       << "  \"repeats\": " << repeats << ",\n"
       << "  \"iters_per_repeat\": " << iters << ",\n"
       << "  \"sizes\": [\n";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto& s = sizes[i];
    const double plan_bps = s.plan_ns > 0.0 ? 1e9 / s.plan_ns : 0.0;
    const double planless_bps =
        s.planless_ns > 0.0 ? 1e9 / s.planless_ns : 0.0;
    file << "    {\"n\": " << s.n << ", \"label\": \"" << s.label
         << "\", \"planless_ns\": " << FormatFixed(s.planless_ns, 1)
         << ", \"plan_ns\": " << FormatFixed(s.plan_ns, 1)
         << ", \"planless_blocks_per_sec\": " << FormatFixed(planless_bps, 0)
         << ", \"plan_blocks_per_sec\": " << FormatFixed(plan_bps, 0)
         << ", \"speedup\": " << FormatFixed(s.Speedup(), 3) << "}"
         << (i + 1 < sizes.size() ? "," : "") << "\n";
  }
  file << "  ],\n"
       << "  \"campaign_even_speedup\": "
       << FormatFixed(campaign.Speedup(), 3) << ",\n"
       << "  \"speedup_target\": " << FormatFixed(kSpeedupTarget, 1) << ",\n"
       << "  \"campaign_speedup_within_target\": "
       << (campaign.Speedup() >= kSpeedupTarget ? "true" : "false") << ",\n"
       << "  \"goertzel_ns_per_bin\": " << FormatFixed(goertzel_per_bin_ns, 1)
       << ",\n"
       << "  \"goertzel_fft_crossover_bins\": "
       << FormatFixed(crossover_bins, 1) << "\n"
       << "}\n";

  for (const auto& s : sizes) {
    std::cout << "fft_perf n=" << s.n << " (" << s.label << "): planless "
              << FormatFixed(s.planless_ns, 0) << " ns, plan "
              << FormatFixed(s.plan_ns, 0) << " ns, speedup "
              << FormatFixed(s.Speedup(), 2) << "x\n";
  }
  std::cout << "fft_perf goertzel/bin " << FormatFixed(goertzel_per_bin_ns, 0)
            << " ns, FFT==Goertzel at ~" << FormatFixed(crossover_bins, 1)
            << " bins -> " << path << "\n";
  return 0;
}

}  // namespace
}  // namespace sleepwalk

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::string path = "BENCH_fft.json";
  if (const char* env = std::getenv("SLEEPWALK_BENCH_FFT_OUT")) path = env;
  if (path.empty()) return 0;  // ablation disabled
  return sleepwalk::WriteFftPerf(path);
}
