// The paper's §3.2.2 controlled diurnal-block simulation, shared by the
// Figure 7-9 sweeps:
//
//   one /24, 50 stable always-responding addresses, n_d diurnal
//   addresses (8 h up / 16 h down), the rest inactive; responses
//   evaluated every 11 minutes for 4 weeks. Per-address phase phi_i is
//   uniform in [0, Phi]; per-day Gaussian noise sigma_s on start and
//   sigma_d on duration. Accuracy = fraction of experiments where the
//   block is detected strictly diurnal; batches give the error bars.
#ifndef SLEEPWALK_BENCH_CONTROLLED_H_
#define SLEEPWALK_BENCH_CONTROLLED_H_

#include <iostream>

#include "common.h"
#include "sleepwalk/core/block_analyzer.h"
#include "sleepwalk/report/table.h"
#include "sleepwalk/stats/descriptive.h"

namespace sleepwalk::bench {

struct ControlledParams {
  int n_diurnal = 100;          ///< n_d
  double phi_spread_hours = 0;  ///< Phi (uniform per-address phase)
  double sigma_start_hours = 0; ///< sigma_s (per-day start noise)
  double sigma_duration_hours = 0;  ///< sigma_d (per-day duration noise)
  int days = 28;
};

/// Runs one experiment; true when the block is detected strictly
/// diurnal.
inline bool DetectControlledBlock(const ControlledParams& params,
                                  std::uint64_t seed) {
  sim::BlockSpec spec;
  spec.block = net::Prefix24::FromIndex(0x070000);
  spec.seed = seed;
  spec.n_always = 50;
  spec.n_diurnal = static_cast<std::uint8_t>(params.n_diurnal);
  spec.response_prob = 1.0F;
  spec.on_start_sec = 8.0F * 3600.0F;
  spec.on_duration_sec = 8.0F * 3600.0F;
  spec.phase_spread_sec =
      static_cast<float>(params.phi_spread_hours * 3600.0);
  spec.sigma_start_sec =
      static_cast<float>(params.sigma_start_hours * 3600.0);
  spec.sigma_duration_sec =
      static_cast<float>(params.sigma_duration_hours * 3600.0);

  core::AnalyzerConfig config;
  const probing::RoundScheduler scheduler{config.schedule};
  sim::SimTransport transport{seed ^ 0x7247};
  transport.AddBlock(&spec);
  core::BlockAnalyzer analyzer{
      spec.block, sim::EverActiveOctets(spec),
      sim::TrueAvailability(spec, 13 * 3600), seed ^ 0x9e37, config};
  analyzer.RunCampaign(transport, scheduler.RoundsForDays(params.days));
  return analyzer.Finish().diurnal.IsStrict();
}

struct SweepPoint {
  double accuracy_median = 0.0;  ///< over batches
  double accuracy_q1 = 0.0;
  double accuracy_q3 = 0.0;
};

/// Paper protocol: `batches` batches of `per_batch` experiments; report
/// median and quartiles of per-batch accuracy.
inline SweepPoint RunSweepPoint(const ControlledParams& params,
                                std::uint64_t seed_base) {
  const int batches = EnvInt("SLEEPWALK_BATCHES", 5);
  const int per_batch = EnvInt("SLEEPWALK_EXPERIMENTS", 20);
  std::vector<double> batch_accuracy;
  for (int b = 0; b < batches; ++b) {
    int detected = 0;
    for (int e = 0; e < per_batch; ++e) {
      const auto seed =
          seed_base + static_cast<std::uint64_t>(b) * 1000003 +
          static_cast<std::uint64_t>(e) * 7919;
      if (DetectControlledBlock(params, seed)) ++detected;
    }
    batch_accuracy.push_back(static_cast<double>(detected) / per_batch);
  }
  const auto q = stats::ComputeQuartiles(batch_accuracy);
  return {q.median, q.q1, q.q3};
}

inline void PrintSweepRow(report::TextTable& table, const std::string& x,
                          const SweepPoint& point) {
  table.AddRow({x, report::Percent(point.accuracy_median, 1),
                report::Percent(point.accuracy_q1, 1),
                report::Percent(point.accuracy_q3, 1)});
}

}  // namespace sleepwalk::bench

#endif  // SLEEPWALK_BENCH_CONTROLLED_H_
