// §3.2.4: validation against operator ground truth at a campus network.
//
// The paper examined USC: a few strictly diurnal blocks (wireless +
// dynamic pockets + general-use blocks that sleep), at most 3% false
// positives, and — crucially — *heavily overprovisioned wireless* whose
// blocks have ~10 live addresses out of 256, which Trinocular's
// 15-address policy refuses to probe: sparse blocks cause false
// negatives only, never false positives, making Internet-wide diurnal
// fractions a lower bound.
//
// We build a campus-like world: general-use always-on blocks (some with
// dynamic pockets), dense wireless with diurnal usage, and
// overprovisioned wireless (sparse), then measure it.
#include <iostream>

#include "common.h"
#include "sleepwalk/report/table.h"

namespace sleepwalk {
namespace {

enum class CampusKind { kGeneralUse, kDynamicPocket, kDenseWireless,
                        kSparseWireless };

struct CampusBlock {
  sim::BlockSpec spec;
  CampusKind kind;
  bool truly_diurnal;
};

std::vector<CampusBlock> BuildCampus() {
  std::vector<CampusBlock> blocks;
  Rng rng{0x05c0};
  std::uint32_t next_index = (128u << 16) | 1250u;  // a campus /16
  const auto add = [&](CampusKind kind, auto configure, bool diurnal) {
    CampusBlock block;
    block.spec.block = net::Prefix24::FromIndex(next_index++);
    block.spec.seed = rng();
    block.spec.response_prob = 0.93F;
    configure(block.spec);
    block.kind = kind;
    block.truly_diurnal = diurnal;
    blocks.push_back(block);
  };

  // 60 general-use department blocks: always-on servers and desktops.
  for (int i = 0; i < 60; ++i) {
    add(CampusKind::kGeneralUse, [&](sim::BlockSpec& spec) {
      spec.n_always = static_cast<std::uint8_t>(40 + rng.NextBelow(120));
    }, false);
  }
  // 16 general-use blocks where desktops are switched off at night
  // (the paper's "surprising" diurnal general-use blocks).
  for (int i = 0; i < 16; ++i) {
    add(CampusKind::kGeneralUse, [&](sim::BlockSpec& spec) {
      spec.n_always = static_cast<std::uint8_t>(10 + rng.NextBelow(20));
      spec.n_diurnal = static_cast<std::uint8_t>(60 + rng.NextBelow(60));
      spec.on_start_sec = 15.0F * 3600.0F;  // 8 am local (UTC-7)
      spec.on_duration_sec = 10.0F * 3600.0F;
      spec.phase_spread_sec = 2.0F * 3600.0F;
      spec.sigma_start_sec = 0.5F * 3600.0F;
    }, true);
  }
  // 20 blocks with pockets of dynamically assigned addresses.
  for (int i = 0; i < 20; ++i) {
    add(CampusKind::kDynamicPocket, [&](sim::BlockSpec& spec) {
      spec.n_always = static_cast<std::uint8_t>(20 + rng.NextBelow(40));
      spec.n_diurnal = static_cast<std::uint8_t>(16 + rng.NextBelow(24));
      spec.on_start_sec = 16.0F * 3600.0F;
      spec.on_duration_sec = 9.0F * 3600.0F;
      spec.phase_spread_sec = 3.0F * 3600.0F;
    }, true);
  }
  // 23 dense wireless blocks (the probed fraction of campus wireless).
  for (int i = 0; i < 23; ++i) {
    add(CampusKind::kDenseWireless, [&](sim::BlockSpec& spec) {
      spec.n_always = static_cast<std::uint8_t>(4 + rng.NextBelow(8));
      spec.n_diurnal = static_cast<std::uint8_t>(30 + rng.NextBelow(50));
      spec.on_start_sec = 16.0F * 3600.0F;
      spec.on_duration_sec = 8.0F * 3600.0F;
      spec.phase_spread_sec = 4.0F * 3600.0F;
      spec.sigma_start_sec = 1.0F * 3600.0F;
    }, true);
  }
  // 119 overprovisioned wireless blocks: ~10 live addresses each.
  for (int i = 0; i < 119; ++i) {
    add(CampusKind::kSparseWireless, [&](sim::BlockSpec& spec) {
      spec.n_always = static_cast<std::uint8_t>(2 + rng.NextBelow(4));
      spec.n_diurnal = static_cast<std::uint8_t>(4 + rng.NextBelow(6));
      spec.on_start_sec = 16.0F * 3600.0F;
      spec.on_duration_sec = 8.0F * 3600.0F;
      spec.phase_spread_sec = 4.0F * 3600.0F;
    }, true);  // truly diurnal usage, but too sparse to see
  }
  return blocks;
}

}  // namespace
}  // namespace sleepwalk

int main() {
  using namespace sleepwalk;
  const int days = bench::DaysScale(14);
  bench::PrintHeader(
      "USC-style ground truth (paper §3.2.4)",
      "sparse wireless (119 of 142 blocks) excluded by the 15-address "
      "policy -> false negatives only; <= 3% false positives among "
      "probed blocks");

  const auto campus = BuildCampus();
  sim::SimTransport transport{0x05c};
  std::vector<core::BlockTarget> targets;
  for (const auto& block : campus) {
    transport.AddBlock(&block.spec);
    targets.push_back({block.spec.block, sim::EverActiveOctets(block.spec),
                       sim::TrueAvailability(block.spec, 20 * 3600)});
  }
  core::AnalyzerConfig config;
  const probing::RoundScheduler scheduler{config.schedule};
  const auto result =
      core::RunCampaign(std::move(targets), transport,
                        scheduler.RoundsForDays(days), config, 0x05c);

  struct KindStats {
    const char* name;
    int total = 0;
    int probed = 0;
    int detected = 0;  // strict or relaxed
  };
  KindStats kinds[4] = {{"general use"}, {"dynamic pocket"},
                        {"dense wireless"}, {"sparse wireless"}};
  int false_positives = 0;
  int probed_total = 0;
  for (std::size_t i = 0; i < campus.size(); ++i) {
    auto& kind = kinds[static_cast<int>(campus[i].kind)];
    ++kind.total;
    const auto& analysis = result.analyses[i];
    if (!analysis.probed) continue;
    ++kind.probed;
    ++probed_total;
    if (analysis.diurnal.IsDiurnal()) {
      ++kind.detected;
      if (!campus[i].truly_diurnal) ++false_positives;
    }
  }

  report::TextTable table{{"block kind", "blocks", "probed",
                           "detected diurnal"}};
  for (const auto& kind : kinds) {
    table.AddRow({kind.name, std::to_string(kind.total),
                  std::to_string(kind.probed),
                  std::to_string(kind.detected)});
  }
  table.Print(std::cout);

  const auto& sparse = kinds[3];
  std::cout << "sparse wireless probed: " << sparse.probed << "/"
            << sparse.total
            << "   [paper: 23/142 wireless blocks probed; 119 excluded]\n"
            << "false positives among probed: " << false_positives << "/"
            << probed_total << " ("
            << report::Percent(
                   probed_total > 0
                       ? static_cast<double>(false_positives) / probed_total
                       : 0.0, 1)
            << ")   [paper: <= 3%]\n"
            << "=> sparse blocks cause only false negatives; measured "
               "diurnal fractions are a lower bound\n";
  return 0;
}
