// Figure 15: percentage of diurnal blocks vs the month their /8 was
// allocated by IANA to a regional registry.
//
// Paper: newer allocations are more often diurnal — linear regression
// slope +0.08% per month with correlation coefficient 0.609 — because
// post-exhaustion allocation policy pushed density and dynamic
// addressing. (Allocation dates are also largely GDP-independent:
// rho < 0.27.)
#include <cmath>
#include <iostream>
#include <map>

#include "common.h"
#include "sleepwalk/report/chart.h"
#include "sleepwalk/report/table.h"
#include "sleepwalk/stats/descriptive.h"
#include "sleepwalk/stats/regression.h"
#include "sleepwalk/world/iana.h"

int main() {
  using namespace sleepwalk;
  const int n_blocks = bench::BlocksScale(6000);
  const int days = bench::DaysScale(10);
  bench::PrintHeader(
      "Figure 15: diurnal fraction vs /8 allocation month",
      "positive trend, slope +0.08%/month, r = 0.609");

  sim::WorldConfig config;
  config.total_blocks = n_blocks;
  config.seed = 0xf15;
  const auto world = sim::SimWorld::Generate(config);
  const auto result = bench::RunWorldCampaign(world, days, 0xf15);

  // Aggregate measured diurnal fraction per allocation month (bucketed
  // by year-half to keep samples usable at bench scale).
  struct Bucket {
    std::int64_t blocks = 0;
    std::int64_t diurnal = 0;
  };
  std::map<int, Bucket> by_half_year;  // key: months since 1983 / 6
  for (std::size_t i = 0; i < world.blocks().size(); ++i) {
    const auto& analysis = result.analyses[i];
    if (!analysis.probed || analysis.observed_days < 2) continue;
    const auto slash8 =
        static_cast<std::uint8_t>(world.blocks()[i].spec.block.Index() >> 16);
    const int month = world::AllocationMonthIndex(slash8);
    if (month < 0) continue;
    auto& bucket = by_half_year[month / 6];
    ++bucket.blocks;
    if (analysis.diurnal.IsStrict()) ++bucket.diurnal;
  }

  report::TextTable table{{"allocated (year)", "blocks", "% diurnal"}};
  std::vector<double> months;
  std::vector<double> fractions;
  std::vector<double> series;
  for (const auto& [half_year, bucket] : by_half_year) {
    if (bucket.blocks < 15) continue;
    const double month_mid = half_year * 6.0 + 3.0;
    const double year = 1983.0 + month_mid / 12.0;
    const double fraction = static_cast<double>(bucket.diurnal) /
                            static_cast<double>(bucket.blocks);
    months.push_back(month_mid);
    fractions.push_back(fraction);
    series.push_back(fraction);
    table.AddRow({report::Fixed(year, 1), report::WithCommas(bucket.blocks),
                  report::Percent(fraction, 1)});
  }
  table.Print(std::cout);
  report::PrintSeries(std::cout, series, 64, 10,
                      "diurnal fraction by allocation half-year "
                      "(left = 1983, right = 2011)");

  const auto fit = stats::FitSimple(months, fractions);
  std::cout << "linear fit: slope = "
            << report::Fixed(fit.slope * 100.0, 3)
            << "% per month, r = " << report::Fixed(fit.r, 3)
            << "   [paper: +0.08%/month, r = 0.609]\n";

  // GDP-independence check: correlation of a country's mean allocation
  // month with its GDP should be weak (paper: rho < 0.27).
  std::map<std::string_view, std::pair<double, int>> country_alloc;
  for (const auto& block : world.blocks()) {
    const auto slash8 =
        static_cast<std::uint8_t>(block.spec.block.Index() >> 16);
    const int month = world::AllocationMonthIndex(slash8);
    if (month < 0) continue;
    auto& [sum, count] = country_alloc[block.country->code];
    sum += month;
    ++count;
  }
  std::vector<double> gdp;
  std::vector<double> mean_alloc;
  for (const auto& [code, acc] : country_alloc) {
    if (acc.second < 10) continue;
    const auto* info = world::FindCountry(code);
    if (info == nullptr) continue;
    gdp.push_back(info->gdp_per_capita_usd);
    mean_alloc.push_back(acc.first / acc.second);
  }
  std::cout << "rho(country mean allocation month, GDP) = "
            << report::Fixed(
                   std::fabs(stats::SpearmanCorrelation(gdp, mean_alloc)), 3)
            << " (Spearman)   [paper: < 0.27 -> allocation age is not a "
               "GDP proxy]\n";
  return 0;
}
