// Micro-benchmarks (google-benchmark): throughput of the hot paths —
// FFT variants vs Goertzel, the availability estimator, the adaptive
// prober, and end-to-end block analysis. Quantifies the Goertzel-vs-FFT
// tradeoff called out in DESIGN.md §5.
//
// The custom main additionally runs the observability ablation and
// writes BENCH_obs.json (override the path with SLEEPWALK_BENCH_OBS_OUT,
// empty string to skip): classify throughput with (a) no obs touchpoints
// compiled in the call, (b) a null obs::Context (the one-branch
// configuration every campaign without sinks pays), (c) full sinks. The
// contract in obs/context.h is (b) within 2% of (a) on this hot path.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sleepwalk/core/block_analyzer.h"
#include "sleepwalk/core/diurnal.h"
#include "sleepwalk/core/quick_screen.h"
#include "sleepwalk/core/status.h"
#include "sleepwalk/fft/fft.h"
#include "sleepwalk/fft/goertzel.h"
#include "sleepwalk/fft/spectrum.h"
#include "sleepwalk/obs/context.h"
#include "sleepwalk/serve/admin_server.h"
#include "sleepwalk/serve/routes.h"
#include "sleepwalk/sim/block.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk {
namespace {

std::vector<double> MakeSeries(std::size_t n) {
  Rng rng{42};
  std::vector<double> series(n);
  for (std::size_t i = 0; i < n; ++i) {
    series[i] = 0.5 + 0.3 * ((i % 131) < 50 ? 1.0 : -1.0) +
                0.05 * rng.NextGaussian();
  }
  return series;
}

void BM_FftPowerOfTwo(benchmark::State& state) {
  const auto series = MakeSeries(2048);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::ForwardReal(series));
  }
}
BENCHMARK(BM_FftPowerOfTwo);

void BM_FftBluestein14Day(benchmark::State& state) {
  const auto series = MakeSeries(1833);  // 14 days of 11-min rounds
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::ForwardReal(series));
  }
}
BENCHMARK(BM_FftBluestein14Day);

void BM_FftBluestein35Day(benchmark::State& state) {
  const auto series = MakeSeries(4582);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::ForwardReal(series));
  }
}
BENCHMARK(BM_FftBluestein35Day);

void BM_GoertzelDailyBinOnly(benchmark::State& state) {
  const auto series = MakeSeries(4582);
  for (auto _ : state) {
    // Detection-only workload: daily bin + neighbour + first harmonic.
    benchmark::DoNotOptimize(fft::Goertzel(series, 35));
    benchmark::DoNotOptimize(fft::Goertzel(series, 36));
    benchmark::DoNotOptimize(fft::Goertzel(series, 70));
  }
}
BENCHMARK(BM_GoertzelDailyBinOnly);

void BM_SpectrumAndClassify(benchmark::State& state) {
  const auto series = MakeSeries(1833);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ClassifyDiurnal(series, 14));
  }
}
BENCHMARK(BM_SpectrumAndClassify);

void BM_SpectrumAndClassifyNullObs(benchmark::State& state) {
  // Same workload through the instrumentation seam with no sinks: the
  // delta vs BM_SpectrumAndClassify is the null-context overhead.
  const auto series = MakeSeries(1833);
  const obs::Context context;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ClassifyDiurnal(series, 14, {}, &context));
  }
}
BENCHMARK(BM_SpectrumAndClassifyNullObs);

void BM_SpectrumAndClassifyInstrumented(benchmark::State& state) {
  const auto series = MakeSeries(1833);
  obs::Registry registry;
  obs::Tracer tracer;
  obs::Logger logger;  // no sinks: logging is off, tracing is live
  const obs::Context context{&logger, &registry, &tracer};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ClassifyDiurnal(series, 14, {}, &context));
  }
}
BENCHMARK(BM_SpectrumAndClassifyInstrumented);

void BM_QuickScreen(benchmark::State& state) {
  // The O(n) Goertzel prefilter vs the full classify above: the
  // two-stage triage saves the FFT on clearly non-diurnal blocks.
  const auto series = MakeSeries(1833);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::QuickDiurnalScreen(series, 14));
  }
}
BENCHMARK(BM_QuickScreen);

void BM_AvailabilityEstimatorObserve(benchmark::State& state) {
  core::AvailabilityEstimator estimator{0.5};
  Rng rng{7};
  for (auto _ : state) {
    estimator.Observe(rng.NextBool(0.6) ? 1 : 0,
                      1 + static_cast<int>(rng.NextBelow(15)));
    benchmark::DoNotOptimize(estimator.Operational());
  }
}
BENCHMARK(BM_AvailabilityEstimatorObserve);

void BM_ProberRound(benchmark::State& state) {
  sim::BlockSpec spec;
  spec.block = net::Prefix24::FromIndex(100);
  spec.seed = 0x1;
  spec.n_always = 30;
  spec.n_diurnal = 100;
  spec.response_prob = 0.9F;
  sim::SimTransport transport{3};
  transport.AddBlock(&spec);
  probing::AdaptiveProber prober{spec.block, sim::EverActiveOctets(spec),
                                 0x2};
  std::int64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prober.RunRound(transport, round, round * 660, 0.6));
    ++round;
  }
}
BENCHMARK(BM_ProberRound);

void BM_BlockCampaign14Days(benchmark::State& state) {
  sim::BlockSpec spec;
  spec.block = net::Prefix24::FromIndex(100);
  spec.seed = 0x1;
  spec.n_always = 30;
  spec.n_diurnal = 100;
  spec.response_prob = 0.9F;
  for (auto _ : state) {
    sim::SimTransport transport{3};
    transport.AddBlock(&spec);
    core::BlockAnalyzer analyzer{spec.block, sim::EverActiveOctets(spec),
                                 0.7, 0x5eed, {}};
    analyzer.RunCampaign(transport, 1833);
    benchmark::DoNotOptimize(analyzer.Finish());
  }
}
BENCHMARK(BM_BlockCampaign14Days);

// --- observability ablation -> BENCH_obs.json --------------------------

/// ns/call of `fn` for one batch of `iters` calls.
template <typename Fn>
double BatchNsPerCall(Fn&& fn, int iters) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::nano>(elapsed).count() / iters;
}

double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

std::string FormatFixed(double value, int decimals) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(decimals);
  out << value;
  return out.str();
}

/// One loopback GET /metrics against the admin server, response drained
/// and discarded. Returns false when the connection fails.
bool ScrapeMetricsOnce(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  bool ok = false;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    constexpr char kRequest[] =
        "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
    ok = ::write(fd, kRequest, sizeof(kRequest) - 1) ==
         static_cast<ssize_t>(sizeof(kRequest) - 1);
    char buf[4096];
    while (::read(fd, buf, sizeof(buf)) > 0) {
    }
  }
  ::close(fd);
  return ok;
}

/// Times ClassifyDiurnal (the analyze hot path: Bluestein FFT + spectral
/// classification of a 14-day series) bare, through a null obs::Context,
/// and fully instrumented, and writes the ablation as JSON.
int WriteObsAblation(const std::string& path) {
  const auto series = MakeSeries(1833);
  const int repeats = 15;
  const int iters = 40;

  const obs::Context null_context;
  obs::Registry registry;
  obs::Tracer tracer;
  obs::Logger logger;
  const obs::Context full_context{&logger, &registry, &tracer};

  const auto bare = [&] {
    benchmark::DoNotOptimize(core::ClassifyDiurnal(series, 14));
  };
  const auto with_null = [&] {
    benchmark::DoNotOptimize(
        core::ClassifyDiurnal(series, 14, {}, &null_context));
  };
  const auto with_sinks = [&] {
    benchmark::DoNotOptimize(
        core::ClassifyDiurnal(series, 14, {}, &full_context));
  };

  // Warm-up, then interleave the three variants within every repeat so
  // slow machine-level drift (thermal, noisy neighbours) cancels out of
  // the comparison instead of biasing whichever variant ran last.
  bare();
  with_null();
  with_sinks();
  std::vector<double> baseline_samples;
  std::vector<double> null_samples;
  std::vector<double> instrumented_samples;
  for (int r = 0; r < repeats; ++r) {
    baseline_samples.push_back(BatchNsPerCall(bare, iters));
    null_samples.push_back(BatchNsPerCall(with_null, iters));
    instrumented_samples.push_back(BatchNsPerCall(with_sinks, iters));
  }
  const double baseline_ns = Median(std::move(baseline_samples));
  const double null_ns = Median(std::move(null_samples));
  const double instrumented_ns = Median(std::move(instrumented_samples));

  // Admin-attached variant: the same fully instrumented workload while
  // an AdminServer over the same registry/tracer is scraped from another
  // thread every ~1 ms — orders of magnitude harder than any real
  // Prometheus cadence, so this bounds what attaching the admin plane
  // can cost the hot path without degenerating into a pure scheduler
  // interference bench.
  core::StatusHub status_hub;
  serve::AdminServer admin;
  serve::AdminPlane plane;
  plane.metrics = &registry;
  plane.tracer = &tracer;
  plane.status = &status_hub;
  serve::InstallAdminRoutes(admin, plane);
  const bool admin_attached = admin.Start(0, nullptr);
  double admin_ns = 0.0;
  std::uint64_t admin_scrapes = 0;
  if (admin_attached) {
    std::atomic<bool> stop_scraper{false};
    std::thread scraper{[&] {
      while (!stop_scraper.load(std::memory_order_relaxed)) {
        if (ScrapeMetricsOnce(admin.port())) ++admin_scrapes;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }};
    with_sinks();  // warm again under contention
    std::vector<double> admin_samples;
    for (int r = 0; r < repeats; ++r) {
      admin_samples.push_back(BatchNsPerCall(with_sinks, iters));
    }
    admin_ns = Median(std::move(admin_samples));
    stop_scraper.store(true, std::memory_order_relaxed);
    scraper.join();
    admin.Stop();
  }

  const auto overhead_pct = [&](double ns) {
    return baseline_ns > 0.0 ? (ns - baseline_ns) / baseline_ns * 100.0 : 0.0;
  };
  const double null_overhead = overhead_pct(null_ns);
  const double instrumented_overhead = overhead_pct(instrumented_ns);
  const double admin_overhead = admin_attached ? overhead_pct(admin_ns) : 0.0;
  // Scrape interference is scheduler-dominated and noisy on shared
  // runners, so the admin contract is a coarse same-machine budget (like
  // checkpoint_io's durability gate), not a drift bound: being watched
  // this hard may not cost the hot path more than half its throughput.
  constexpr double kAdminBudgetPct = 50.0;

  std::ofstream out{path, std::ios::trunc};
  if (!out) {
    std::cerr << "micro_perf: cannot write " << path << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"classify_diurnal_14day_1833_samples\",\n"
      << "  \"repeats\": " << repeats << ",\n"
      << "  \"iters_per_repeat\": " << iters << ",\n"
      << "  \"baseline_ns_per_call\": " << FormatFixed(baseline_ns, 1)
      << ",\n"
      << "  \"null_context_ns_per_call\": " << FormatFixed(null_ns, 1)
      << ",\n"
      << "  \"instrumented_ns_per_call\": "
      << FormatFixed(instrumented_ns, 1) << ",\n"
      << "  \"null_context_overhead_pct\": "
      << FormatFixed(null_overhead, 2) << ",\n"
      << "  \"instrumented_overhead_pct\": "
      << FormatFixed(instrumented_overhead, 2) << ",\n"
      << "  \"admin_attached\": " << (admin_attached ? "true" : "false")
      << ",\n"
      << "  \"admin_attached_ns_per_call\": " << FormatFixed(admin_ns, 1)
      << ",\n"
      << "  \"admin_attached_overhead_pct\": "
      << FormatFixed(admin_overhead, 2) << ",\n"
      << "  \"admin_scrapes_during_bench\": " << admin_scrapes << ",\n"
      << "  \"admin_overhead_budget_pct\": "
      << FormatFixed(kAdminBudgetPct, 1) << ",\n"
      << "  \"admin_within_budget\": "
      << (!admin_attached || admin_overhead < kAdminBudgetPct ? "true"
                                                              : "false")
      << ",\n"
      << "  \"budget_pct\": 2.0,\n"
      << "  \"null_context_within_budget\": "
      << (null_overhead < 2.0 ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "obs ablation: baseline " << FormatFixed(baseline_ns, 0)
            << " ns, null-context " << FormatFixed(null_ns, 0) << " ns ("
            << FormatFixed(null_overhead, 2) << "%), instrumented "
            << FormatFixed(instrumented_ns, 0) << " ns ("
            << FormatFixed(instrumented_overhead, 2) << "%), admin-attached "
            << FormatFixed(admin_ns, 0) << " ns ("
            << FormatFixed(admin_overhead, 2) << "%, " << admin_scrapes
            << " scrapes) -> " << path << "\n";
  return 0;
}

}  // namespace
}  // namespace sleepwalk

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::string path = "BENCH_obs.json";
  if (const char* env = std::getenv("SLEEPWALK_BENCH_OBS_OUT")) path = env;
  if (path.empty()) return 0;  // ablation disabled
  return sleepwalk::WriteObsAblation(path);
}
