// Micro-benchmarks (google-benchmark): throughput of the hot paths —
// FFT variants vs Goertzel, the availability estimator, the adaptive
// prober, and end-to-end block analysis. Quantifies the Goertzel-vs-FFT
// tradeoff called out in DESIGN.md §5.
#include <benchmark/benchmark.h>

#include <vector>

#include "sleepwalk/core/block_analyzer.h"
#include "sleepwalk/core/quick_screen.h"
#include "sleepwalk/fft/fft.h"
#include "sleepwalk/fft/goertzel.h"
#include "sleepwalk/fft/spectrum.h"
#include "sleepwalk/sim/block.h"
#include "sleepwalk/util/rng.h"

namespace sleepwalk {
namespace {

std::vector<double> MakeSeries(std::size_t n) {
  Rng rng{42};
  std::vector<double> series(n);
  for (std::size_t i = 0; i < n; ++i) {
    series[i] = 0.5 + 0.3 * ((i % 131) < 50 ? 1.0 : -1.0) +
                0.05 * rng.NextGaussian();
  }
  return series;
}

void BM_FftPowerOfTwo(benchmark::State& state) {
  const auto series = MakeSeries(2048);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::ForwardReal(series));
  }
}
BENCHMARK(BM_FftPowerOfTwo);

void BM_FftBluestein14Day(benchmark::State& state) {
  const auto series = MakeSeries(1833);  // 14 days of 11-min rounds
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::ForwardReal(series));
  }
}
BENCHMARK(BM_FftBluestein14Day);

void BM_FftBluestein35Day(benchmark::State& state) {
  const auto series = MakeSeries(4582);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::ForwardReal(series));
  }
}
BENCHMARK(BM_FftBluestein35Day);

void BM_GoertzelDailyBinOnly(benchmark::State& state) {
  const auto series = MakeSeries(4582);
  for (auto _ : state) {
    // Detection-only workload: daily bin + neighbour + first harmonic.
    benchmark::DoNotOptimize(fft::Goertzel(series, 35));
    benchmark::DoNotOptimize(fft::Goertzel(series, 36));
    benchmark::DoNotOptimize(fft::Goertzel(series, 70));
  }
}
BENCHMARK(BM_GoertzelDailyBinOnly);

void BM_SpectrumAndClassify(benchmark::State& state) {
  const auto series = MakeSeries(1833);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ClassifyDiurnal(series, 14));
  }
}
BENCHMARK(BM_SpectrumAndClassify);

void BM_QuickScreen(benchmark::State& state) {
  // The O(n) Goertzel prefilter vs the full classify above: the
  // two-stage triage saves the FFT on clearly non-diurnal blocks.
  const auto series = MakeSeries(1833);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::QuickDiurnalScreen(series, 14));
  }
}
BENCHMARK(BM_QuickScreen);

void BM_AvailabilityEstimatorObserve(benchmark::State& state) {
  core::AvailabilityEstimator estimator{0.5};
  Rng rng{7};
  for (auto _ : state) {
    estimator.Observe(rng.NextBool(0.6) ? 1 : 0,
                      1 + static_cast<int>(rng.NextBelow(15)));
    benchmark::DoNotOptimize(estimator.Operational());
  }
}
BENCHMARK(BM_AvailabilityEstimatorObserve);

void BM_ProberRound(benchmark::State& state) {
  sim::BlockSpec spec;
  spec.block = net::Prefix24::FromIndex(100);
  spec.seed = 0x1;
  spec.n_always = 30;
  spec.n_diurnal = 100;
  spec.response_prob = 0.9F;
  sim::SimTransport transport{3};
  transport.AddBlock(&spec);
  probing::AdaptiveProber prober{spec.block, sim::EverActiveOctets(spec),
                                 0x2};
  std::int64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prober.RunRound(transport, round, round * 660, 0.6));
    ++round;
  }
}
BENCHMARK(BM_ProberRound);

void BM_BlockCampaign14Days(benchmark::State& state) {
  sim::BlockSpec spec;
  spec.block = net::Prefix24::FromIndex(100);
  spec.seed = 0x1;
  spec.n_always = 30;
  spec.n_diurnal = 100;
  spec.response_prob = 0.9F;
  for (auto _ : state) {
    sim::SimTransport transport{3};
    transport.AddBlock(&spec);
    core::BlockAnalyzer analyzer{spec.block, sim::EverActiveOctets(spec),
                                 0.7, 0x5eed, {}};
    analyzer.RunCampaign(transport, 1833);
    benchmark::DoNotOptimize(analyzer.Finish());
  }
}
BENCHMARK(BM_BlockCampaign14Days);

}  // namespace
}  // namespace sleepwalk

BENCHMARK_MAIN();
