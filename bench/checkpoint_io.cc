// Durable-storage cost of the crash-safe checkpoint layer.
//
// Two measurements:
//   * raw SLCK v2 throughput — encode / decode / rotated store-save of a
//     synthetic checkpoint at 10k and 100k completed blocks (the paper's
//     survey is 3.7M blocks; per-record cost is flat, so these sizes
//     extrapolate);
//   * durability overhead — the same simulated campaign run with and
//     without checkpointing (storage::MemEnv, so the number isolates
//     serialization + store cost from disk variance). The contract is
//     that durability costs < 10% of campaign wall time.
//
// Writes BENCH_ckpt.json (override with SLEEPWALK_BENCH_CKPT_OUT, empty
// to skip). The committed copy at the repo root is the baseline
// scripts/bench_gate.sh checks in CI; regenerate on quiet hardware with
//   SLEEPWALK_BENCH_CKPT_OUT=BENCH_ckpt.json build/bench/checkpoint_io
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "sleepwalk/core/checkpoint.h"
#include "sleepwalk/core/supervisor.h"
#include "sleepwalk/probing/scheduler.h"
#include "sleepwalk/sim/world.h"
#include "sleepwalk/storage/file.h"

namespace sleepwalk {
namespace {

constexpr double kBudgetPct = 10.0;  // durability may cost < 10% wall time

double Seconds(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// A checkpoint shaped like a campaign `records` blocks in: every
/// completed analysis carries a week of 660 s availability samples.
core::Checkpoint SyntheticCheckpoint(int records) {
  core::Checkpoint checkpoint;
  checkpoint.fingerprint = 0xbe7c;
  checkpoint.next_block = static_cast<std::uint64_t>(records);
  checkpoint.completed.reserve(static_cast<std::size_t>(records));
  for (int i = 0; i < records; ++i) {
    core::BlockAnalysis analysis;
    analysis.block = net::Prefix24::FromIndex(static_cast<std::uint32_t>(i));
    analysis.ever_active = 64 + i % 128;
    analysis.probed = true;
    analysis.short_series.first_round = 0;
    analysis.short_series.values.resize(36);
    for (std::size_t s = 0; s < analysis.short_series.values.size(); ++s) {
      analysis.short_series.values[s] =
          0.5 + 0.4 * static_cast<double>((s * 131 + static_cast<std::size_t>(
                                                         i)) %
                                          100) /
                    100.0;
    }
    checkpoint.completed.push_back(std::move(analysis));
  }
  checkpoint.stats.checkpoints_written = 1;
  return checkpoint;
}

struct Throughput {
  int records = 0;
  std::size_t bytes = 0;
  double encode_mb_per_sec = 0.0;
  double decode_mb_per_sec = 0.0;
  double save_mb_per_sec = 0.0;  // EncodeCheckpoint + rotated store save
};

Throughput MeasureThroughput(int records) {
  Throughput result;
  result.records = records;
  auto checkpoint = SyntheticCheckpoint(records);

  constexpr int kRepeats = 3;  // best-of to damp scheduler noise
  std::vector<std::uint8_t> bytes;
  double best = 0.0;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    const auto start = std::chrono::steady_clock::now();
    bytes = core::EncodeCheckpoint(checkpoint);
    const double sec = Seconds(start);
    if (repeat == 0 || sec < best) best = sec;
  }
  result.bytes = bytes.size();
  const double mb = static_cast<double>(bytes.size()) / (1024.0 * 1024.0);
  result.encode_mb_per_sec = best > 0.0 ? mb / best : 0.0;

  best = 0.0;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    const auto start = std::chrono::steady_clock::now();
    const auto decoded = core::DecodeCheckpoint(bytes);
    const double sec = Seconds(start);
    if (!decoded.has_value()) {
      std::cerr << "checkpoint_io: synthetic checkpoint failed to decode\n";
      std::exit(1);
    }
    if (repeat == 0 || sec < best) best = sec;
  }
  result.decode_mb_per_sec = best > 0.0 ? mb / best : 0.0;

  storage::MemEnv env;
  core::CheckpointStore store{env, "/bench/ck.slck", 3};
  best = 0.0;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    checkpoint.stats.checkpoints_written =
        static_cast<std::uint64_t>(repeat + 1);  // exercises rotation
    const auto start = std::chrono::steady_clock::now();
    const auto error = store.Save(checkpoint);
    const double sec = Seconds(start);
    if (!error.ok()) {
      std::cerr << "checkpoint_io: save failed: " << error.ToString() << "\n";
      std::exit(1);
    }
    if (repeat == 0 || sec < best) best = sec;
  }
  result.save_mb_per_sec = best > 0.0 ? mb / best : 0.0;
  return result;
}

/// Campaign wall time with checkpointing on (saves into a MemEnv
/// through the rotating store, at the documented stride) vs off,
/// best-of-2 each. A simulated campaign compresses 660 s probing rounds
/// into microseconds, so per-block saves would be measured against an
/// unrealistically fast denominator; the stride is the knob the budget
/// contract is stated for (see checkpoint_every_blocks in supervisor.h).
double DurabilityOverheadPct(const sim::SimWorld& world,
                             std::int64_t n_rounds, int stride) {
  std::vector<core::BlockTarget> targets;
  targets.reserve(world.blocks().size());
  for (const auto& block : world.blocks()) {
    targets.push_back(bench::TargetFor(block));
  }

  auto run = [&](bool durable) {
    double best = 0.0;
    constexpr int kRepeats = 2;
    for (int repeat = 0; repeat < kRepeats; ++repeat) {
      storage::MemEnv env;
      core::SupervisorConfig config;
      config.seed = 7;
      if (durable) {
        config.checkpoint_path = "/bench/campaign.slck";
        config.checkpoint_keep = 3;
        config.checkpoint_every_blocks = stride;
        config.env = &env;
      }
      auto transport = world.MakeTransport(11);
      auto copy = targets;
      const auto start = std::chrono::steady_clock::now();
      const auto outcome = core::RunResilientCampaign(std::move(copy),
                                                      *transport, n_rounds,
                                                      config);
      const double sec = Seconds(start);
      if (durable && outcome.stats.checkpoints_written == 0) {
        std::cerr << "checkpoint_io: durable campaign wrote no checkpoints\n";
        std::exit(1);
      }
      if (repeat == 0 || sec < best) best = sec;
    }
    return best;
  };

  const double plain_sec = run(false);
  const double durable_sec = run(true);
  return plain_sec > 0.0 ? (durable_sec - plain_sec) / plain_sec * 100.0
                         : 0.0;
}

int Run() {
  const int unit = bench::BlocksScale(10'000);
  const int campaign_blocks = std::min(400, std::max(50, unit / 25));
  const int days = bench::DaysScale(6);

  bench::PrintHeader(
      "checkpoint_io: SLCK v2 encode/decode/save throughput + durability tax",
      "internal CI gate (not a paper figure): crash safety must cost < 10% "
      "of campaign wall time");

  const Throughput small = MeasureThroughput(unit);
  const Throughput large = MeasureThroughput(10 * unit);
  for (const auto& t : {small, large}) {
    std::cout << "records " << t.records << ": " << t.bytes << " bytes, "
              << "encode " << t.encode_mb_per_sec << " MB/s, decode "
              << t.decode_mb_per_sec << " MB/s, store-save "
              << t.save_mb_per_sec << " MB/s\n";
  }

  sim::WorldConfig world_config;
  world_config.total_blocks = campaign_blocks;
  world_config.seed = 23;
  const auto world = sim::SimWorld::Generate(world_config);
  core::AnalyzerConfig analyzer;
  const probing::RoundScheduler scheduler{analyzer.schedule};
  const auto n_rounds = scheduler.RoundsForDays(days);

  const int stride = std::max(1, campaign_blocks / 2);
  const double overhead_pct =
      DurabilityOverheadPct(world, n_rounds, stride);
  const bool within_budget = overhead_pct < kBudgetPct;
  std::cout << "durability overhead: " << overhead_pct << "% of campaign "
            << "wall time (" << campaign_blocks << " blocks, " << n_rounds
            << " rounds/block, save stride " << stride
            << " blocks; budget < " << kBudgetPct << "%)\n";

  std::string path = "BENCH_ckpt.json";
  if (const char* env = std::getenv("SLEEPWALK_BENCH_CKPT_OUT")) {
    path = env;
  }
  if (!path.empty()) {
    std::ofstream out{path, std::ios::trunc};
    out << "{\n"
        << "  \"bench\": \"checkpoint_io\",\n"
        << "  \"records_small\": " << small.records << ",\n"
        << "  \"records_large\": " << large.records << ",\n"
        << "  \"checkpoint_bytes_large\": " << large.bytes << ",\n"
        << "  \"encode_mb_per_sec_large\": " << large.encode_mb_per_sec
        << ",\n"
        << "  \"decode_mb_per_sec_large\": " << large.decode_mb_per_sec
        << ",\n"
        << "  \"save_mb_per_sec_large\": " << large.save_mb_per_sec << ",\n"
        << "  \"campaign_blocks\": " << campaign_blocks << ",\n"
        << "  \"checkpoint_every_blocks\": " << stride << ",\n"
        << "  \"durability_overhead_pct\": " << overhead_pct << ",\n"
        << "  \"durability_budget_pct\": " << kBudgetPct << ",\n"
        << "  \"durability_within_budget\": "
        << (within_budget ? "true" : "false") << "\n"
        << "}\n";
    if (!out) {
      std::cerr << "checkpoint_io: cannot write " << path << "\n";
      return 1;
    }
    std::cout << "wrote " << path << "\n";
  }
  // The budget is a contract about full-scale runs on quiet hardware
  // (scripts/bench_gate.sh reads durability_within_budget from the
  // JSON). A scaled-down smoke run shares the machine with the rest of
  // the test suite, so its timing ratio is noise — report but don't
  // fail on it.
  const bool scaled_down = std::getenv("SLEEPWALK_BLOCKS") != nullptr;
  return (within_budget || scaled_down) ? 0 : 1;
}

}  // namespace
}  // namespace sleepwalk

int main() { return sleepwalk::Run(); }
