// Figure 14: when does the Internet sleep — FFT phase vs longitude.
//
//   (a) density of unrolled phase vs longitude for strictly diurnal,
//       geolocatable blocks: correlation 0.835;
//   (b) the same for relaxed diurnal blocks: correlation 0.763;
//   (c) phase -> longitude predictor: mean +/- stddev of longitude per
//       phase bin (most phases predict longitude within ~20 degrees).
//
// The paper also notes a flat stripe at 100-140E: China's single civil
// timezone across a geographically wide country. Our simulator phases
// behaviour by civil timezone, so the same stripe appears.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <numbers>

#include "common.h"
#include "sleepwalk/geo/geodb.h"
#include "sleepwalk/geo/region.h"
#include "sleepwalk/report/chart.h"
#include "sleepwalk/report/table.h"
#include "sleepwalk/stats/descriptive.h"
#include "sleepwalk/stats/histogram.h"

namespace sleepwalk {
namespace {

struct PhaseSample {
  double longitude;
  double unrolled_phase;
};

void Density(const std::vector<PhaseSample>& samples, const char* title) {
  stats::Histogram2d density{-180.0, 180.0, 60, -std::numbers::pi - 1.0,
                             std::numbers::pi + 1.0, 24};
  for (const auto& sample : samples) {
    density.Add(sample.longitude, sample.unrolled_phase);
  }
  std::vector<std::vector<double>> cells(24, std::vector<double>(60));
  for (std::size_t y = 0; y < 24; ++y) {
    for (std::size_t x = 0; x < 60; ++x) {
      cells[y][x] = static_cast<double>(density.count(x, y));
    }
  }
  report::PrintDensityGrid(std::cout, cells, title);
}

double Analyze(const std::vector<PhaseSample>& samples, const char* label,
               double paper_r) {
  std::vector<double> longitudes;
  std::vector<double> phases;
  for (const auto& sample : samples) {
    longitudes.push_back(sample.longitude);
    phases.push_back(sample.unrolled_phase);
  }
  const double r = stats::PearsonCorrelation(longitudes, phases);
  std::cout << label << ": " << samples.size()
            << " blocks, r(unrolled phase, longitude) = "
            << report::Fixed(r, 3) << "   [paper: "
            << report::Fixed(paper_r, 3) << "]\n";
  return r;
}

}  // namespace
}  // namespace sleepwalk

int main() {
  using namespace sleepwalk;
  const int n_blocks = bench::BlocksScale(6000);
  const int days = bench::DaysScale(10);
  bench::PrintHeader(
      "Figure 14: FFT phase vs longitude of diurnal blocks",
      "unrolled phase tracks longitude: r = 0.835 (strict), 0.763 "
      "(relaxed); most phases predict longitude within ~20 degrees");

  sim::WorldConfig config;
  config.total_blocks = n_blocks;
  config.seed = 0xf14;
  const auto world = sim::SimWorld::Generate(config);
  const auto geodb = geo::GeoDatabase::FromTruth(world.TrueLocations(),
                                                 geo::GeoDatabase::Options{});
  const auto result = bench::RunWorldCampaign(world, days, 0xf14);

  std::vector<PhaseSample> strict_samples;
  std::vector<PhaseSample> relaxed_samples;  // strict or relaxed
  for (std::size_t i = 0; i < world.blocks().size(); ++i) {
    const auto& analysis = result.analyses[i];
    if (!analysis.probed || !analysis.diurnal.IsDiurnal()) continue;
    const auto* record = geodb.Lookup(world.blocks()[i].spec.block);
    if (record == nullptr) continue;
    const PhaseSample sample{
        record->longitude,
        geo::UnrollPhase(analysis.diurnal.phase, record->longitude)};
    relaxed_samples.push_back(sample);
    if (analysis.diurnal.IsStrict()) strict_samples.push_back(sample);
  }

  Density(strict_samples,
          "Fig 14a density: x = longitude (-180..180), y = unrolled "
          "phase (strict diurnal)");
  const double r_strict = Analyze(strict_samples, "Fig 14a (strict)", 0.835);
  std::cout << "\n";
  Density(relaxed_samples,
          "Fig 14b density: same, strict + relaxed diurnal");
  const double r_relaxed =
      Analyze(relaxed_samples, "Fig 14b (relaxed)", 0.763);
  (void)r_strict;
  (void)r_relaxed;

  // Fig 14c: phase -> longitude predictor from the relaxed set.
  std::cout << "\nFig 14c: longitude predicted from phase (relaxed set):\n";
  constexpr int kPhaseBins = 12;
  std::vector<std::vector<double>> by_phase(kPhaseBins);
  for (const auto& sample : relaxed_samples) {
    const double wrapped = geo::WrapAngle(sample.unrolled_phase);
    auto bin = static_cast<int>((wrapped + std::numbers::pi) /
                                (2.0 * std::numbers::pi) * kPhaseBins);
    bin = std::clamp(bin, 0, kPhaseBins - 1);
    by_phase[static_cast<std::size_t>(bin)].push_back(sample.longitude);
  }
  report::TextTable predictor{{"phase bin (rad)", "n", "mean lon (deg)",
                               "stddev (deg)"}};
  for (int b = 0; b < kPhaseBins; ++b) {
    const auto& lons = by_phase[static_cast<std::size_t>(b)];
    const double lo = -std::numbers::pi +
                      2.0 * std::numbers::pi * b / kPhaseBins;
    const double hi = lo + 2.0 * std::numbers::pi / kPhaseBins;
    if (lons.size() < 5) {
      predictor.AddRow({"[" + report::Fixed(lo, 2) + "," +
                            report::Fixed(hi, 2) + ")",
                        std::to_string(lons.size()), "-", "-"});
      continue;
    }
    predictor.AddRow({"[" + report::Fixed(lo, 2) + "," +
                          report::Fixed(hi, 2) + ")",
                      std::to_string(lons.size()),
                      report::Fixed(stats::Mean(lons), 1),
                      report::Fixed(stats::StdDev(lons), 1)});
  }
  predictor.Print(std::cout);

  // The China stripe: blocks geolocated at 100-140E share one civil
  // timezone, flattening phase across 40 degrees of longitude.
  std::vector<double> china_phase;
  for (const auto& sample : relaxed_samples) {
    if (sample.longitude >= 100.0 && sample.longitude <= 125.0) {
      china_phase.push_back(sample.unrolled_phase);
    }
  }
  if (china_phase.size() > 20) {
    std::cout << "\nphase stddev within 100E-125E: "
              << report::Fixed(stats::StdDev(china_phase), 3)
              << " rad across 25 degrees of longitude (single-timezone "
                 "China flattens the fit, as the paper observes)\n";
  }
  return 0;
}
