// Table 4: fraction of diurnal blocks grouped by world region.
//
// Paper: Northern America 0.002, Southern Africa 0.011, W. Europe
// 0.011, ..., Eastern Asia 0.279, Central Asia 0.401 — an order-of-
// magnitude gradient from always-on to diurnal regions.
#include <algorithm>
#include <array>
#include <iostream>

#include "common.h"
#include "sleepwalk/geo/geodb.h"
#include "sleepwalk/report/table.h"
#include "sleepwalk/world/economics.h"

int main() {
  using namespace sleepwalk;
  const int n_blocks = bench::BlocksScale(6000);
  const int days = bench::DaysScale(10);
  bench::PrintHeader(
      "Table 4: fraction of diurnal blocks by region",
      "Northern America 0.002 ... Eastern Asia 0.279, Central Asia "
      "0.401");

  sim::WorldConfig config;
  config.total_blocks = n_blocks;
  config.seed = 0x7ab1e4;
  config.min_blocks_per_country = 40;
  const auto world = sim::SimWorld::Generate(config);
  const auto geodb = geo::GeoDatabase::FromTruth(world.TrueLocations(),
                                                 geo::GeoDatabase::Options{});
  const auto result = bench::RunWorldCampaign(world, days, 0x7ab1e4);

  struct RegionStats {
    std::int64_t blocks = 0;
    std::int64_t diurnal = 0;
  };
  std::array<RegionStats, world::kRegionCount> stats{};
  for (std::size_t i = 0; i < world.blocks().size(); ++i) {
    const auto& analysis = result.analyses[i];
    if (!analysis.probed || analysis.observed_days < 2) continue;
    const auto* record = geodb.Lookup(world.blocks()[i].spec.block);
    if (record == nullptr) continue;
    const auto* info = world::FindCountry(record->country_code);
    if (info == nullptr) continue;
    auto& entry = stats[static_cast<std::size_t>(info->region)];
    ++entry.blocks;
    if (analysis.diurnal.IsStrict()) ++entry.diurnal;
  }

  struct Row {
    world::Region region;
    std::int64_t blocks;
    double fraction;
  };
  std::vector<Row> rows;
  for (int r = 0; r < world::kRegionCount; ++r) {
    const auto& entry = stats[static_cast<std::size_t>(r)];
    if (entry.blocks == 0) continue;
    rows.push_back({static_cast<world::Region>(r), entry.blocks,
                    static_cast<double>(entry.diurnal) /
                        static_cast<double>(entry.blocks)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.fraction < b.fraction; });

  report::TextTable table{{"region", "blocks (/24s)", "frac. diurnal"}};
  for (const auto& row : rows) {
    table.AddRow({std::string{world::RegionName(row.region)},
                  report::WithCommas(row.blocks),
                  report::Fixed(row.fraction, 4)});
  }
  table.Print(std::cout);

  // The headline ordering claims.
  const auto fraction_of = [&rows](world::Region region) {
    for (const auto& row : rows) {
      if (row.region == region) return row.fraction;
    }
    return 0.0;
  };
  const double north_america = fraction_of(world::Region::kNorthernAmerica);
  const double eastern_asia = fraction_of(world::Region::kEasternAsia);
  const double central_asia = fraction_of(world::Region::kCentralAsia);
  std::cout << "Northern America " << report::Fixed(north_america, 4)
            << " [paper 0.002] vs Eastern Asia "
            << report::Fixed(eastern_asia, 3)
            << " [paper 0.279] vs Central Asia "
            << report::Fixed(central_asia, 3) << " [paper 0.401]"
            << ((eastern_asia > 10 * north_america)
                    ? "  -> gradient reproduced"
                    : "  -> gradient NOT reproduced")
            << "\n";
  return 0;
}
