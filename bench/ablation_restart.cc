// Ablation: prober restart policy (paper §4, Fig 10's artifact).
//
// "This periodicity is a probing artifact, because we restart our
//  probing software every 5.5 hours (4.3 times per day) to recover from
//  possible prober failure. Our measurements starting in 2014-04
//  (A_16all) use restart times around one week to reduce this effect."
//
// We run the same world under three restart policies — every 5.5 hours
// (A_12w), weekly (A_16all), and never — and measure how much spectral
// mass lands at the restart frequency and whether diurnal conclusions
// shift.
#include <iostream>

#include "common.h"
#include "sleepwalk/report/table.h"

int main() {
  using namespace sleepwalk;
  const int n_blocks = bench::BlocksScale(1200);
  const int days = bench::DaysScale(14);
  bench::PrintHeader(
      "Ablation: prober restart policy vs spectral artifact",
      "5.5-h restarts put ~3% of blocks' strongest frequency at 4.36 "
      "cycles/day; weekly restarts (A_16all) remove the artifact");

  sim::WorldConfig world_config;
  world_config.total_blocks = n_blocks;
  world_config.seed = 0xab1a7;
  const auto world = sim::SimWorld::Generate(world_config);

  struct Policy {
    const char* name;
    std::int64_t restart_rounds;
  };
  const Policy policies[] = {
      {"every 5.5 h (A_12w)", 30},
      {"weekly (A_16all)", 916},
      {"never", 0},
  };

  report::TextTable table{{"restart policy", "blocks", "artifact @4.4c/d",
                           "strict diurnal", "strongest @1c/d"}};
  for (const auto& policy : policies) {
    core::AnalyzerConfig config;
    config.schedule.restart_every_rounds = policy.restart_rounds;
    const auto result =
        bench::RunWorldCampaign(world, days, 0xab1a7, config);

    std::int64_t analyzed = 0;
    std::int64_t artifact = 0;
    std::int64_t strict = 0;
    std::int64_t daily = 0;
    for (const auto& analysis : result.analyses) {
      if (!analysis.probed || analysis.observed_days < 2) continue;
      ++analyzed;
      const double cycles = analysis.diurnal.strongest_cycles_per_day;
      if (cycles >= 4.1 && cycles <= 4.7) ++artifact;
      if (cycles >= 0.95 && cycles <= 1.1) ++daily;
      if (analysis.diurnal.IsStrict()) ++strict;
    }
    const auto pct = [analyzed](std::int64_t count) {
      return report::Percent(static_cast<double>(count) /
                                 static_cast<double>(analyzed), 2);
    };
    table.AddRow({policy.name, report::WithCommas(analyzed), pct(artifact),
                  pct(strict), pct(daily)});
  }
  table.Print(std::cout);
  std::cout << "the artifact column should shrink to ~0 under weekly or "
               "no restarts, while strict-diurnal fractions stay put —\n"
               "the artifact pollutes the strongest-frequency CDF "
               "(Fig 10) but not the daily-bin dominance test\n";
  return 0;
}
