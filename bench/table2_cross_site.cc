// Table 2: cross-site stability — the same world measured from two
// observer sites (the paper's A_12w Los Angeles vs A_12j Keio).
//
// Paper: of A_12w's 345,976 strictly diurnal blocks, A_12j finds 85% as
// strictly diurnal and 98.8% as at least relaxed; strong disagreement
// (strict at one site, non-diurnal at the other) ~1.2%.
#include <array>
#include <iostream>

#include "common.h"
#include "sleepwalk/core/agreement.h"
#include "sleepwalk/report/table.h"

int main() {
  using namespace sleepwalk;
  const int n_blocks = bench::BlocksScale(2000);
  const int days = bench::DaysScale(14);
  bench::PrintHeader("Table 2: cross-site agreement (site w vs site j)",
                     "98.8% of strict blocks at least relaxed at the "
                     "other site; ~1.2% strong disagreement");

  sim::WorldConfig config;
  config.total_blocks = n_blocks;
  config.seed = 0x7ab1e2;
  const auto world = sim::SimWorld::Generate(config);

  const auto site_w = bench::RunWorldCampaign(world, days, 0x10ca1);
  const auto site_j = bench::RunWorldCampaign(world, days, 0x6a9a2);

  // The paper's d / e / N matrix, via the library's agreement analysis.
  const auto matrix = core::CompareRuns(site_w.analyses, site_j.analyses);

  report::TextTable table{{"site w \\ site j", "d (strict)", "e (relaxed)",
                           "N (neither)", "all"}};
  const char* row_names[3] = {"d (strict)", "e (relaxed)", "N (neither)"};
  for (int r = 0; r < 3; ++r) {
    std::int64_t row_total = 0;
    std::vector<std::string> cells{row_names[r]};
    for (int c = 0; c < 3; ++c) {
      const auto count = matrix.counts[static_cast<std::size_t>(r)]
                                      [static_cast<std::size_t>(c)];
      cells.push_back(report::WithCommas(count));
      row_total += count;
    }
    cells.push_back(report::WithCommas(row_total));
    table.AddRow(cells);
  }
  table.Print(std::cout);

  if (matrix.StrictAtFirst() > 0) {
    std::cout << "of site w's " << report::WithCommas(matrix.StrictAtFirst())
              << " strict blocks, site j finds:\n"
              << "  strict again:      "
              << report::Percent(matrix.StrictAgain(), 1)
              << "   [paper: 85%]\n"
              << "  at least relaxed:  "
              << report::Percent(matrix.AtLeastRelaxed(), 1)
              << "   [paper: 98.8%]\n"
              << "  non-diurnal:       "
              << report::Percent(matrix.StrongDisagreement(), 1)
              << "   [paper: ~1.2%]\n";
  }
  std::cout << "blocks probed at both sites: "
            << report::WithCommas(matrix.compared) << "\n";
  return 0;
}
