// Ablation: packet loss rate x burstiness vs diurnal conclusions.
//
// §2.1's estimator is built to survive a lossy measurement plane; this
// sweep quantifies how far. The same world is measured through a
// FaultyTransport at increasing loss rates, once i.i.d. and once
// Gilbert-Elliott bursty (matched long-run loss), under the resilient
// supervisor. Bursty loss is the interesting column: the same average
// loss concentrated into multi-round bursts looks like outages, not
// noise, so it erodes verdicts far sooner than the i.i.d. equivalent.
//
// Emits a text table and (always) a CSV block for plotting, one row per
// (loss, burstiness) cell with diurnal counts, probe accounting, and
// recovery counters.
#include <iostream>

#include "common.h"
#include "sleepwalk/core/supervisor.h"
#include "sleepwalk/faults/faulty_transport.h"
#include "sleepwalk/report/resilience.h"
#include "sleepwalk/report/table.h"

int main() {
  using namespace sleepwalk;
  const int n_blocks = bench::BlocksScale(600);
  const int days = bench::DaysScale(10);
  bench::PrintHeader(
      "Ablation: packet loss x burstiness vs diurnal verdicts",
      "adaptive probing absorbs moderate random loss; the same loss "
      "delivered in Gilbert-Elliott bursts mimics outages and flips "
      "verdicts sooner");

  sim::WorldConfig world_config;
  world_config.total_blocks = n_blocks;
  world_config.seed = 0xfa115;
  const auto world = sim::SimWorld::Generate(world_config);

  std::vector<core::BlockTarget> baseline_targets;
  for (const auto& block : world.blocks()) {
    baseline_targets.push_back(bench::TargetFor(block));
  }

  core::SupervisorConfig config;
  const probing::RoundScheduler scheduler{config.analyzer.schedule};
  const auto n_rounds = scheduler.RoundsForDays(days);

  const double loss_rates[] = {0.0, 0.05, 0.10, 0.20, 0.35, 0.50};
  struct Row {
    double loss;
    bool bursty;
    core::CampaignOutcome outcome;
    report::ProbeAccounting probes;
  };
  std::vector<Row> rows;

  for (const double loss : loss_rates) {
    for (const bool bursty : {false, true}) {
      if (bursty && loss == 0.0) continue;
      faults::FaultPlan plan;
      plan.seed = 0xfa115;
      if (bursty) {
        // Gilbert-Elliott with the same long-run loss: bad state drops
        // 80%, transition rates chosen so stationary-bad * 0.8 = loss.
        plan.burst.enabled = true;
        plan.burst.loss_bad = 0.8;
        plan.burst.p_bad_to_good = 0.3;
        const double bad = loss / plan.burst.loss_bad;
        plan.burst.p_good_to_bad =
            bad < 1.0 ? 0.3 * bad / (1.0 - bad) : 1.0;
      } else {
        plan.iid_loss = loss;
      }

      auto inner = world.MakeTransport(0xfa115);
      faults::FaultyTransport transport{*inner, plan};
      auto targets = baseline_targets;
      auto outcome = core::RunResilientCampaign(std::move(targets),
                                                transport, n_rounds, config);
      rows.push_back({loss, bursty, std::move(outcome),
                      transport.accounting()});
    }
  }

  report::TextTable table{{"loss", "model", "strict", "either", "skipped",
                           "down rounds/blk", "probes answered"}};
  for (const auto& row : rows) {
    const auto& counts = row.outcome.result.counts;
    std::int64_t down = 0;
    for (const auto& analysis : row.outcome.result.analyses) {
      down += analysis.down_rounds;
    }
    const double blocks =
        static_cast<double>(row.outcome.result.analyses.size());
    table.AddRow(
        {report::Percent(row.loss, 0), row.bursty ? "bursty" : "iid",
         report::Percent(counts.StrictFraction(), 1),
         report::Percent(counts.EitherFraction(), 1),
         report::WithCommas(counts.skipped),
         report::Fixed(static_cast<double>(down) / blocks, 2),
         report::Percent(static_cast<double>(row.probes.answered) /
                             static_cast<double>(row.probes.sent()),
                         1)});
  }
  table.Print(std::cout);

  std::cout << "\nCSV:\nloss,model,strict,relaxed,non_diurnal,skipped,"
            << report::ResilienceCsvHeader() << "\n";
  for (const auto& row : rows) {
    auto stats = row.outcome.stats;
    stats.probes.Merge(row.probes);
    const auto& counts = row.outcome.result.counts;
    std::cout << row.loss << ',' << (row.bursty ? "bursty" : "iid") << ','
              << counts.strict << ',' << counts.relaxed << ','
              << counts.non_diurnal << ',' << counts.skipped << ','
              << report::ResilienceCsvRow(stats) << "\n";
    if (!stats.probes.Balanced()) {
      std::cout << "WARNING: probe accounting unbalanced at loss "
                << row.loss << "\n";
    }
  }
  std::cout << "bursty rows should show more down-rounds and earlier "
               "verdict erosion than iid rows of equal average loss\n";
  return 0;
}
