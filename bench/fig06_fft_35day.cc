// Figure 6: FFT amplitude for the diurnal sample block 27.186.9/24 over
// the 35-day A_12w-style campaign: a strong daily peak at k = 35
// (N_d = 35 because of the 35-day observation).
#include <iostream>

#include "common.h"
#include "sleepwalk/core/block_analyzer.h"
#include "sleepwalk/fft/spectrum.h"
#include "sleepwalk/report/chart.h"
#include "sleepwalk/report/table.h"

int main() {
  using namespace sleepwalk;
  const int days = bench::DaysScale(35);
  bench::PrintHeader("Figure 6: 35-day FFT of diurnal block 27.186.9/24",
                     "strong diurnal peak at k = 35 (1 cycle/day)");

  sim::BlockSpec spec;
  spec.block = *net::Prefix24::Parse("27.186.9/24");
  spec.seed = 0x0606;
  spec.n_always = 80;
  spec.n_diurnal = 174;
  spec.response_prob = 0.92F;
  spec.on_start_sec = 1.0F * 3600.0F;
  spec.on_duration_sec = 10.0F * 3600.0F;
  spec.phase_spread_sec = 2.5F * 3600.0F;
  spec.sigma_start_sec = 0.7F * 3600.0F;
  spec.sigma_duration_sec = 1.0F * 3600.0F;

  core::AnalyzerConfig config;
  const probing::RoundScheduler scheduler{config.schedule};
  sim::SimTransport transport{0xf06};
  transport.AddBlock(&spec);
  core::BlockAnalyzer analyzer{spec.block, sim::EverActiveOctets(spec),
                               0.8, 0x5eed, config};
  analyzer.RunCampaign(transport, scheduler.RoundsForDays(days));
  const auto analysis = analyzer.Finish();

  const auto spectrum = fft::ComputeSpectrum(analysis.short_series.values);
  std::vector<double> amplitudes(
      spectrum.amplitude.begin(),
      spectrum.amplitude.begin() +
          std::min<std::size_t>(spectrum.size(), 200));
  if (!amplitudes.empty()) amplitudes[0] = 0.0;
  report::PrintSeries(std::cout, amplitudes, 78, 14,
                      "FFT amplitude, bins 0..199 (N_d = " +
                          std::to_string(analysis.observed_days) + ")");

  report::TextTable table{{"bin k", "cycles/day", "amplitude", "note"}};
  const auto n_days = static_cast<std::size_t>(analysis.observed_days);
  for (const std::size_t k :
       {n_days / 2, n_days, n_days + 1, 2 * n_days, 3 * n_days}) {
    if (k == 0 || k >= spectrum.size()) continue;
    std::string note;
    if (k == n_days) note = "<- 1 cycle/day (daily)";
    if (k == 2 * n_days) note = "first harmonic";
    table.AddRow({std::to_string(k),
                  report::Fixed(static_cast<double>(k) /
                                    static_cast<double>(n_days), 2),
                  report::Fixed(spectrum.amplitude[k], 2), note});
  }
  table.Print(std::cout);

  std::cout << "classification: "
            << (analysis.diurnal.IsStrict() ? "strictly diurnal"
                : analysis.diurnal.IsDiurnal() ? "relaxed diurnal"
                                               : "non-diurnal")
            << ", daily bin " << analysis.diurnal.daily_bin
            << "   [paper: strong peak at k = 35]\n";
  return 0;
}
