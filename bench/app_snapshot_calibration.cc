// Application (paper §5.6): calibrating snapshot scans with diurnal
// knowledge.
//
// "one can scan the IPv4 space in tens of minutes to estimate the
//  availability of each /24 block, but this near-snapshot will be
//  representative only for non-diurnal blocks."
//
// We measure a world, build each block's DailyProfile, and quantify the
// error of a one-shot snapshot (taken at a fixed UTC hour) against the
// true daily mean — split by diurnal classification. Diurnal-aware
// calibration (using the profile's range) bounds the error a scanner
// must assume.
#include <iostream>

#include "common.h"
#include "sleepwalk/core/daily_profile.h"
#include "sleepwalk/report/table.h"
#include "sleepwalk/stats/descriptive.h"

int main() {
  using namespace sleepwalk;
  const int n_blocks = bench::BlocksScale(2000);
  const int days = bench::DaysScale(10);
  bench::PrintHeader(
      "Application: snapshot-scan calibration (paper §5.6)",
      "snapshots are representative only for non-diurnal blocks; "
      "diurnal blocks need measurements across times of day");

  sim::WorldConfig config;
  config.total_blocks = n_blocks;
  config.seed = 0xa995;
  const auto world = sim::SimWorld::Generate(config);
  const auto result = bench::RunWorldCampaign(world, days, 0xa995);

  // Snapshot errors by class, for a scan at each of four UTC hours.
  const int snapshot_hours[] = {0, 6, 12, 18};
  struct Bucket {
    std::vector<double> errors[4];
    std::vector<double> ranges;
  };
  Bucket diurnal;
  Bucket steady;
  for (const auto& analysis : result.analyses) {
    if (!analysis.probed || analysis.observed_days < 2) continue;
    const auto profile = core::ComputeDailyProfile(
        analysis.short_series.values);
    auto& bucket = analysis.diurnal.IsStrict() ? diurnal : steady;
    bucket.ranges.push_back(profile.Range());
    for (int h = 0; h < 4; ++h) {
      bucket.errors[h].push_back(profile.SnapshotError(snapshot_hours[h]));
    }
  }

  report::TextTable table{{"block class", "blocks", "daily range (median)",
                           "snapshot err @00", "@06", "@12", "@18"}};
  const auto row = [&table](const char* name, Bucket& bucket) {
    std::vector<std::string> cells{name,
                                   std::to_string(bucket.ranges.size()),
                                   report::Fixed(
                                       stats::Median(bucket.ranges), 3)};
    for (auto& errors : bucket.errors) {
      cells.push_back(report::Fixed(stats::Median(errors), 3));
    }
    table.AddRow(cells);
  };
  row("strictly diurnal", diurnal);
  row("non-diurnal", steady);
  table.Print(std::cout);

  const double diurnal_range = stats::Median(diurnal.ranges);
  const double steady_range = stats::Median(steady.ranges);
  std::cout << "median daily swing: diurnal "
            << report::Fixed(diurnal_range, 3) << " vs non-diurnal "
            << report::Fixed(steady_range, 3)
            << (diurnal_range > 5.0 * steady_range
                    ? "  -> snapshots fine for non-diurnal blocks only, "
                      "as §5.6 argues"
                    : "")
            << "\n"
            << "calibration rule: a scanner should widen a diurnal "
               "block's availability estimate by +/- range/2 and "
               "rescan at another time of day\n";
  return 0;
}
