// Figure 17: fraction of diurnal blocks per access-link keyword,
// inferred from reverse DNS names (§2.3.3).
//
// Paper: 22.4% of blocks classified; dynamic most diurnal (~19%), dsl
// ~11%, while dialup is surprisingly low (< 3%) — "the importance of
// measuring network behavior rather than assuming". The wireless
// keyword is omitted (too few blocks).
#include <array>
#include <iostream>

#include "common.h"
#include "sleepwalk/rdns/classifier.h"
#include "sleepwalk/rdns/dns_resolver.h"
#include "sleepwalk/report/chart.h"
#include "sleepwalk/report/table.h"

int main() {
  using namespace sleepwalk;
  const int n_blocks = bench::BlocksScale(6000);
  const int days = bench::DaysScale(10);
  bench::PrintHeader(
      "Figure 17: diurnal fraction per access-link keyword",
      "dynamic ~19%, dsl ~11%, dialup < 3%; static/server lowest");

  sim::WorldConfig config;
  config.total_blocks = n_blocks;
  config.seed = 0xf17;
  const auto world = sim::SimWorld::Generate(config);
  const auto result = bench::RunWorldCampaign(world, days, 0xf17);

  struct KeywordStats {
    std::int64_t blocks = 0;
    std::int64_t diurnal = 0;
  };
  std::array<KeywordStats, rdns::kKeywordCount> stats{};
  std::int64_t classified = 0;
  std::int64_t multi_feature = 0;
  std::int64_t measured = 0;

  std::uint64_t dns_queries = 0;
  for (std::size_t i = 0; i < world.blocks().size(); ++i) {
    const auto& analysis = result.analyses[i];
    if (!analysis.probed || analysis.observed_days < 2) continue;
    ++measured;
    // Link-type inference uses ONLY the reverse DNS names (never the
    // generator's tech tag), resolved through the real PTR wire path:
    // the block's zone is served by an in-memory authoritative resolver
    // and every name round-trips through query/response packets.
    const auto block = world.blocks()[i].spec.block;
    rdns::InMemoryPtrResolver resolver;
    resolver.AddBlock(block, world.NamesFor(world.blocks()[i]));
    const auto names = rdns::ResolveBlock(resolver, block);
    dns_queries += resolver.queries_served();
    const auto label = rdns::ClassifyBlock(names);
    if (!label.has_any) continue;
    ++classified;
    if (label.multiple) ++multi_feature;
    for (int k = 0; k < rdns::kKeywordCount; ++k) {
      if ((label.label & (1u << k)) == 0) continue;
      auto& entry = stats[static_cast<std::size_t>(k)];
      ++entry.blocks;
      if (analysis.diurnal.IsStrict()) ++entry.diurnal;
    }
  }

  std::cout << "PTR queries resolved on the wire path: "
            << report::WithCommas(static_cast<long long>(dns_queries))
            << "\n";
  std::cout << "blocks with some feature: "
            << report::Percent(static_cast<double>(classified) /
                                   static_cast<double>(measured), 1)
            << " [paper: 46.3% of all; 22.4% after discarding]; "
            << "multiple features: "
            << report::Percent(static_cast<double>(multi_feature) /
                                   static_cast<double>(measured), 1)
            << " [paper: 11.4%]\n\n";

  report::TextTable table{{"keyword", "blocks", "frac. diurnal"}};
  std::vector<report::Bar> bars;
  for (const auto keyword : rdns::KeptKeywords()) {
    const auto& entry = stats[static_cast<std::size_t>(keyword)];
    if (entry.blocks == 0) continue;
    const double fraction = static_cast<double>(entry.diurnal) /
                            static_cast<double>(entry.blocks);
    table.AddRow({std::string{rdns::KeywordText(keyword)},
                  report::WithCommas(entry.blocks),
                  report::Fixed(fraction, 3)});
    bars.push_back({std::string{rdns::KeywordText(keyword)}, fraction});
  }
  table.Print(std::cout);
  report::PrintBarChart(std::cout, bars, 46);

  const auto fraction_of = [&stats](rdns::LinkKeyword keyword) {
    const auto& entry = stats[static_cast<std::size_t>(keyword)];
    return entry.blocks > 0 ? static_cast<double>(entry.diurnal) /
                                  static_cast<double>(entry.blocks)
                            : 0.0;
  };
  const double dyn = fraction_of(rdns::LinkKeyword::kDyn);
  const double dsl = fraction_of(rdns::LinkKeyword::kDsl);
  const double dial = fraction_of(rdns::LinkKeyword::kDial);
  std::cout << "\ndynamic " << report::Percent(dyn, 1) << " [paper ~19%], "
            << "dsl " << report::Percent(dsl, 1) << " [paper ~11%], "
            << "dialup " << report::Percent(dial, 1) << " [paper < 3%]"
            << ((dyn > dsl && dsl > dial) ? "  -> ordering reproduced"
                                          : "  -> ordering differs")
            << "\n";
  return 0;
}
