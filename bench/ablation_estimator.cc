// Ablation (DESIGN.md §5): design choices of the availability estimator.
//
//  1. EWMA of p-hat and t-hat separately vs EWMA of the per-round ratio
//     (the paper's A_12w legacy variant): the ratio variant consistently
//     over-estimates under stop-on-first-positive sampling.
//  2. The operational margin (A-hat_o = A-hat_l - margin * d-hat_l) and
//     its 0.1 floor: sweep the margin and report the under-estimation
//     rate (false-outage pressure) vs the probing cost.
#include <iostream>

#include "common.h"
#include "sleepwalk/core/availability.h"
#include "sleepwalk/probing/prober.h"
#include "sleepwalk/report/table.h"
#include "sleepwalk/sim/block.h"

namespace sleepwalk {
namespace {

// One synthetic Trinocular round at true availability `a`.
struct Round {
  int positives;
  int probes;
};

Round SampleRound(double a, Rng& rng) {
  Round round{0, 0};
  while (round.probes < 15) {
    ++round.probes;
    if (rng.NextBool(a)) {
      round.positives = 1;
      break;
    }
  }
  return round;
}

void EstimatorBiasAblation() {
  std::cout << "\n[1] separate (p-hat, t-hat) EWMA vs ratio EWMA\n";
  report::TextTable table{{"true A", "separate (paper)", "ratio (legacy)",
                           "ratio bias"}};
  for (const double a : {0.1, 0.2, 0.3, 0.5, 0.735, 0.9}) {
    Rng rng{static_cast<std::uint64_t>(a * 1000)};
    core::AvailabilityEstimator separate{a};
    core::RatioEwmaEstimator ratio{a, 0.01};
    for (int i = 0; i < 20000; ++i) {
      const auto round = SampleRound(a, rng);
      separate.Observe(round.positives, round.probes);
      ratio.Observe(round.positives, round.probes);
    }
    table.AddRow({report::Fixed(a, 3),
                  report::Fixed(separate.LongTerm(), 3),
                  report::Fixed(ratio.Value(), 3),
                  report::Fixed(ratio.Value() - a, 3)});
  }
  table.Print(std::cout);
  std::cout << "ratio EWMA overestimates at every A < 1 (worst at low "
               "A); tracking p and t separately is unbiased — the "
               "paper's §2.1.2 correction\n";
}

void OperationalMarginAblation() {
  std::cout << "\n[2] operational margin sweep (A-hat_o = A-hat_l - "
               "m * d-hat_l, floor 0.1)\n";
  report::TextTable table{{"margin m", "P(A-hat_o < A)",
                           "mean probes/round at night",
                           "false-down verdicts"}};
  // A diurnal block: A oscillates 0.2 (night) / 0.9 (day).
  for (const double margin : {0.0, 0.25, 0.5, 1.0}) {
    Rng rng{0xab1a};
    core::AvailabilityConfig config;
    config.deviation_margin = margin;
    core::AvailabilityEstimator estimator{0.5, config};
    probing::BeliefModel belief;
    std::int64_t under = 0;
    std::int64_t rounds = 0;
    std::int64_t night_probes = 0;
    std::int64_t night_rounds = 0;
    std::int64_t false_down = 0;
    for (int round = 0; round < 20000; ++round) {
      const bool night = (round % 131) < 87;  // 16 h night
      const double a = night ? 0.2 : 0.9;
      // Probe with belief inference, as the prober does.
      belief.StartRound();
      int probes = 0;
      int positives = 0;
      bool down = false;
      while (probes < 15) {
        ++probes;
        if (rng.NextBool(a)) {
          positives = 1;
          belief.ObservePositive(estimator.Operational());
          break;
        }
        belief.ObserveNegative(estimator.Operational());
        if (belief.ConclusiveDown()) {
          down = true;
          break;
        }
      }
      estimator.Observe(positives, probes);
      ++rounds;
      if (round > 2000) {
        if (estimator.Operational() < a) ++under;
        if (night) {
          night_probes += probes;
          ++night_rounds;
          if (down) ++false_down;  // the block is up, just diurnal
        }
      }
    }
    table.AddRow({report::Fixed(margin, 2),
                  report::Percent(static_cast<double>(under) /
                                      static_cast<double>(rounds - 2000), 1),
                  report::Fixed(static_cast<double>(night_probes) /
                                    static_cast<double>(night_rounds), 2),
                  report::WithCommas(false_down)});
  }
  table.Print(std::cout);
  std::cout << "larger margins under-estimate more often (fewer false "
               "outages) at the cost of more probes per round; the "
               "paper picks m = 1/2\n";
}

}  // namespace
}  // namespace sleepwalk

int main() {
  sleepwalk::bench::PrintHeader(
      "Ablation: availability-estimator design choices",
      "§2.1.2: ratio-EWMA overestimates; margin m = 1/2 balances "
      "false outages against probing cost");
  sleepwalk::EstimatorBiasAblation();
  sleepwalk::OperationalMarginAblation();
  return 0;
}
