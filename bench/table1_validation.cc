// Table 1: validation of diurnal detection in a survey-style world.
//
// Ground truth = diurnal classification computed from the *true*
// availability series (the survey's full data); prediction = diurnal
// classification from the Trinocular-estimated A-hat_s. Paper (29k
// blocks): precision 82.48%, accuracy 90.99%, with a conservative bias
// (false negatives outnumber false positives).
#include <iostream>

#include "common.h"
#include "sleepwalk/report/table.h"

int main() {
  using namespace sleepwalk;
  const int n_blocks = bench::BlocksScale(2500);
  const int days = bench::DaysScale(14);
  bench::PrintHeader(
      "Table 1: diurnal validation, truth(A) vs prediction(A-hat_s)",
      "precision 82.48%, accuracy 90.99%, conservative (FN > FP)");

  sim::WorldConfig world_config;
  world_config.total_blocks = n_blocks;
  world_config.seed = 0x7ab1e1;
  world_config.outage_fraction = 0.0;
  const auto world = sim::SimWorld::Generate(world_config);

  core::AnalyzerConfig config;
  const probing::RoundScheduler scheduler{config.schedule};
  const auto n_rounds = scheduler.RoundsForDays(days);
  auto transport = world.MakeTransport(0x7ab1);

  std::int64_t dd = 0;  // truth diurnal, predicted diurnal
  std::int64_t nn = 0;  // truth non, predicted non
  std::int64_t dn = 0;  // truth diurnal, predicted non (miss)
  std::int64_t nd = 0;  // truth non, predicted diurnal (false alarm)

  for (const auto& block : world.blocks()) {
    if (block.spec.EverActiveCount() < config.min_ever_active) continue;

    // Ground truth: classify the true availability series.
    const auto truth_series =
        sim::TrueAvailabilitySeries(block.spec, scheduler, n_rounds);
    const auto truth = core::ClassifyDiurnal(
        truth_series, ts::WholeDays(truth_series.size()), config.diurnal);

    // Prediction: classify the estimated series from sparse probing.
    const auto target = bench::TargetFor(block);
    core::BlockAnalyzer analyzer{target.block, target.ever_active,
                                 target.initial_availability,
                                 0x1ab ^ target.block.Index(), config};
    analyzer.RunCampaign(*transport, n_rounds);
    const auto predicted = analyzer.Finish().diurnal;

    const bool truth_d = truth.IsStrict();
    const bool pred_d = predicted.IsStrict();
    if (truth_d && pred_d) ++dd;
    else if (!truth_d && !pred_d) ++nn;
    else if (truth_d) ++dn;
    else ++nd;
  }

  const auto total = dd + nn + dn + nd;
  const double precision =
      dd + nd > 0 ? static_cast<double>(dd) / static_cast<double>(dd + nd)
                  : 0.0;
  const double accuracy =
      total > 0 ? static_cast<double>(dd + nn) / static_cast<double>(total)
                : 0.0;

  report::TextTable table{{"truth (A)", "predicted (A-hat_s)", "blocks",
                           "fraction"}};
  const auto frac = [total](std::int64_t count) {
    return report::Percent(static_cast<double>(count) /
                               static_cast<double>(total), 2);
  };
  table.AddRow({"d (diurnal)", "d", report::WithCommas(dd), frac(dd)});
  table.AddRow({"n (non-diurnal)", "n", report::WithCommas(nn), frac(nn)});
  table.AddRule();
  table.AddRow({"d (miss)", "n", report::WithCommas(dn), frac(dn)});
  table.AddRow({"n (false alarm)", "d", report::WithCommas(nd), frac(nd)});
  table.Print(std::cout);

  std::cout << "precision: " << report::Percent(precision, 2)
            << "   [paper: 82.48%]\n"
            << "accuracy:  " << report::Percent(accuracy, 2)
            << "   [paper: 90.99%]\n"
            << "conservative bias (FN > FP): "
            << (dn > nd ? "yes" : "no") << " (" << dn << " misses vs "
            << nd << " false alarms)   [paper: yes, 6.89% vs 2.12%]\n";
  return 0;
}
