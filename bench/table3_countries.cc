// Table 3: fraction of diurnal blocks for the top-20 countries (with at
// least a minimum number of measured blocks) plus the United States,
// joined with per-capita GDP.
//
// Paper (A_12w + MaxMind + CIA): Armenia 0.630, Georgia 0.546, Belarus
// 0.512, China 0.498, ..., US 0.002; the top-20 all have GDP below
// ~$18k while the US sits at $50,700.
#include <algorithm>
#include <iostream>
#include <map>

#include "common.h"
#include "sleepwalk/geo/geodb.h"
#include "sleepwalk/report/csv.h"
#include "sleepwalk/report/table.h"
#include "sleepwalk/world/economics.h"

int main() {
  using namespace sleepwalk;
  const int n_blocks = bench::BlocksScale(6000);
  const int days = bench::DaysScale(10);
  bench::PrintHeader(
      "Table 3: fraction of diurnal blocks, top 20 countries + US",
      "top-20 led by AM 0.630, GE 0.546, BY 0.512, CN 0.498; US 0.002; "
      "all top-20 GDP < $18,400");

  sim::WorldConfig config;
  config.total_blocks = n_blocks;
  config.seed = 0x7ab1e3;
  config.min_blocks_per_country = 40;  // usable per-country samples
  const auto world = sim::SimWorld::Generate(config);
  const auto geodb = geo::GeoDatabase::FromTruth(world.TrueLocations(),
                                                 geo::GeoDatabase::Options{});
  const auto result = bench::RunWorldCampaign(world, days, 0x7ab1e3);

  // Join measurements with *geolocated* country (never generator truth).
  struct CountryStats {
    std::int64_t blocks = 0;
    std::int64_t diurnal = 0;
  };
  std::map<std::string, CountryStats> stats;
  for (std::size_t i = 0; i < world.blocks().size(); ++i) {
    const auto& analysis = result.analyses[i];
    if (!analysis.probed || analysis.observed_days < 2) continue;
    const auto* record = geodb.Lookup(world.blocks()[i].spec.block);
    if (record == nullptr) continue;
    auto& entry = stats[record->country_code];
    ++entry.blocks;
    if (analysis.diurnal.IsStrict()) ++entry.diurnal;
  }

  struct Row {
    std::string code;
    const world::Country* info;
    std::int64_t blocks;
    double fraction;
  };
  std::vector<Row> rows;
  const std::int64_t min_blocks = 25;
  for (const auto& [code, entry] : stats) {
    const auto* info = world::FindCountry(code);
    if (info == nullptr || entry.blocks < min_blocks) continue;
    rows.push_back({code, info, entry.blocks,
                    static_cast<double>(entry.diurnal) /
                        static_cast<double>(entry.blocks)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.fraction > b.fraction; });

  report::TextTable table{{"country", "region", "blocks (/24s)",
                           "frac. diurnal", "GDP (US$)"}};
  int printed = 0;
  for (const auto& row : rows) {
    if (printed >= 20) break;
    table.AddRow({row.code, std::string{RegionName(row.info->region)},
                  report::WithCommas(row.blocks),
                  report::Fixed(row.fraction, 3),
                  report::WithCommas(
                      static_cast<long long>(row.info->gdp_per_capita_usd))});
    ++printed;
  }
  table.AddRule();
  for (const auto& row : rows) {
    if (row.code != "US") continue;
    table.AddRow({row.code, std::string{RegionName(row.info->region)},
                  report::WithCommas(row.blocks),
                  report::Fixed(row.fraction, 3),
                  report::WithCommas(static_cast<long long>(
                      row.info->gdp_per_capita_usd))});
  }
  table.Print(std::cout);

  // Paper's punchline: the top-20's GDP ceiling vs the US.
  double max_top20_gdp = 0.0;
  for (int i = 0; i < std::min<int>(20, static_cast<int>(rows.size())); ++i) {
    max_top20_gdp = std::max(max_top20_gdp, rows[static_cast<std::size_t>(
                                                i)].info->gdp_per_capita_usd);
  }
  std::cout << "max GDP among top-20 diurnal countries: $"
            << report::WithCommas(static_cast<long long>(max_top20_gdp))
            << "   [paper: $18,400 (AR), vs US $50,700]\n"
            << "(measured-block threshold: " << min_blocks
            << "; paper used >= 1000 at full scale)\n";

  if (const auto path = report::CsvPathFor("table3_countries.csv");
      !path.empty()) {
    report::CsvWriter csv{path};
    csv.WriteRow({"country", "blocks", "frac_diurnal", "gdp"});
    for (const auto& row : rows) {
      csv.WriteRow({row.code, std::to_string(row.blocks),
                    report::Fixed(row.fraction, 4),
                    report::Fixed(row.info->gdp_per_capita_usd, 0)});
    }
  }
  return 0;
}
