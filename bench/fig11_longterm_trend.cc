// Figure 11: fraction of diurnal blocks across 3+ years of survey-scale
// datasets from three sites (w: Los Angeles, c: Colorado, j: Japan).
//
// Paper: the fraction is roughly stable (~10-14%) with a marked decline
// after 2012, as dynamically-addressed space drifts toward always-on
// use. We model the era effect with the world generator's diurnal_scale
// (dynamic pools shifting always-on), then measure each era's world with
// the full pipeline.
#include <iostream>

#include "common.h"
#include "sleepwalk/report/chart.h"
#include "sleepwalk/report/table.h"

namespace {

// Era model: mild rise into 2012, decline afterwards (the paper's
// observed trend envelope, applied to the generator's ground truth).
double EraScale(double year) {
  if (year <= 2012.0) return 0.95 + 0.05 * (year - 2010.0) / 2.0;
  return 1.0 - 0.12 * (year - 2012.0);
}

}  // namespace

int main() {
  using namespace sleepwalk;
  const int n_blocks = bench::BlocksScale(600);
  const int days = bench::DaysScale(14);
  bench::PrintHeader(
      "Figure 11: long-term fraction of diurnal blocks (2010-2013)",
      "roughly stable ~10-14%, marked decline after 2012");

  report::TextTable table{{"survey", "year", "site", "strict diurnal",
                           "strict+relaxed"}};
  std::vector<double> strict_series;
  int survey_number = 30;
  static const char* kSites[] = {"w", "c", "j"};

  for (double year = 2010.0; year <= 2013.51; year += 0.5) {
    const char* site = kSites[survey_number % 3];
    sim::WorldConfig config;
    config.total_blocks = n_blocks;
    config.seed = 0x5117 + static_cast<std::uint64_t>(year * 2.0);
    config.diurnal_scale = EraScale(year);
    const auto world = sim::SimWorld::Generate(config);
    const auto result = bench::RunWorldCampaign(
        world, days, 0x5e00 + static_cast<std::uint64_t>(survey_number));

    const double strict = result.counts.StrictFraction();
    strict_series.push_back(strict);
    table.AddRow({"S" + std::to_string(survey_number) + site,
                  report::Fixed(year, 1), site,
                  report::Percent(strict, 1),
                  report::Percent(result.counts.EitherFraction(), 1)});
    ++survey_number;
  }
  table.Print(std::cout);

  report::PrintSeries(std::cout, strict_series, 64, 10,
                      "strict diurnal fraction, 2010 -> 2013.5");
  if (strict_series.size() >= 4) {
    const double early =
        (strict_series[0] + strict_series[1]) / 2.0;
    const double late = (strict_series[strict_series.size() - 2] +
                         strict_series.back()) / 2.0;
    std::cout << "mean 2010-2010.5: " << report::Percent(early, 1)
              << "; mean 2013-2013.5: " << report::Percent(late, 1)
              << (late < early ? "  -> declining trend (as in the paper)"
                               : "  -> no decline (unexpected)")
              << "\n";
  }
  return 0;
}
