// Figure 8: detection accuracy vs maximum phase spread Phi (0..24 h)
// with n_d = 100 and no start/duration noise.
//
// Paper: accuracy holds until a sharp drop when Phi reaches ~14 hours —
// the strict test's "twice the next strongest amplitude" rule fails once
// per-address wake times blur across more than half the day.
#include <iostream>

#include "controlled.h"

int main() {
  using namespace sleepwalk;
  bench::PrintHeader(
      "Figure 8: accuracy vs maximum phase spread Phi",
      "sharp drop near Phi = 14 h (n_d = 100, sigma_s = sigma_d = 0)");

  report::TextTable table{{"Phi (hours)", "accuracy (median)", "q1", "q3"}};
  for (const int phi : {0, 2, 4, 6, 8, 10, 12, 13, 14, 15, 16, 18, 20, 24}) {
    bench::ControlledParams params;
    params.phi_spread_hours = phi;
    const auto point = bench::RunSweepPoint(params, 0x0800 + phi);
    bench::PrintSweepRow(table, std::to_string(phi), point);
  }
  table.Print(std::cout);
  std::cout << "(typical human phase spread is under 4 hours, far left "
               "of the cliff)\n";
  return 0;
}
