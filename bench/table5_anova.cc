// Table 5: ANOVA over country-level factors vs diurnal fraction —
// p-values for each single factor (diagonal) and each pairwise
// interaction (off-diagonal).
//
// Paper's significant cells: per-capita GDP alone (p = 6.61e-8), mean
// allocation age alone (p = 0.031354), and electricity x mean-age
// (p = 0.001476). Factors: GDP/capita, Internet users per host,
// electricity consumption/capita, age of first allocation, mean
// allocation age.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>

#include "common.h"
#include "sleepwalk/geo/geodb.h"
#include "sleepwalk/report/table.h"
#include "sleepwalk/stats/anova.h"
#include "sleepwalk/world/economics.h"
#include "sleepwalk/world/iana.h"

int main() {
  using namespace sleepwalk;
  const int n_blocks = bench::BlocksScale(6000);
  const int days = bench::DaysScale(10);
  bench::PrintHeader(
      "Table 5: ANOVA of diurnal fraction vs country factors",
      "GDP dominant (p = 6.61e-8); mean allocation age (p = 0.031) and "
      "electricity x mean-age (p = 0.0015) also significant");

  sim::WorldConfig config;
  config.total_blocks = n_blocks;
  config.seed = 0x7ab1e5;
  config.min_blocks_per_country = 40;
  const auto world = sim::SimWorld::Generate(config);
  const auto geodb = geo::GeoDatabase::FromTruth(world.TrueLocations(),
                                                 geo::GeoDatabase::Options{});
  const auto result = bench::RunWorldCampaign(world, days, 0x7ab1e5);

  // Country-level join: measured diurnal fraction + factors.
  struct CountryAccum {
    std::int64_t blocks = 0;
    std::int64_t diurnal = 0;
    double alloc_month_sum = 0.0;
    int alloc_first = 1 << 20;
    int alloc_count = 0;
  };
  std::map<std::string, CountryAccum> accum;
  for (std::size_t i = 0; i < world.blocks().size(); ++i) {
    const auto& analysis = result.analyses[i];
    if (!analysis.probed || analysis.observed_days < 2) continue;
    const auto* record = geodb.Lookup(world.blocks()[i].spec.block);
    if (record == nullptr) continue;
    auto& entry = accum[record->country_code];
    ++entry.blocks;
    if (analysis.diurnal.IsStrict()) ++entry.diurnal;
    const auto slash8 = static_cast<std::uint8_t>(
        world.blocks()[i].spec.block.Index() >> 16);
    const int month = world::AllocationMonthIndex(slash8);
    if (month >= 0) {
      entry.alloc_month_sum += month;
      entry.alloc_first = std::min(entry.alloc_first, month);
      ++entry.alloc_count;
    }
  }

  // Observation epoch for converting allocation month to "age".
  constexpr double kObservationMonth = (2013 - 1983) * 12.0 + 4.0;

  std::vector<double> y;         // diurnal fraction
  std::vector<double> gdp;
  std::vector<double> users_per_host;
  std::vector<double> electricity;
  std::vector<double> age_first;
  std::vector<double> age_mean;
  for (const auto& [code, entry] : accum) {
    if (entry.blocks < 25 || entry.alloc_count == 0) continue;
    const auto* info = world::FindCountry(code);
    if (info == nullptr) continue;
    y.push_back(static_cast<double>(entry.diurnal) /
                static_cast<double>(entry.blocks));
    gdp.push_back(info->gdp_per_capita_usd / 1000.0);
    users_per_host.push_back(info->internet_users_per_host);
    electricity.push_back(info->electricity_kwh_per_capita / 1000.0);
    age_first.push_back((kObservationMonth - entry.alloc_first) / 12.0);
    age_mean.push_back(
        (kObservationMonth - entry.alloc_month_sum / entry.alloc_count) /
        12.0);
  }
  std::cout << "countries in the analysis: " << y.size() << "\n\n";

  struct Factor {
    const char* name;
    const std::vector<double>* values;
  };
  const Factor factors[] = {
      {"GDP/capita", &gdp},
      {"users/host", &users_per_host},
      {"electricity", &electricity},
      {"age(first alloc)", &age_first},
      {"age(mean alloc)", &age_mean},
  };
  constexpr int kFactors = 5;

  // Full matrix: diagonal = single-factor p, off-diagonal = interaction
  // p of the pair (as R's aov reports for y ~ a * b).
  std::vector<std::string> header{"factor"};
  for (const auto& factor : factors) header.emplace_back(factor.name);
  report::TextTable table{header};
  double best_single_p = 1.0;
  const char* best_single = "";
  for (int r = 0; r < kFactors; ++r) {
    std::vector<std::string> row{factors[r].name};
    for (int c = 0; c < kFactors; ++c) {
      double p = 1.0;
      if (r == c) {
        p = stats::SingleFactorPValue(y, *factors[r].values);
        if (p < best_single_p) {
          best_single_p = p;
          best_single = factors[r].name;
        }
      } else {
        p = stats::PairInteractionPValue(y, *factors[r].values,
                                         *factors[c].values);
      }
      std::string cell = report::Scientific(p, 2);
      if (p < 0.05) cell += " *";
      row.push_back(cell);
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "(* = significant at p < 0.05; diagonal = single factor, "
               "off-diagonal = pairwise interaction)\n\n"
            << "strongest single factor: " << best_single << " (p = "
            << report::Scientific(best_single_p, 2)
            << ")   [paper: per-capita GDP, p = 6.61e-8]\n";

  // Full sequential table for the dominant factor, as aov would print.
  std::vector<stats::ModelTerm> terms(2);
  terms[0] = {"gdp", {gdp}};
  terms[1] = {"electricity", {electricity}};
  const auto anova = stats::SequentialAnova(terms, y);
  if (anova.ok) {
    std::cout << "\nsequential ANOVA, diurnal ~ gdp + electricity:\n";
    report::TextTable details{{"term", "df", "sum sq", "mean sq", "F",
                               "p"}};
    for (const auto& term : anova.terms) {
      details.AddRow({term.name, report::Fixed(term.df, 0),
                      report::Fixed(term.sum_sq, 4),
                      report::Fixed(term.mean_sq, 4),
                      report::Fixed(term.f, 2),
                      report::Scientific(term.p_value, 2)});
    }
    details.AddRow({"residuals", report::Fixed(anova.residual_df, 0),
                    report::Fixed(anova.residual_ss, 4), "", "", ""});
    details.Print(std::cout);
  }
  return 0;
}
