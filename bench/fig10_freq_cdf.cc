// Figure 10: cumulative distribution of each block's strongest spectral
// frequency over the 35-day campaign.
//
// Paper: a strong step at 1 cycle/day (~25% of blocks, of which 11%
// pass the strict test), and a second group (~3%) at ~4.3 cycles/day —
// an artifact of restarting the prober software every 5.5 hours.
#include <iostream>

#include "common.h"
#include "sleepwalk/report/chart.h"
#include "sleepwalk/report/table.h"
#include "sleepwalk/stats/histogram.h"

int main() {
  using namespace sleepwalk;
  const int n_blocks = bench::BlocksScale(2000);
  const int days = bench::DaysScale(35);
  bench::PrintHeader(
      "Figure 10: CDF of the strongest frequency per block",
      "~25% at 1 cycle/day; ~3% artifact at 4.36 cycles/day from "
      "5.5-hour prober restarts");

  sim::WorldConfig world_config;
  world_config.total_blocks = n_blocks;
  world_config.seed = 0xf16a;
  const auto world = sim::SimWorld::Generate(world_config);

  // A_12w policy: restart the prober every 30 rounds (5.5 h).
  core::AnalyzerConfig config;
  config.schedule.restart_every_rounds = 30;
  const auto result = bench::RunWorldCampaign(world, days, 0xf16a, config);

  stats::Histogram histogram{0.0, 8.0, 160};  // cycles/day, 0.05 steps
  std::int64_t analyzed = 0;
  std::int64_t at_daily = 0;
  std::int64_t at_restart = 0;
  std::int64_t strict = 0;
  for (const auto& analysis : result.analyses) {
    if (!analysis.probed || analysis.observed_days < 2) continue;
    ++analyzed;
    const double cycles = analysis.diurnal.strongest_cycles_per_day;
    histogram.Add(cycles);
    if (cycles >= 0.95 && cycles <= 1.1) ++at_daily;
    // Restart period 30 rounds = 5.5 h -> 4.36 cycles/day.
    if (cycles >= 4.1 && cycles <= 4.7) ++at_restart;
    if (analysis.diurnal.IsStrict()) ++strict;
  }

  const auto cdf = histogram.Cdf();
  std::vector<double> curve(cdf.begin(), cdf.end());
  report::PrintSeries(std::cout, curve, 78, 14,
                      "CDF of strongest frequency (x: 0..8 cycles/day)");

  report::TextTable table{{"cycles/day", "cumulative fraction"}};
  for (const double mark : {0.5, 1.0, 1.1, 2.0, 4.0, 4.4, 5.0, 8.0}) {
    const auto bin = std::min<std::size_t>(
        static_cast<std::size_t>(mark / 0.05) - 1, histogram.bins() - 1);
    table.AddRow({report::Fixed(mark, 2), report::Fixed(cdf[bin], 3)});
  }
  table.Print(std::cout);

  const auto frac = [analyzed](std::int64_t count) {
    return report::Percent(
        static_cast<double>(count) / static_cast<double>(analyzed), 1);
  };
  std::cout << "blocks analyzed: " << report::WithCommas(analyzed) << "\n"
            << "strongest at ~1 cycle/day:  " << frac(at_daily)
            << "   [paper: ~25%]\n"
            << "strictly diurnal:           " << frac(strict)
            << "   [paper: 11%]\n"
            << "restart artifact (~4.36/d): " << frac(at_restart)
            << "   [paper: ~3%]\n";
  return 0;
}
