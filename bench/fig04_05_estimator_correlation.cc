// Figures 4 and 5: correlation of true availability A with the
// short-term estimate A-hat_s (Fig 4) and the operational estimate
// A-hat_o (Fig 5), over every round of every surveyed block.
//
// Paper: per-round density clusters on the x = y line; quartile overlays
// per 0.1-wide bin of true A; overall correlation coefficient 0.95685
// for A-hat_s; A-hat_o stays under true A ~94% of rounds.
#include <iostream>

#include "common.h"
#include "sleepwalk/report/chart.h"
#include "sleepwalk/report/csv.h"
#include "sleepwalk/report/table.h"
#include "sleepwalk/stats/descriptive.h"
#include "sleepwalk/stats/histogram.h"

namespace sleepwalk {
namespace {

void Run() {
  const int n_blocks = bench::BlocksScale(1200);
  const int days = bench::DaysScale(14);
  bench::PrintHeader(
      "Figures 4-5: estimated vs true availability (survey validation)",
      "r(A, A-hat_s) = 0.957; A-hat_o < A on ~94% of rounds");

  sim::WorldConfig world_config;
  world_config.total_blocks = n_blocks;
  world_config.seed = 0x0405;
  world_config.outage_fraction = 0.0;
  const auto world = sim::SimWorld::Generate(world_config);

  core::AnalyzerConfig config;
  const probing::RoundScheduler scheduler{config.schedule};
  const auto n_rounds = scheduler.RoundsForDays(days);

  auto transport = world.MakeTransport(0xf45);

  stats::Histogram2d density_s{0.0, 1.0, 20, 0.0, 1.0, 20};
  stats::Histogram2d density_o{0.0, 1.0, 20, 0.0, 1.0, 20};
  // Per-0.1-bin samples of A-hat_s for the quartile overlay.
  std::vector<std::vector<double>> bins_s(10);
  std::vector<std::vector<double>> bins_o(10);
  std::vector<double> all_true;
  std::vector<double> all_short;
  std::int64_t rounds_seen = 0;
  std::int64_t operational_under = 0;
  std::int64_t operational_considered = 0;

  for (const auto& block : world.blocks()) {
    if (block.spec.EverActiveCount() < config.min_ever_active) continue;
    const auto target = bench::TargetFor(block);
    core::BlockAnalyzer analyzer{target.block, target.ever_active,
                                 target.initial_availability,
                                 0x5eed ^ target.block.Index(), config};
    for (std::int64_t round = 0; round < n_rounds; ++round) {
      analyzer.RunRound(*transport, round);
      const double truth =
          sim::TrueAvailability(block.spec, scheduler.TimeOf(round));
      const double short_term = analyzer.estimator().ShortTerm();
      const double operational = analyzer.estimator().Operational();

      density_s.Add(truth, short_term);
      density_o.Add(truth, operational);
      const auto bin = std::min<std::size_t>(
          static_cast<std::size_t>(truth * 10.0), 9);
      bins_s[bin].push_back(short_term);
      bins_o[bin].push_back(operational);
      all_true.push_back(truth);
      all_short.push_back(short_term);
      ++rounds_seen;
      // As in the paper, skip very sparse cases where A-hat_o sits on
      // its 0.1 floor.
      if (truth >= 0.1) {
        ++operational_considered;
        if (operational < truth) ++operational_under;
      }
    }
  }

  const double correlation = stats::PearsonCorrelation(all_true, all_short);
  const double under_fraction =
      static_cast<double>(operational_under) /
      static_cast<double>(operational_considered);

  std::cout << "blocks probed: " << world.blocks().size() << ", rounds: "
            << n_rounds << ", (block, round) samples: " << rounds_seen
            << "\n\n";

  // Fig 4 density plot.
  std::vector<std::vector<double>> cells_s(20, std::vector<double>(20));
  std::vector<std::vector<double>> cells_o(20, std::vector<double>(20));
  for (std::size_t y = 0; y < 20; ++y) {
    for (std::size_t x = 0; x < 20; ++x) {
      cells_s[y][x] = static_cast<double>(density_s.count(x, y));
      cells_o[y][x] = static_cast<double>(density_o.count(x, y));
    }
  }
  report::PrintDensityGrid(std::cout, cells_s,
                           "Fig 4 density: x = true A (0..1), y = A-hat_s "
                           "(0..1, top = 1)");
  std::cout << "\n";

  report::TextTable table_s{{"true A bin", "q1", "median", "q3", "n"}};
  for (std::size_t b = 0; b < 10; ++b) {
    if (bins_s[b].empty()) continue;
    const auto q = stats::ComputeQuartiles(bins_s[b]);
    table_s.AddRow({"[" + report::Fixed(b * 0.1, 1) + "," +
                        report::Fixed((b + 1) * 0.1, 1) + ")",
                    report::Fixed(q.q1, 3), report::Fixed(q.median, 3),
                    report::Fixed(q.q3, 3),
                    std::to_string(bins_s[b].size())});
  }
  std::cout << "Fig 4 quartiles of A-hat_s per 0.1 bin of true A "
               "(unbiased => median ~ bin center):\n";
  table_s.Print(std::cout);
  std::cout << "correlation r(A, A-hat_s) = "
            << report::Fixed(correlation, 5)
            << "   [paper: 0.95685]\n\n";

  report::PrintDensityGrid(std::cout, cells_o,
                           "Fig 5 density: x = true A, y = A-hat_o "
                           "(conservative => mass below diagonal)");
  report::TextTable table_o{{"true A bin", "q1", "median", "q3"}};
  for (std::size_t b = 0; b < 10; ++b) {
    if (bins_o[b].empty()) continue;
    const auto q = stats::ComputeQuartiles(bins_o[b]);
    table_o.AddRow({"[" + report::Fixed(b * 0.1, 1) + "," +
                        report::Fixed((b + 1) * 0.1, 1) + ")",
                    report::Fixed(q.q1, 3), report::Fixed(q.median, 3),
                    report::Fixed(q.q3, 3)});
  }
  std::cout << "\nFig 5 quartiles of A-hat_o per 0.1 bin of true A:\n";
  table_o.Print(std::cout);
  std::cout << "A-hat_o < true A on "
            << report::Percent(under_fraction, 1)
            << " of rounds   [paper: ~94%]\n";

  if (const auto path = report::CsvPathFor("fig04_quartiles.csv");
      !path.empty()) {
    report::CsvWriter csv{path};
    csv.WriteRow({"bin_low", "q1", "median", "q3"});
    for (std::size_t b = 0; b < 10; ++b) {
      if (bins_s[b].empty()) continue;
      const auto q = stats::ComputeQuartiles(bins_s[b]);
      csv.WriteRow({report::Fixed(b * 0.1, 1), report::Fixed(q.q1, 4),
                    report::Fixed(q.median, 4), report::Fixed(q.q3, 4)});
    }
  }
}

}  // namespace
}  // namespace sleepwalk

int main() {
  sleepwalk::Run();
  return 0;
}
